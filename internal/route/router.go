package route

// Router is the stateless front tier of a sharded scserved fleet. It
// consistent-hashes each request's canonical contract spec hash — the
// same sha256 key the backends use for their compiled-engine LRU —
// onto a rendezvous ring of backends, so every spec lands on the one
// backend whose cache is hot for it. Requests that carry no parseable
// spec (health probes, the survey endpoints, malformed bodies the
// backend will reject anyway) round-robin instead.
//
// Membership is health-aware: a per-backend resilience.Breaker absorbs
// both forward outcomes and background /readyz polls. Transport errors,
// per-try timeouts, and 502/503 responses count as failures;
// FailureThreshold of them in a row eject the backend (breaker opens)
// and the poll loop's next Allow after the cooldown doubles as the
// readmission probe. While a backend is ejected, its keys fail over to
// the next backend in their rendezvous order — and snap back, cache
// intact, on readmission.
//
// Gray failures — a backend that accepts connections but answers
// slowly or never — are handled by three mechanisms the crash path
// alone cannot provide:
//
//   - every forward runs under a per-try timeout derived from the
//     remaining request deadline split across the backends left in the
//     preference order, so a hung backend counts as a breaker failure
//     and the request moves down the ranking instead of stalling;
//   - idempotent requests are hedged: after a p95-based delay (per
//     backend, from a decaying latency digest fed by the same
//     observation point as the upstream histogram) one speculative
//     second attempt goes to the next-ranked backend, first usable
//     response wins, the loser is canceled;
//   - failover retries and hedges share one resilience.Budget token
//     bucket refilled as a fraction of primary requests, so a
//     fleet-wide brownout degrades to single-attempt behavior instead
//     of a retry storm.
//
// The router stamps X-SCBill-Deadline-Ms (the remaining budget) on
// every forward; backends parse it into the request context and stop
// evaluating bills the caller has already abandoned.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/textproto"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/contract"
	"repro/internal/resilience"
)

// maxBodyBytes mirrors the backend's request-body cap; the router
// buffers bodies (for hashing and retries) so it enforces the same
// bound.
const maxBodyBytes = 16 << 20

// DeadlineHeader carries the remaining request budget downstream in
// integer milliseconds. The router stamps it on every forward;
// internal/serve parses it into the request context.
const DeadlineHeader = "X-SCBill-Deadline-Ms"

// OriginHeader labels error responses with the layer that produced
// them, so load harness assertions can target the right one: "router"
// for errors the router originated (no healthy backend, deadline
// expired, retry budget spent), "upstream" for backend 502/503s the
// router relays truthfully.
const (
	OriginHeader   = "X-SCRoute-Origin"
	OriginRouter   = "router"
	OriginUpstream = "upstream"
)

// Config tunes a Router. Backends is required; everything else has a
// usable zero value.
type Config struct {
	// Backends are the scserved base URLs (e.g. http://127.0.0.1:9101).
	// The URL string is also the backend's rendezvous identity, so keep
	// it stable across restarts.
	Backends []string
	// Client issues forwards and health polls; nil selects a client
	// with no overall timeout (per-request contexts bound forwards).
	Client *http.Client
	// PollInterval is the /readyz poll cadence; <= 0 selects 1 s. Each
	// poll loop jitters its own cadence ±10% so fleet probes do not
	// synchronize.
	PollInterval time.Duration
	// FailureThreshold and OpenTimeout tune each backend's breaker;
	// zero values select resilience defaults (5 failures, 30 s).
	FailureThreshold int
	OpenTimeout      time.Duration
	// RequestTimeout bounds one proxied request end to end when the
	// client sends no X-SCBill-Deadline-Ms of its own; <= 0 selects
	// 30 s. A client header below it tightens the deadline.
	RequestTimeout time.Duration
	// TryTimeoutFloor and TryTimeoutCeil clamp the per-try timeout,
	// which is the remaining deadline split evenly across the backends
	// left in the preference order. The floor keeps a near-deadline
	// request from starving its last try; the ceiling is the gray-
	// failure detector — a backend slower than it counts as a breaker
	// failure. <= 0 select 250 ms and 10 s.
	TryTimeoutFloor time.Duration
	TryTimeoutCeil  time.Duration
	// HedgeDelayFloor floors the p95-based hedge delay so an empty or
	// very fast digest cannot hedge every request; <= 0 selects 25 ms.
	HedgeDelayFloor time.Duration
	// DisableHedge turns speculative second attempts off; failover
	// retries after hard failures still run, budget permitting.
	DisableHedge bool
	// BudgetRatio and BudgetBurst tune the shared retry/hedge token
	// budget; zero values select the resilience defaults (0.1 tokens
	// earned per primary request, burst 10).
	BudgetRatio float64
	BudgetBurst float64
	// Logger, when set, logs ejections and readmissions.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.PollInterval <= 0 {
		c.PollInterval = time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.TryTimeoutFloor <= 0 {
		c.TryTimeoutFloor = 250 * time.Millisecond
	}
	if c.TryTimeoutCeil <= 0 {
		c.TryTimeoutCeil = 10 * time.Second
	}
	if c.TryTimeoutCeil < c.TryTimeoutFloor {
		c.TryTimeoutCeil = c.TryTimeoutFloor
	}
	if c.HedgeDelayFloor <= 0 {
		c.HedgeDelayFloor = 25 * time.Millisecond
	}
	return c
}

// backend is one ring member: its identity, breaker, last-poll
// readiness (exported on /metrics; eligibility is the breaker's call),
// and the decaying latency digest the hedge delay is derived from.
type backend struct {
	name    string
	breaker *resilience.Breaker
	ready   atomic.Bool
	latency digest
}

// Router is an http.Handler that forwards requests to a fleet of
// scserved backends. Construct with NewRouter; optionally call Start
// to begin background health polling.
type Router struct {
	cfg      Config
	client   *http.Client
	backends []*backend
	names    []string
	byName   map[string]*backend
	budget   *resilience.Budget
	rr       atomic.Uint64
	metrics  *metrics
	mux      *http.ServeMux

	// settleWG tracks the background goroutines that settle hedge
	// losers after a winner is relayed. Wait blocks until they drain,
	// so shutdown never strands a loser mid-settlement.
	settleWG sync.WaitGroup
}

// NewRouter builds a router over the configured backends.
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("route: no backends configured")
	}
	cfg = cfg.withDefaults()
	rt := &Router{
		cfg:     cfg,
		client:  cfg.Client,
		byName:  make(map[string]*backend, len(cfg.Backends)),
		budget:  resilience.NewBudget(resilience.BudgetConfig{Ratio: cfg.BudgetRatio, Burst: cfg.BudgetBurst}),
		metrics: newMetrics(),
		mux:     http.NewServeMux(),
	}
	if rt.client == nil {
		rt.client = &http.Client{}
	}
	for _, name := range cfg.Backends {
		if _, dup := rt.byName[name]; dup {
			return nil, fmt.Errorf("route: duplicate backend %q", name)
		}
		b := &backend{name: name}
		b.ready.Store(true) // optimistic until the first poll says otherwise
		b.breaker = resilience.NewBreaker(resilience.BreakerConfig{
			FailureThreshold: cfg.FailureThreshold,
			OpenTimeout:      cfg.OpenTimeout,
			OnTransition:     rt.onTransition(name),
		})
		rt.backends = append(rt.backends, b)
		rt.names = append(rt.names, name)
		rt.byName[name] = b
	}
	rt.mux.HandleFunc("/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("/readyz", rt.handleReadyz)
	rt.mux.HandleFunc("/metrics", rt.handleMetrics)
	rt.mux.HandleFunc("/", rt.handleProxy)
	return rt, nil
}

// onTransition builds the breaker callback for one backend: count
// ejections and log membership changes.
func (rt *Router) onTransition(name string) func(from, to resilience.State) {
	return func(from, to resilience.State) {
		switch {
		case to == resilience.Open:
			rt.metrics.observeEjection(name)
			if rt.cfg.Logger != nil {
				rt.cfg.Logger.Warn("backend ejected", "backend", name, "from", from.String())
			}
		case to == resilience.Closed && from != resilience.Closed:
			if rt.cfg.Logger != nil {
				rt.cfg.Logger.Info("backend readmitted", "backend", name)
			}
		}
	}
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Wait blocks until every in-flight loser-settlement goroutine has
// drained. Call it after the HTTP server has shut down: with no new
// requests arriving, the settle population only shrinks, and each
// pending loser is unblocked by the cancel that cancelAndDrain already
// issued.
func (rt *Router) Wait() { rt.settleWG.Wait() }

// Start launches the background /readyz poll loops; they stop when ctx
// is canceled. Without Start the router still routes — membership then
// reacts to forward outcomes only.
func (rt *Router) Start(ctx context.Context) {
	for _, b := range rt.backends {
		go rt.pollLoop(ctx, b)
	}
}

// pollLoop probes one backend's /readyz through its breaker until ctx
// is canceled. While the breaker is open the Allow call is rejected
// (the backend stays ejected for free); the first Allow after the
// cooldown claims the half-open probe slot, so the poll cadence is
// also the readmission cadence. Each wait is jittered ±10% (seeded
// from the backend's ring identity, so a fleet's cadences are distinct
// but reproducible) to keep the fleet's probes from synchronizing into
// a thundering herd on a recovering backend.
func (rt *Router) pollLoop(ctx context.Context, b *backend) {
	rng := newPollRNG(b.name)
	rt.pollOnce(ctx, b)
	t := time.NewTimer(jitteredInterval(rt.cfg.PollInterval, rng))
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.pollOnce(ctx, b)
			t.Reset(jitteredInterval(rt.cfg.PollInterval, rng))
		}
	}
}

// newPollRNG seeds one backend's jitter source from its ring identity,
// so a fleet's poll cadences are distinct but reproducible.
func newPollRNG(name string) *rand.Rand {
	return rand.New(rand.NewSource(int64(score(name, "poll-jitter"))))
}

// jitteredInterval spreads d uniformly over ±10%.
func jitteredInterval(d time.Duration, rng *rand.Rand) time.Duration {
	return time.Duration(float64(d) * (0.9 + 0.2*rng.Float64()))
}

// pollOnce sends one /readyz probe. The request is constructed before
// the breaker is consulted: a local construction error says nothing
// about the backend's health, so it must neither count as a breaker
// failure nor burn the half-open probe slot.
func (rt *Router) pollOnce(ctx context.Context, b *backend) {
	pctx, cancel := context.WithTimeout(ctx, rt.cfg.PollInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, b.name+"/readyz", nil)
	if err != nil {
		if rt.cfg.Logger != nil {
			rt.cfg.Logger.Warn("poll request construction failed", "backend", b.name, "err", err)
		}
		return
	}
	done, err := b.breaker.Allow()
	if err != nil {
		return // open and cooling down: stay ejected
	}
	resp, err := rt.client.Do(req)
	ok := err == nil && resp.StatusCode == http.StatusOK
	if resp != nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	b.ready.Store(ok)
	done(ok)
}

// eligible reports whether the backend currently accepts forwards: the
// last /readyz poll passed and its breaker is not open. (Half-open
// counts — a forward is as good a probe as a poll.) Gating on the poll
// result matters for gray failure: a browned-out backend whose hedged
// losers keep getting canceled (recorded as breaker successes, so the
// failure streak never builds) is still pulled from rotation within
// one poll period, because its probes run under the poll-interval
// timeout and fail. Without polls (Start not called) ready keeps its
// optimistic initial value and the breaker alone decides.
func (b *backend) eligible() bool {
	return b.ready.Load() && b.breaker.State() != resilience.Open
}

// healthySet maps every backend to its current eligibility.
func (rt *Router) healthySet() map[string]bool {
	out := make(map[string]bool, len(rt.backends))
	for _, b := range rt.backends {
		out[b.name] = b.eligible()
	}
	return out
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports 200 while at least one backend is eligible.
func (rt *Router) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	for _, b := range rt.backends {
		if b.eligible() {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, "ok")
			return
		}
	}
	writeRouterError(w, http.StatusServiceUnavailable, "no healthy backend")
}

func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.metrics.render(w, rt.healthySet(), rt.budget.Stats())
}

// routingKey derives the consistent-hash key from a request body: the
// canonical hash of the first contract spec it carries (`contract`, or
// `contracts[0]` for batch). This is exactly the backends' engine-LRU
// key, which is what makes sharding keep their caches hot. Returns
// ok=false when the body has no parseable spec.
func routingKey(body []byte) (string, bool) {
	if len(body) == 0 {
		return "", false
	}
	var env struct {
		Contract  json.RawMessage   `json:"contract"`
		Contracts []json.RawMessage `json:"contracts"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		return "", false
	}
	raw := env.Contract
	if len(raw) == 0 && len(env.Contracts) > 0 {
		raw = env.Contracts[0]
	}
	if len(raw) == 0 {
		return "", false
	}
	spec, err := contract.ParseSpec(raw)
	if err != nil {
		return "", false
	}
	key, err := contract.HashSpec(spec)
	if err != nil {
		return "", false
	}
	return key, true
}

// order computes the forward preference for one request: rendezvous
// rank for keyed requests, a rotating round-robin order otherwise.
func (rt *Router) order(body []byte) []string {
	if key, ok := routingKey(body); ok {
		return Rank(rt.names, key)
	}
	start := int(rt.rr.Add(1)-1) % len(rt.names)
	out := make([]string, 0, len(rt.names))
	for i := range rt.names {
		out = append(out, rt.names[(start+i)%len(rt.names)])
	}
	return out
}

// hedgeable reports whether a request may be speculatively duplicated:
// reads, and the POST endpoints that are pure computations over their
// body (billing, advice, optimization) — re-issuing them has no side
// effect beyond the compute itself.
func hedgeable(r *http.Request) bool {
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		return true
	case http.MethodPost:
		switch r.URL.Path {
		case "/v1/bill", "/v1/bill/batch", "/v1/advise", "/v1/optimize":
			return true
		}
	}
	return false
}

// hedgeDelay is how long to wait for a backend before speculating: its
// observed p95, floored so an empty or very fast digest cannot hedge
// every request, and capped at the per-try ceiling (past that the try
// timeout handles it).
func (rt *Router) hedgeDelay(b *backend) time.Duration {
	d := time.Duration(b.latency.Quantile(0.95) * float64(time.Second))
	if d < rt.cfg.HedgeDelayFloor {
		d = rt.cfg.HedgeDelayFloor
	}
	if d > rt.cfg.TryTimeoutCeil {
		d = rt.cfg.TryTimeoutCeil
	}
	return d
}

// attempt is one in-flight forward and its settled outcome.
type attempt struct {
	b        *backend
	done     func(success bool)
	cancel   context.CancelFunc
	hedge    bool
	resp     *http.Response
	err      error
	elapsed  time.Duration
	timedOut bool
}

// usable reports whether the attempt produced a response worth
// relaying: anything but a transport error or a 502/503 (which are
// failover triggers, not answers — unless every backend agrees).
func (at *attempt) usable() bool {
	return at.err == nil &&
		at.resp.StatusCode != http.StatusBadGateway &&
		at.resp.StatusCode != http.StatusServiceUnavailable
}

// proxyState is the per-request forward engine: the preference order,
// the set of in-flight attempts, and the best failure seen so far.
type proxyState struct {
	rt       *Router
	r        *http.Request
	body     []byte
	ctx      context.Context
	deadline time.Time
	order    []string
	idx      int // next candidate in order
	active   map[*attempt]struct{}
	inflight int
	results  chan *attempt

	lastStatus int
	lastHeader http.Header
	lastBody   []byte
}

// handleProxy forwards one request along its preference order with
// per-try timeouts, budget-gated failover retries and hedges. A
// transport error, per-try timeout, or 502/503 counts against the
// backend's breaker and moves on to the next eligible backend; any
// other response — 200s, 400s, and crucially 429 shed — relays as-is
// and counts as backend success. When every backend fails, the last
// upstream 502/503 relays (it is the truth); with no response at all
// the router answers 502.
func (rt *Router) handleProxy(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		rt.metrics.observeRequest(r.URL.Path, http.StatusBadRequest)
		writeRouterError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}

	// Request deadline: a propagated X-SCBill-Deadline-Ms tightens the
	// configured timeout, and a spent one short-circuits to 504 without
	// touching a backend — there is no point starting work the caller
	// has already abandoned.
	budget := rt.cfg.RequestTimeout
	if ms, ok := incomingDeadline(r.Header); ok {
		if ms <= 0 {
			rt.metrics.deadlineExpired.Add(1)
			rt.metrics.observeRequest(r.URL.Path, http.StatusGatewayTimeout)
			writeRouterError(w, http.StatusGatewayTimeout,
				fmt.Sprintf("propagated deadline already expired (%d ms remaining)", ms))
			return
		}
		if d := time.Duration(ms) * time.Millisecond; d < budget {
			budget = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()
	deadline, _ := ctx.Deadline()

	rt.budget.OnPrimary()
	st := &proxyState{
		rt:       rt,
		r:        r,
		body:     body,
		ctx:      ctx,
		deadline: deadline,
		order:    rt.order(body),
		active:   make(map[*attempt]struct{}),
		results:  make(chan *attempt, len(rt.names)+2),
	}

	first := st.launch(false)
	if first != nil {
		st.inflight = 1
	}

	// One speculative attempt per request: armed at the first
	// backend's p95 and consumed (or disarmed by the budget) once.
	var hedgeC <-chan time.Time
	if first != nil && !rt.cfg.DisableHedge && hedgeable(r) {
		ht := time.NewTimer(rt.hedgeDelay(first.b))
		defer ht.Stop()
		hedgeC = ht.C
	}

	for st.inflight > 0 {
		select {
		case <-ctx.Done():
			st.cancelAndDrain()
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				rt.metrics.observeRequest(r.URL.Path, http.StatusGatewayTimeout)
				writeRouterError(w, http.StatusGatewayTimeout,
					fmt.Sprintf("request deadline (%s) exhausted before any backend answered", budget))
			} else {
				// Client hung up: nobody is left to answer.
				rt.metrics.observeRequest(r.URL.Path, 499)
			}
			return
		case <-hedgeC:
			hedgeC = nil
			if !rt.budget.TryAcquire() {
				rt.metrics.budgetExhausted.Add(1)
				continue
			}
			if at := st.launch(true); at != nil {
				st.inflight++
				rt.metrics.hedges.Add(1)
			}
		case at := <-st.results:
			st.inflight--
			delete(st.active, at)
			if at.usable() {
				st.win(w, at)
				return
			}
			st.fail(at)
			if st.inflight > 0 || st.idx >= len(st.order) {
				continue
			}
			// Failover retry down the ranking, budget permitting: under
			// a fleet-wide brownout the budget drains and requests
			// degrade to single-attempt behavior instead of storming.
			if !rt.budget.TryAcquire() {
				rt.metrics.budgetExhausted.Add(1)
				break
			}
			if at := st.launch(false); at != nil {
				st.inflight++
				rt.metrics.retries.Add(1)
			}
		}
		if st.inflight == 0 {
			break
		}
	}

	if st.lastStatus != 0 {
		copyHeader(w.Header(), st.lastHeader)
		w.Header().Set(OriginHeader, OriginUpstream)
		w.WriteHeader(st.lastStatus)
		_, _ = w.Write(st.lastBody)
		rt.metrics.observeRequest(r.URL.Path, st.lastStatus)
		return
	}
	rt.metrics.noBackend.Add(1)
	rt.metrics.observeRequest(r.URL.Path, http.StatusBadGateway)
	writeRouterError(w, http.StatusBadGateway, "no healthy backend")
}

// launch starts one forward to the next eligible backend in the
// preference order, returning nil when none is left. The per-try
// timeout is the remaining deadline split across the candidates left
// (this one included), clamped to [TryTimeoutFloor, TryTimeoutCeil].
func (st *proxyState) launch(hedge bool) *attempt {
	rt := st.rt
	for st.idx < len(st.order) {
		left := len(st.order) - st.idx
		name := st.order[st.idx]
		st.idx++
		b := rt.byName[name]
		if !b.eligible() {
			continue
		}
		actx, acancel := context.WithCancel(st.ctx)
		req, err := rt.buildForward(actx, st.r, name, st.body)
		if err != nil {
			// Local construction error: the breaker was never consulted,
			// so the backend is not penalized for our bad request.
			acancel()
			continue
		}
		done, berr := b.breaker.Allow()
		if berr != nil {
			acancel()
			continue // lost the race to an ejection or probe slot
		}
		at := &attempt{b: b, done: done, cancel: acancel, hedge: hedge}
		st.active[at] = struct{}{}
		go rt.runAttempt(at, req, st.tryTimeout(left), st.results)
		return at
	}
	return nil
}

// tryTimeout splits the remaining deadline across the candidates left,
// clamped to the configured floor and ceiling.
func (st *proxyState) tryTimeout(candidatesLeft int) time.Duration {
	if candidatesLeft < 1 {
		candidatesLeft = 1
	}
	per := time.Until(st.deadline) / time.Duration(candidatesLeft)
	if per < st.rt.cfg.TryTimeoutFloor {
		per = st.rt.cfg.TryTimeoutFloor
	}
	if per > st.rt.cfg.TryTimeoutCeil {
		per = st.rt.cfg.TryTimeoutCeil
	}
	return per
}

// runAttempt issues one forward. The per-try timer guards the time to
// response headers: a hung or browned-out backend trips it, the
// attempt's context is canceled, and the outcome reports timedOut so
// the caller counts it as a breaker failure. Once headers are in, the
// winner's body relay runs under the request deadline, not the per-try
// clock.
func (rt *Router) runAttempt(at *attempt, req *http.Request, tryTimeout time.Duration, out chan<- *attempt) {
	var fired atomic.Bool
	timer := time.AfterFunc(tryTimeout, func() {
		fired.Store(true)
		at.cancel()
	})
	start := time.Now()
	resp, err := rt.client.Do(req)
	timer.Stop()
	at.elapsed = time.Since(start)
	if fired.Load() {
		// The timer fired: even if a response squeaked in, its context
		// is canceled and the body is poisoned — count it as the
		// timeout it effectively was.
		at.timedOut = true
		if resp != nil {
			resp.Body.Close()
			resp = nil
		}
		if err == nil {
			err = fmt.Errorf("route: per-try timeout after %s", tryTimeout)
		} else {
			err = fmt.Errorf("route: per-try timeout after %s: %w", tryTimeout, err)
		}
	}
	at.resp, at.err = resp, err
	out <- at
}

// win relays the first usable response: cancel the losers, feed the
// latency digest, and stream the body to the client.
func (st *proxyState) win(w http.ResponseWriter, at *attempt) {
	rt := st.rt
	st.cancelAndDrain()
	rt.metrics.observeBackend(at.b.name, at.resp.StatusCode)
	rt.metrics.upstream.Observe(at.elapsed.Seconds())
	at.b.latency.Observe(at.elapsed.Seconds())
	if at.hedge {
		rt.metrics.hedgeWins.Add(1)
	}
	code, relayErr := rt.relay(w, at.resp)
	// The backend served us fine either way: a relay error means the
	// CLIENT hung up mid-copy, which must not eject the backend.
	at.done(true)
	at.cancel()
	if relayErr != nil && rt.cfg.Logger != nil {
		rt.cfg.Logger.Info("client hangup mid-relay", "backend", at.b.name, "path", st.r.URL.Path)
	}
	rt.metrics.observeRequest(st.r.URL.Path, code)
}

// fail settles one failed attempt: breaker failure, metrics, and —
// for upstream 502/503 — capture of the most recent relayable truth.
func (st *proxyState) fail(at *attempt) {
	rt := st.rt
	if at.resp != nil {
		rt.metrics.observeBackend(at.b.name, at.resp.StatusCode)
		st.lastStatus = at.resp.StatusCode
		st.lastHeader = at.resp.Header
		st.lastBody, _ = io.ReadAll(io.LimitReader(at.resp.Body, maxBodyBytes))
		at.resp.Body.Close()
	} else {
		rt.metrics.observeBackend(at.b.name, 0)
		if at.timedOut {
			rt.metrics.tryTimeouts.Add(1)
		}
	}
	at.done(false)
	at.cancel()
}

// cancelAndDrain cancels every still-active attempt and settles their
// outcomes on a background goroutine, so a hedge loser's context is
// released promptly without blocking the client's response.
func (st *proxyState) cancelAndDrain() {
	n := 0
	for at := range st.active {
		at.cancel()
		n++
	}
	if n == 0 {
		return
	}
	st.active = make(map[*attempt]struct{})
	results := st.results
	// Registered on the router's settle WaitGroup: every canceled
	// attempt sends exactly one result (runAttempt's send is
	// unconditional and the channel is buffered for the attempt
	// count), so the loop terminates once the losers finish — and
	// Wait() holds shutdown open until each loser's breaker outcome
	// and body close have landed.
	st.rt.settleWG.Add(1)
	go func() {
		defer st.rt.settleWG.Done()
		for i := 0; i < n; i++ {
			settleLoser(<-results)
		}
	}()
}

// settleLoser closes out an attempt that lost the race. A response —
// even a late one — counts as backend success; a cancellation we
// caused must not be held against the backend; only a genuine failure
// or per-try timeout counts against the breaker.
func settleLoser(at *attempt) {
	switch {
	case at.resp != nil:
		at.resp.Body.Close()
		at.done(!at.timedOut &&
			at.resp.StatusCode != http.StatusBadGateway &&
			at.resp.StatusCode != http.StatusServiceUnavailable)
	case at.timedOut:
		at.done(false)
	case errors.Is(at.err, context.Canceled):
		at.done(true)
	default:
		at.done(false)
	}
	at.cancel()
}

// incomingDeadline parses the client's X-SCBill-Deadline-Ms header.
func incomingDeadline(h http.Header) (ms int64, ok bool) {
	v := h.Get(DeadlineHeader)
	if v == "" {
		return 0, false
	}
	ms, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
	if err != nil {
		return 0, false
	}
	return ms, true
}

// buildForward constructs the request to one backend, stamping the
// remaining deadline budget so the backend stops evaluating bills the
// caller has already abandoned.
func (rt *Router) buildForward(ctx context.Context, r *http.Request, name string, body []byte) (*http.Request, error) {
	url := name + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	copyHeader(req.Header, r.Header)
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.Header.Set(DeadlineHeader, strconv.FormatInt(ms, 10))
	}
	return req, nil
}

// relay copies one upstream response to the client, returning the
// status code written.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response) (int, error) {
	defer resp.Body.Close()
	copyHeader(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	_, err := io.Copy(w, resp.Body)
	return resp.StatusCode, err
}

// hopByHopHeaders are the RFC 9110 §7.6.1 connection-level fields a
// proxy must consume rather than forward: they describe one TCP hop,
// and relaying them corrupts the next (a forwarded Transfer-Encoding
// or Connection: close breaks keep-alive and framing on the far side).
var hopByHopHeaders = []string{
	"Connection",
	"Keep-Alive",
	"Proxy-Authenticate",
	"Proxy-Authorization",
	"Proxy-Connection",
	"Te",
	"Trailer",
	"Transfer-Encoding",
	"Upgrade",
}

// copyHeader copies end-to-end headers from src to dst, dropping the
// hop-by-hop set plus any field nominated by a Connection header (RFC
// 9110: such fields are hop-by-hop by declaration). Used in both
// directions — forwarding the client's headers upstream and relaying
// the backend's headers down.
func copyHeader(dst, src http.Header) {
	drop := make(map[string]bool, len(hopByHopHeaders))
	for _, h := range hopByHopHeaders {
		drop[h] = true
	}
	for _, v := range src.Values("Connection") {
		for _, name := range strings.Split(v, ",") {
			if name = textproto.CanonicalMIMEHeaderKey(strings.TrimSpace(name)); name != "" {
				drop[name] = true
			}
		}
	}
	for k, vs := range src {
		if drop[textproto.CanonicalMIMEHeaderKey(k)] {
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// writeRouterError writes an error the router itself originated,
// labeled so load-harness taxonomies can tell it from a relayed
// upstream failure.
func writeRouterError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set(OriginHeader, OriginRouter)
	writeError(w, code, msg)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{msg})
}
