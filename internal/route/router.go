package route

// Router is the stateless front tier of a sharded scserved fleet. It
// consistent-hashes each request's canonical contract spec hash — the
// same sha256 key the backends use for their compiled-engine LRU —
// onto a rendezvous ring of backends, so every spec lands on the one
// backend whose cache is hot for it. Requests that carry no parseable
// spec (health probes, the survey endpoints, malformed bodies the
// backend will reject anyway) round-robin instead.
//
// Membership is health-aware: a per-backend resilience.Breaker absorbs
// both forward outcomes and background /readyz polls. Transport errors
// and 502/503 responses count as failures; FailureThreshold of them in
// a row eject the backend (breaker opens) and the poll loop's next
// Allow after the cooldown doubles as the readmission probe. While a
// backend is ejected, its keys fail over to the next backend in their
// rendezvous order — and snap back, cache intact, on readmission.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/contract"
	"repro/internal/resilience"
)

// maxBodyBytes mirrors the backend's request-body cap; the router
// buffers bodies (for hashing and retries) so it enforces the same
// bound.
const maxBodyBytes = 16 << 20

// Config tunes a Router. Backends is required; everything else has a
// usable zero value.
type Config struct {
	// Backends are the scserved base URLs (e.g. http://127.0.0.1:9101).
	// The URL string is also the backend's rendezvous identity, so keep
	// it stable across restarts.
	Backends []string
	// Client issues forwards and health polls; nil selects a client
	// with no overall timeout (per-request contexts bound forwards).
	Client *http.Client
	// PollInterval is the /readyz poll cadence; <= 0 selects 1 s.
	PollInterval time.Duration
	// FailureThreshold and OpenTimeout tune each backend's breaker;
	// zero values select resilience defaults (5 failures, 30 s).
	FailureThreshold int
	OpenTimeout      time.Duration
	// Logger, when set, logs ejections and readmissions.
	Logger *slog.Logger
}

// backend is one ring member: its identity, breaker, and last-poll
// readiness (exported on /metrics; eligibility is the breaker's call).
type backend struct {
	name    string
	breaker *resilience.Breaker
	ready   atomic.Bool
}

// Router is an http.Handler that forwards requests to a fleet of
// scserved backends. Construct with NewRouter; optionally call Start
// to begin background health polling.
type Router struct {
	cfg      Config
	client   *http.Client
	backends []*backend
	names    []string
	byName   map[string]*backend
	rr       atomic.Uint64
	metrics  *metrics
	mux      *http.ServeMux
}

// NewRouter builds a router over the configured backends.
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("route: no backends configured")
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = time.Second
	}
	rt := &Router{
		cfg:     cfg,
		client:  cfg.Client,
		byName:  make(map[string]*backend, len(cfg.Backends)),
		metrics: newMetrics(),
		mux:     http.NewServeMux(),
	}
	if rt.client == nil {
		rt.client = &http.Client{}
	}
	for _, name := range cfg.Backends {
		if _, dup := rt.byName[name]; dup {
			return nil, fmt.Errorf("route: duplicate backend %q", name)
		}
		b := &backend{name: name}
		b.ready.Store(true) // optimistic until the first poll says otherwise
		b.breaker = resilience.NewBreaker(resilience.BreakerConfig{
			FailureThreshold: cfg.FailureThreshold,
			OpenTimeout:      cfg.OpenTimeout,
			OnTransition:     rt.onTransition(name),
		})
		rt.backends = append(rt.backends, b)
		rt.names = append(rt.names, name)
		rt.byName[name] = b
	}
	rt.mux.HandleFunc("/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("/readyz", rt.handleReadyz)
	rt.mux.HandleFunc("/metrics", rt.handleMetrics)
	rt.mux.HandleFunc("/", rt.handleProxy)
	return rt, nil
}

// onTransition builds the breaker callback for one backend: count
// ejections and log membership changes.
func (rt *Router) onTransition(name string) func(from, to resilience.State) {
	return func(from, to resilience.State) {
		switch {
		case to == resilience.Open:
			rt.metrics.observeEjection(name)
			if rt.cfg.Logger != nil {
				rt.cfg.Logger.Warn("backend ejected", "backend", name, "from", from.String())
			}
		case to == resilience.Closed && from != resilience.Closed:
			if rt.cfg.Logger != nil {
				rt.cfg.Logger.Info("backend readmitted", "backend", name)
			}
		}
	}
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Start launches the background /readyz poll loops; they stop when ctx
// is canceled. Without Start the router still routes — membership then
// reacts to forward outcomes only.
func (rt *Router) Start(ctx context.Context) {
	for _, b := range rt.backends {
		go rt.pollLoop(ctx, b)
	}
}

// pollLoop probes one backend's /readyz through its breaker until ctx
// is canceled. While the breaker is open the Allow call is rejected
// (the backend stays ejected for free); the first Allow after the
// cooldown claims the half-open probe slot, so the poll cadence is
// also the readmission cadence.
func (rt *Router) pollLoop(ctx context.Context, b *backend) {
	t := time.NewTicker(rt.cfg.PollInterval)
	defer t.Stop()
	rt.pollOnce(ctx, b)
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.pollOnce(ctx, b)
		}
	}
}

func (rt *Router) pollOnce(ctx context.Context, b *backend) {
	done, err := b.breaker.Allow()
	if err != nil {
		return // open and cooling down: stay ejected
	}
	pctx, cancel := context.WithTimeout(ctx, rt.cfg.PollInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, b.name+"/readyz", nil)
	if err != nil {
		done(false)
		return
	}
	resp, err := rt.client.Do(req)
	ok := err == nil && resp.StatusCode == http.StatusOK
	if resp != nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	b.ready.Store(ok)
	done(ok)
}

// eligible reports whether the backend currently accepts forwards: its
// breaker is not open. (Half-open counts — a forward is as good a
// probe as a poll.)
func (b *backend) eligible() bool { return b.breaker.State() != resilience.Open }

// healthySet maps every backend to its current eligibility.
func (rt *Router) healthySet() map[string]bool {
	out := make(map[string]bool, len(rt.backends))
	for _, b := range rt.backends {
		out[b.name] = b.eligible()
	}
	return out
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports 200 while at least one backend is eligible.
func (rt *Router) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	for _, b := range rt.backends {
		if b.eligible() {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, "ok")
			return
		}
	}
	writeError(w, http.StatusServiceUnavailable, "no healthy backend")
}

func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.metrics.render(w, rt.healthySet())
}

// routingKey derives the consistent-hash key from a request body: the
// canonical hash of the first contract spec it carries (`contract`, or
// `contracts[0]` for batch). This is exactly the backends' engine-LRU
// key, which is what makes sharding keep their caches hot. Returns
// ok=false when the body has no parseable spec.
func routingKey(body []byte) (string, bool) {
	if len(body) == 0 {
		return "", false
	}
	var env struct {
		Contract  json.RawMessage   `json:"contract"`
		Contracts []json.RawMessage `json:"contracts"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		return "", false
	}
	raw := env.Contract
	if len(raw) == 0 && len(env.Contracts) > 0 {
		raw = env.Contracts[0]
	}
	if len(raw) == 0 {
		return "", false
	}
	spec, err := contract.ParseSpec(raw)
	if err != nil {
		return "", false
	}
	key, err := contract.HashSpec(spec)
	if err != nil {
		return "", false
	}
	return key, true
}

// order computes the forward preference for one request: rendezvous
// rank for keyed requests, a rotating round-robin order otherwise.
func (rt *Router) order(body []byte) []string {
	if key, ok := routingKey(body); ok {
		return Rank(rt.names, key)
	}
	start := int(rt.rr.Add(1)-1) % len(rt.names)
	out := make([]string, 0, len(rt.names))
	for i := range rt.names {
		out = append(out, rt.names[(start+i)%len(rt.names)])
	}
	return out
}

// handleProxy forwards one request along its preference order. A
// transport error or 502/503 counts against the backend's breaker and
// moves on to the next eligible backend; any other response — 200s,
// 400s, and crucially 429 shed — relays as-is and counts as backend
// success. When every backend fails, the last upstream 502/503 relays
// (it is the truth); with no response at all the router answers 502.
func (rt *Router) handleProxy(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		rt.metrics.observeRequest(r.URL.Path, http.StatusBadRequest)
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}

	var (
		lastStatus int
		lastHeader http.Header
		lastBody   []byte
		tried      int
	)
	for _, name := range rt.order(body) {
		b := rt.byName[name]
		if !b.eligible() {
			continue
		}
		done, err := b.breaker.Allow()
		if err != nil {
			continue // lost the race to an ejection or probe slot
		}
		if tried > 0 {
			rt.metrics.retries.Add(1)
		}
		tried++

		start := time.Now()
		resp, err := rt.forward(r, name, body)
		if err != nil {
			rt.metrics.observeBackend(name, 0)
			done(false)
			continue
		}
		if resp.StatusCode == http.StatusBadGateway || resp.StatusCode == http.StatusServiceUnavailable {
			rt.metrics.observeBackend(name, resp.StatusCode)
			lastStatus = resp.StatusCode
			lastHeader = resp.Header
			lastBody, _ = io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
			resp.Body.Close()
			done(false)
			continue
		}

		rt.metrics.observeBackend(name, resp.StatusCode)
		code, relayErr := rt.relay(w, resp)
		rt.metrics.upstream.Observe(time.Since(start).Seconds())
		// The backend served us fine either way: a relay error means
		// the CLIENT hung up mid-copy, which must not eject the backend.
		done(true)
		if relayErr != nil && rt.cfg.Logger != nil {
			rt.cfg.Logger.Info("client hangup mid-relay", "backend", name, "path", r.URL.Path)
		}
		rt.metrics.observeRequest(r.URL.Path, code)
		return
	}

	if lastStatus != 0 {
		copyHeader(w.Header(), lastHeader)
		w.WriteHeader(lastStatus)
		_, _ = w.Write(lastBody)
		rt.metrics.observeRequest(r.URL.Path, lastStatus)
		return
	}
	rt.metrics.noBackend.Add(1)
	rt.metrics.observeRequest(r.URL.Path, http.StatusBadGateway)
	writeError(w, http.StatusBadGateway, "no healthy backend")
}

// forward sends the buffered request to one backend.
func (rt *Router) forward(r *http.Request, name string, body []byte) (*http.Response, error) {
	url := name + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	copyHeader(req.Header, r.Header)
	return rt.client.Do(req)
}

// relay copies one upstream response to the client, returning the
// status code written.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response) (int, error) {
	defer resp.Body.Close()
	copyHeader(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	_, err := io.Copy(w, resp.Body)
	return resp.StatusCode, err
}

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{msg})
}
