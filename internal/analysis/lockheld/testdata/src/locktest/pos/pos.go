// Package pos holds lockheld true positives: slow or blocking work
// performed while a sync.Mutex/RWMutex is held.
package pos

import (
	"context"
	"net"
	"net/http"
	"sync"
	"time"

	"internal/contract"
	"internal/resilience"
)

type fetcher interface {
	Fetch(ctx context.Context, lo, hi int64) ([]float64, error)
}

type server struct {
	mu     sync.Mutex
	rw     sync.RWMutex
	ch     chan int
	onEvt  func(int)
	client *http.Client
	feed   fetcher
	wg     sync.WaitGroup
}

func (s *server) sleepy() {
	s.mu.Lock()
	time.Sleep(time.Second) // want `time.Sleep while holding s.mu`
	s.mu.Unlock()
}

func (s *server) sendHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 1 // want `channel send while holding s.mu`
}

func (s *server) recvHeld() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want `blocking channel receive while holding s.mu`
}

func (s *server) netHeld() error {
	s.rw.RLock()
	defer s.rw.RUnlock()
	_, err := http.Get("http://example.com/prices") // want `net/http Get while holding s.rw`
	return err
}

func (s *server) dialHeld() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := net.Dial("tcp", "db:5432") // want `net.Dial while holding s.mu`
	return err
}

func (s *server) clientHeld(req *http.Request) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.client.Do(req) // want `net/http Do while holding s.mu`
	return err
}

func (s *server) callbackHeld() {
	s.mu.Lock()
	s.onEvt(1) // want `call through function value s.onEvt while holding s.mu`
	s.mu.Unlock()
}

func (s *server) compileHeld(spec contract.Spec) (*contract.Engine, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return spec.Build() // want `contract engine compile \(Build\) while holding s.mu`
}

func (s *server) retryHeld(ctx context.Context, r *resilience.Retry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return r.Do(ctx, func(context.Context) error { return nil }) // want `resilience Retry.Do while holding s.mu`
}

func (s *server) fetchHeld(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.feed.Fetch(ctx, 0, 1) // want `provider Fetch while holding s.mu`
	return err
}

func (s *server) waitHeld() {
	s.mu.Lock()
	s.wg.Wait() // want `sync ...Wait while holding s.mu`
	s.mu.Unlock()
}

func (s *server) selectHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `blocking select while holding s.mu`
	case v := <-s.ch:
		_ = v
	case s.ch <- 2:
	}
}

// Methods named ...Locked hold their receiver's lock by convention:
// the body is analyzed as held-at-entry. This is the breaker bug shape.
func (s *server) notifyLocked() {
	s.onEvt(2) // want `call through function value s.onEvt while holding the caller's lock`
}
