package optimize_test

// Fuzz pin for the optimizer's safety contract: whatever the seed and
// flexibility envelope, every returned schedule conserves energy within
// the partial-execution budget, never violates ramp or floor
// constraints, and never costs more than the baseline.

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/contract"
	"repro/internal/hpc"
	"repro/internal/optimize"
	"repro/internal/units"
)

func FuzzOptimizeFeasible(f *testing.F) {
	f.Add(int64(1), 0.10, 0.20, 0.0, 0.0)
	f.Add(int64(99), 0.50, 0.0, 500.0, 9000.0)
	f.Add(int64(7), 0.01, 0.99, 50.0, 11000.0)
	f.Add(int64(-3), 1.0, 1.0, 1.0, 20000.0)
	f.Add(int64(0), 0.0, 0.05, 0.0, 100.0)

	// A compact two-month load so each fuzz execution stays cheap.
	load, err := hpc.SyntheticFacilityLoad(hpc.LoadProfileConfig{
		Start: time.Date(2016, time.March, 15, 0, 0, 0, 0, time.UTC),
		Span:  40 * 24 * time.Hour, Interval: time.Hour,
		Base: 10 * units.Megawatt, PeakToAverage: 1.7, NoiseSigma: 0.05, Seed: 5,
	})
	if err != nil {
		f.Fatal(err)
	}
	eng := demandEngine(f)

	f.Fuzz(func(t *testing.T, seed int64, deferFrac, partialFrac, rampKW, floorKW float64) {
		flex := optimize.Flexibility{
			DeferrableFraction: clamp01(deferFrac),
			PartialFraction:    clamp01(partialFrac),
			MaxRampKW:          clampRange(rampKW, 0, 1e6),
			FloorKW:            clampRange(floorKW, 0, 1e6),
		}
		res, err := optimize.Optimize(context.Background(), eng, load,
			contract.BillingInput{}, flex, optimize.Options{Seed: seed, Candidates: 48})
		if err != nil {
			t.Fatalf("flex %+v seed %d: %v", flex, seed, err)
		}
		if err := optimize.CheckFeasible(load, res.Series, flex, res.DroppedKWh); err != nil {
			t.Fatalf("infeasible schedule escaped: %v (flex %+v seed %d)", err, flex, seed)
		}
		if res.OptimizedMoney() > res.BaselineMoney() {
			t.Fatalf("optimized bill %v exceeds baseline %v", res.OptimizedMoney(), res.BaselineMoney())
		}
		eBase, eOpt := float64(load.Energy()), res.Optimized.EnergyKWh
		budget := flex.PartialFraction*eBase + 1e-3
		if eBase-eOpt > budget {
			t.Fatalf("energy drop %.3f kWh exceeds partial budget %.3f kWh", eBase-eOpt, budget)
		}
	})
}

func clamp01(v float64) float64 {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func clampRange(v, lo, hi float64) float64 {
	if math.IsNaN(v) || v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
