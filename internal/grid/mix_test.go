package grid

import (
	"math"
	"testing"
	"time"

	"repro/internal/timeseries"
	"repro/internal/units"
)

func TestRenewableShareFlatVsSolar(t *testing.T) {
	// Flat 1 MW consumption for a day; allocated solar with 24 MWh
	// total but concentrated in daylight.
	consumption := timeseries.ConstantPower(t0, time.Hour, 24, 1000)
	solarSamples := make([]units.Power, 24)
	for h := 8; h < 16; h++ {
		solarSamples[h] = 3000 // 8 h × 3 MW = 24 MWh
	}
	renewable := timeseries.MustNewPower(t0, time.Hour, solarSamples)

	rep, err := RenewableShare(consumption, renewable)
	if err != nil {
		t.Fatal(err)
	}
	// Annually: 24 MWh renewable vs 24 MWh consumed → 100 %.
	if math.Abs(rep.AnnualShare-1) > 1e-9 {
		t.Errorf("annual share = %v", rep.AnnualShare)
	}
	// Time-matched: only the 8 daylight hours are covered → 8/24.
	if math.Abs(rep.TimeMatchedShare-8.0/24) > 1e-9 {
		t.Errorf("time-matched share = %v", rep.TimeMatchedShare)
	}
	if rep.MatchingGap() <= 0 {
		t.Error("solar against flat load must show a matching gap")
	}
}

func TestRenewableSharePerfectMatch(t *testing.T) {
	c := timeseries.ConstantPower(t0, time.Hour, 24, 1000)
	rep, err := RenewableShare(c, c)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AnnualShare != 1 || rep.TimeMatchedShare != 1 || rep.MatchingGap() != 0 {
		t.Errorf("perfect match: %+v", rep)
	}
}

func TestRenewableSharePartial(t *testing.T) {
	c := timeseries.ConstantPower(t0, time.Hour, 10, 1000)
	r := timeseries.ConstantPower(t0, time.Hour, 10, 800)
	rep, err := RenewableShare(c, r)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.AnnualShare-0.8) > 1e-9 || math.Abs(rep.TimeMatchedShare-0.8) > 1e-9 {
		t.Errorf("constant partial: %+v", rep)
	}
}

func TestRenewableShareValidation(t *testing.T) {
	c := timeseries.ConstantPower(t0, time.Hour, 4, 1000)
	if _, err := RenewableShare(nil, c); err == nil {
		t.Error("nil consumption should fail")
	}
	if _, err := RenewableShare(c, nil); err == nil {
		t.Error("nil renewable should fail")
	}
	short := timeseries.ConstantPower(t0, time.Hour, 3, 500)
	if _, err := RenewableShare(c, short); err == nil {
		t.Error("misaligned should fail")
	}
	empty := timeseries.MustNewPower(t0, time.Hour, nil)
	if _, err := RenewableShare(empty, empty); err == nil {
		t.Error("empty should fail")
	}
	zeros := timeseries.ConstantPower(t0, time.Hour, 4, 0)
	if _, err := RenewableShare(zeros, c); err == nil {
		t.Error("zero consumption should fail")
	}
	// Negative renewable samples clamp, not crash.
	neg := timeseries.ConstantPower(t0, time.Hour, 4, -100)
	rep, err := RenewableShare(c, neg)
	if err != nil || rep.TimeMatchedShare != 0 {
		t.Errorf("negative renewables should count as zero: %+v (%v)", rep, err)
	}
}

func TestVerifyMixClause(t *testing.T) {
	rep := &MixReport{AnnualShare: 0.85, TimeMatchedShare: 0.60}
	// CSCS-style 80 % floor passes annually, fails time-matched.
	ok, err := VerifyMixClause(rep, 0.80, false)
	if err != nil || !ok {
		t.Errorf("annual clause: %v %v", ok, err)
	}
	ok, err = VerifyMixClause(rep, 0.80, true)
	if err != nil || ok {
		t.Errorf("time-matched clause should fail: %v %v", ok, err)
	}
	if _, err := VerifyMixClause(nil, 0.8, false); err == nil {
		t.Error("nil report should fail")
	}
	if _, err := VerifyMixClause(rep, 1.5, false); err == nil {
		t.Error("bad floor should fail")
	}
}
