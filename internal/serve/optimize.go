package serve

// POST /v1/optimize: the demand-charge optimization endpoint. The
// request carries a contract spec, a load profile, and a flexibility
// envelope; the response is the optimize.Result — optimized bill,
// per-component savings, binding constraints, and search statistics.
// The endpoint shares the bill path's whole service envelope: the
// admission gate (429 when the queue is full, 504 when the deadline
// expires while queued), the engine LRU, and the degraded-feed
// semantics — a dead price feed swaps dynamic tariffs for the declared
// fallback rate and marks the response "degraded": true, exactly as
// /v1/bill does. The optimizer's per-stage spans (optimize_search,
// optimize_evaluate) ride the request context into the server's span
// registry and surface as scserved_stage_seconds.

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/obs"
	"repro/internal/optimize"
)

// maxOptimizeCandidates bounds the search length one request may ask
// for: the search is CPU-bound at roughly a millisecond per candidate
// on a year-long load, so the cap keeps a single request from pinning
// an evaluation slot for minutes.
const maxOptimizeCandidates = 5000

// SearchSpec tunes the optimizer's annealing search over the wire.
type SearchSpec struct {
	// Seed seeds the deterministic search; same seed, same request,
	// same response bytes. Zero selects seed 1.
	Seed int64 `json:"seed,omitempty"`
	// Candidates is the number of perturbations to attempt (default
	// 2000, capped server-side).
	Candidates int `json:"candidates,omitempty"`
}

// OptimizeRequest is the POST /v1/optimize body.
type OptimizeRequest struct {
	Contract    json.RawMessage      `json:"contract"`
	Load        LoadSpec             `json:"load"`
	Input       *InputSpec           `json:"input,omitempty"`
	Feed        *FeedSpec            `json:"feed,omitempty"`
	Flexibility optimize.Flexibility `json:"flexibility"`
	Search      *SearchSpec          `json:"search,omitempty"`
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var req OptimizeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	opts := optimize.Options{}
	if req.Search != nil {
		opts.Seed = req.Search.Seed
		opts.Candidates = req.Search.Candidates
	}
	if opts.Candidates > maxOptimizeCandidates {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("search.candidates %d exceeds the limit of %d", opts.Candidates, maxOptimizeCandidates))
		return
	}
	load, err := resolveLoad(req.Load)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	eng, feedRes, err := s.engineFor(r.Context(), req.Contract, req.Feed, load)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.noteFeed(w, feedRes)

	if hook := s.billHook; hook != nil {
		hook(r.Context())
	}

	res, err := optimize.Optimize(r.Context(), eng, load, resolveInput(req.Input), req.Flexibility, opts)
	if err != nil {
		writeEvalError(w, err)
		return
	}

	endEncode := obs.Span(r.Context(), stageEncode)
	defer endEncode()
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if feedRes.degraded() {
		data = markDegraded(data, feedRes.reason)
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
	_, _ = w.Write([]byte("\n"))
}
