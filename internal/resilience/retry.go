// Package resilience holds the generic fault-tolerance primitives the
// price-feed subsystem is built on: a Retry policy with exponential
// backoff and deterministic seeded jitter, and a Breaker circuit
// breaker (closed → open → half-open with a probe budget). Both are
// stdlib-only and carry no feed-specific knowledge — the paper's
// contingency discussion (sites keeping a fixed-price backstop, LANL's
// on-site generation) is about operating through upstream failure, and
// these are the mechanisms that turn "the market feed is down" into a
// bounded, observable degradation instead of an outage.
package resilience

import (
	"context"
	"fmt"
	"math"
	"time"
)

// Retry is an exponential-backoff retry policy. The zero value is
// usable: every field has a production-lean default. Jitter is
// deterministic per (Seed, attempt), so a fixed seed reproduces the
// exact delay sequence — chaos runs and tests can replay a schedule.
type Retry struct {
	// MaxAttempts bounds the total tries (first call included);
	// <= 0 selects 4.
	MaxAttempts int
	// Base is the backoff envelope's first delay; <= 0 selects 100 ms.
	Base time.Duration
	// Cap is the backoff ceiling; <= 0 selects 10 s.
	Cap time.Duration
	// Multiplier grows the envelope per attempt; < 1 selects 2.
	Multiplier float64
	// Seed drives the deterministic jitter. The same seed yields the
	// same delay for the same attempt number.
	Seed int64
	// Sleep waits between attempts; nil selects a context-aware timer
	// wait. Tests inject a recorder here.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (r Retry) withDefaults() Retry {
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 4
	}
	if r.Base <= 0 {
		r.Base = 100 * time.Millisecond
	}
	if r.Cap <= 0 {
		r.Cap = 10 * time.Second
	}
	if r.Cap < r.Base {
		r.Cap = r.Base
	}
	if r.Multiplier < 1 {
		r.Multiplier = 2
	}
	if r.Sleep == nil {
		r.Sleep = sleepCtx
	}
	return r
}

// sleepCtx waits for d or until the context is done, whichever is
// first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// splitmix64 is the SplitMix64 finalizer — a tiny, allocation-free
// bijective mixer good enough to decorrelate per-attempt jitter.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// jitterFrac returns a deterministic fraction in [0, 1) for (seed,
// attempt).
func jitterFrac(seed int64, attempt int) float64 {
	return float64(splitmix64(uint64(seed)^splitmix64(uint64(attempt)))>>11) / float64(1<<53)
}

// Backoff returns the jittered delay before retrying after the given
// zero-based attempt. The delay always lies within [Base, Cap]: the
// exponential envelope is min(Cap, Base×Multiplier^attempt) and the
// jitter places the delay uniformly between Base and that envelope, so
// early retries stay prompt while repeated failures spread out without
// ever collapsing below the base or exceeding the cap.
func (r Retry) Backoff(attempt int) time.Duration {
	r = r.withDefaults()
	if attempt < 0 {
		attempt = 0
	}
	envelope := float64(r.Cap)
	// Grow in float space, bailing out once past the cap so large
	// attempt numbers cannot overflow.
	e := float64(r.Base)
	for i := 0; i < attempt; i++ {
		e *= r.Multiplier
		if e >= envelope {
			e = envelope
			break
		}
	}
	if e < envelope {
		envelope = e
	}
	d := float64(r.Base) + jitterFrac(r.Seed, attempt)*(envelope-float64(r.Base))
	if math.IsNaN(d) || d < float64(r.Base) {
		d = float64(r.Base)
	}
	if d > float64(r.Cap) {
		d = float64(r.Cap)
	}
	return time.Duration(d)
}

// Do runs op until it succeeds, the attempt budget is spent, or the
// context is done. Between failures it sleeps Backoff(attempt). The
// last error is returned wrapped with the attempt count; a context
// error (from the context itself, not op's return) stops retrying
// immediately.
func (r Retry) Do(ctx context.Context, op func(ctx context.Context) error) error {
	r = r.withDefaults()
	var err error
	for attempt := 0; attempt < r.MaxAttempts; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			if err == nil {
				return cerr
			}
			return fmt.Errorf("resilience: gave up after %d attempts (%w): last error: %v", attempt, cerr, err)
		}
		if err = op(ctx); err == nil {
			return nil
		}
		if attempt+1 >= r.MaxAttempts {
			break
		}
		if serr := r.Sleep(ctx, r.Backoff(attempt)); serr != nil {
			return fmt.Errorf("resilience: gave up after %d attempts (%w): last error: %v", attempt+1, serr, err)
		}
	}
	return fmt.Errorf("resilience: gave up after %d attempts: %w", r.MaxAttempts, err)
}
