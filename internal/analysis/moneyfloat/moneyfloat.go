// Package moneyfloat forbids float equality and raw float literals on
// money values.
//
// Invariant guarded: bills are computed in micro-unit fixed point
// (units.Money, an int64). Float-typed money — units.EnergyPrice,
// units.DemandPrice, or the result of Money.Float() — exists only at
// the tariff-input and presentation edges and must never be compared
// with == or !=, where representation error makes equal amounts
// unequal. Raw float literals must not flow into micro-unit amounts
// except through the blessed conversion helpers: internal/units owns
// the converters and internal/contract is the one place tariff specs
// turn external float rates into Money.
package moneyfloat

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "moneyfloat",
	Doc: "forbid ==/!= on float-typed money and raw float literals flowing " +
		"into micro-unit amounts outside internal/units and internal/contract",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if analysis.InScope(pass.Pkg, "internal/units") {
		return nil // home of the blessed converters
	}
	blessedLiterals := analysis.InScope(pass.Pkg, "internal/contract")
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				why := floatMoney(pass, n.X)
				if why == "" {
					why = floatMoney(pass, n.Y)
				}
				if why != "" {
					pass.Reportf(n.OpPos,
						"%s on float-typed money (%s) is unreliable; convert to units.Money and compare micro-units",
						n.Op, why)
				}
			case *ast.CallExpr:
				if analysis.IsConversion(info, n) && len(n.Args) == 1 {
					if analysis.TypeIs(info.Types[n.Fun].Type, "internal/units", "Money") &&
						analysis.IsFloat(info.Types[ast.Unparen(n.Args[0])].Type) {
						pass.Reportf(n.Pos(),
							"float-to-Money conversion truncates; use units.MoneyFromFloat for half-away-from-zero rounding")
					}
					return true
				}
				if blessedLiterals {
					return true
				}
				if fn := analysis.CalleeFunc(info, n); analysis.FuncIs(fn, "internal/units", "MoneyFromFloat") &&
					len(n.Args) == 1 && isFloatLiteral(n.Args[0]) {
					pass.Reportf(n.Args[0].Pos(),
						"raw float literal flows into micro-unit money; use units.Cents/units.CurrencyUnits or define the rate in internal/contract")
				}
			}
			return true
		})
	}
	return nil
}

// floatMoney describes why e is float-typed money, or returns "".
func floatMoney(pass *analysis.Pass, e ast.Expr) string {
	info := pass.TypesInfo
	t := info.Types[e].Type
	if analysis.TypeIs(t, "internal/units", "EnergyPrice") {
		return "units.EnergyPrice"
	}
	if analysis.TypeIs(t, "internal/units", "DemandPrice") {
		return "units.DemandPrice"
	}
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if fn := analysis.CalleeFunc(info, call); fn != nil && fn.Name() == "Float" {
			if sig, ok := fn.Type().(*types.Signature); ok {
				if recv := sig.Recv(); recv != nil &&
					analysis.TypeIs(recv.Type(), "internal/units", "Money") {
					return "units.Money.Float()"
				}
			}
		}
	}
	return ""
}

// isFloatLiteral matches 1.5, -1.5, +1.5 (and parenthesisations).
func isFloatLiteral(e ast.Expr) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && (u.Op == token.SUB || u.Op == token.ADD) {
		e = ast.Unparen(u.X)
	}
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Kind == token.FLOAT
}
