package metricname_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/metricname"
)

func TestMetricName(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), metricname.Analyzer,
		"internal/serve/pos",
		"internal/serve/neg",
		"internal/route/pos",
		"internal/route/neg",
		"internal/obs/writer",
		"outofscope/exporter",
	)
}
