// Command scroute fronts a sharded scserved fleet: a stateless reverse
// proxy that consistent-hashes each request's contract spec — the same
// canonical hash the backends key their compiled-engine LRU on — onto
// a rendezvous ring of backends, so every spec keeps hitting the one
// backend whose cache is hot for it. See internal/route.
//
// Usage:
//
//	scroute -addr :9090 -backends http://127.0.0.1:9101,http://127.0.0.1:9102
//	scroute -addr :9090 -backends ... -poll-interval 500ms -open-timeout 5s
//
// Backends are health-checked against /readyz on -poll-interval; a
// backend that fails -failure-threshold consecutive forwards or polls
// is ejected from the ring (its keys fail over to their next-ranked
// backend) and readmitted by a successful probe after -open-timeout.
// Every forward runs under a per-try timeout (-try-timeout-floor /
// -try-timeout-ceil) so a hung backend counts as a breaker failure;
// idempotent requests are hedged after a p95-based delay; retries and
// hedges share a token budget (-retry-budget-ratio / -retry-budget-
// burst); and the remaining request budget is propagated downstream as
// X-SCBill-Deadline-Ms. The router exposes its own /healthz, /readyz
// (503 when the whole fleet is ejected), and /metrics (scroute_*
// namespace).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/route"
)

func main() {
	addr := flag.String("addr", ":9090", "listen address")
	backends := flag.String("backends", "", "comma-separated scserved base URLs (required)")
	pollInterval := flag.Duration("poll-interval", time.Second, "backend /readyz poll cadence (jittered ±10%)")
	failureThreshold := flag.Int("failure-threshold", 3, "consecutive failures before a backend is ejected")
	openTimeout := flag.Duration("open-timeout", 5*time.Second, "cooldown before an ejected backend is probed for readmission")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "end-to-end deadline per proxied request (tightened by a propagated X-SCBill-Deadline-Ms)")
	tryFloor := flag.Duration("try-timeout-floor", 250*time.Millisecond, "minimum per-try forward timeout")
	tryCeil := flag.Duration("try-timeout-ceil", 10*time.Second, "maximum per-try forward timeout (the gray-failure detector)")
	hedgeFloor := flag.Duration("hedge-delay-floor", 25*time.Millisecond, "minimum hedge delay regardless of observed p95")
	noHedge := flag.Bool("no-hedge", false, "disable speculative hedged requests")
	budgetRatio := flag.Float64("retry-budget-ratio", 0.1, "retry/hedge tokens earned per primary request")
	budgetBurst := flag.Float64("retry-budget-burst", 10, "retry/hedge token bucket burst capacity")
	logFormat := flag.String("log-format", "text", "membership log format: text, json, or off")
	flag.Parse()

	logger, err := routeLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scroute:", err)
		os.Exit(2)
	}

	urls := splitBackends(*backends)
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "scroute: -backends is required (comma-separated base URLs)")
		os.Exit(2)
	}

	// A transport with a deep idle pool per backend: the default keeps 2
	// idle conns per host, which under fleet load churns a connection
	// per forward. No client-level timeout — the router bounds every
	// forward with its own per-try context.
	transport := &http.Transport{
		MaxIdleConns:        1024,
		MaxIdleConnsPerHost: 512,
	}
	rt, err := route.NewRouter(route.Config{
		Backends:         urls,
		Client:           &http.Client{Transport: transport},
		PollInterval:     *pollInterval,
		FailureThreshold: *failureThreshold,
		OpenTimeout:      *openTimeout,
		RequestTimeout:   *requestTimeout,
		TryTimeoutFloor:  *tryFloor,
		TryTimeoutCeil:   *tryCeil,
		HedgeDelayFloor:  *hedgeFloor,
		DisableHedge:     *noHedge,
		BudgetRatio:      *budgetRatio,
		BudgetBurst:      *budgetBurst,
		Logger:           logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "scroute:", err)
		os.Exit(2)
	}

	if err := run(*addr, rt, urls); err != nil {
		fmt.Fprintln(os.Stderr, "scroute:", err)
		os.Exit(1)
	}
}

func splitBackends(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(part), "/"))
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

func routeLogger(format string) (*slog.Logger, error) {
	switch format {
	case "off", "none":
		return nil, nil
	case "text", "json":
		return obs.NewLogger(os.Stderr, format, slog.LevelInfo), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text, json, or off)", format)
	}
}

func run(addr string, rt *route.Router, urls []string) error {
	pollCtx, stopPolls := context.WithCancel(context.Background())
	defer stopPolls()
	rt.Start(pollCtx)

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("scroute listening on %s, fleet: %s", addr, strings.Join(urls, ", "))
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		return err
	case sig := <-stop:
		log.Printf("scroute: %s received, draining", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	stopPolls()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	// The server is drained; wait for the loser-settlement goroutines
	// so every hedge loser's breaker outcome lands before exit.
	rt.Wait()
	log.Printf("scroute: drained, bye")
	return nil
}
