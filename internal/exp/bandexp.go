package exp

// E20: living inside a powerband (§3.2.2). Half the surveyed sites are
// subject to powerbands with upper AND lower limits under continuous
// sampling; a batch facility's utilization troughs violate the lower
// limit just as its bursts violate the upper. A battery running a
// band-keeping policy — discharge above the band, charge below it —
// absorbs both kinds of excursion.

import (
	"fmt"
	"time"

	"repro/internal/demand"
	"repro/internal/hpc"
	"repro/internal/report"
	"repro/internal/storage"
	"repro/internal/timeseries"
	"repro/internal/units"
)

func init() {
	register("E20", runE20)
}

// E20Result compares band compliance with and without the battery.
type E20Result struct {
	RawCompliance  float64
	RawPenalty     units.Money
	KeptCompliance float64
	KeptPenalty    units.Money
	Cycles         float64
}

// bandKeeper returns a storage dispatch policy that holds the net load
// inside [lower, upper].
func bandKeeper(load *timeseries.PowerSeries, lower, upper units.Power) func(i int, p units.Power, soc float64) units.Power {
	return func(i int, p units.Power, soc float64) units.Power {
		switch {
		case p > upper:
			return -(p - upper) // discharge the excess
		case p < lower:
			return lower - p // charge up to the floor
		default:
			return 0
		}
	}
}

// RunE20 builds a volatile week (big diurnal swing and noise around
// 10 MW), prices it against an [8 MW, 12 MW] powerband, and lets a
// battery keep the band.
func RunE20() (*E20Result, error) {
	load, err := hpc.SyntheticFacilityLoad(hpc.LoadProfileConfig{
		Start: expStart, Span: 7 * 24 * time.Hour, Interval: 15 * time.Minute,
		Base: 10 * units.Megawatt, PeakToAverage: 1.4,
		DiurnalSwing: 0.25, NoiseSigma: 0.03, Seed: 29,
	})
	if err != nil {
		return nil, err
	}
	band, err := demand.NewPowerband(8*units.Megawatt, 12*units.Megawatt, 0.20, 0.40)
	if err != nil {
		return nil, err
	}
	b := &storage.Battery{
		Capacity:            12 * units.MegawattHour,
		MaxCharge:           3 * units.Megawatt,
		MaxDischarge:        4 * units.Megawatt,
		RoundTripEfficiency: 0.90,
		InitialSoC:          0.5,
	}
	res, err := storage.RunPolicy(b, load, bandKeeper(load, band.Lower, band.Upper))
	if err != nil {
		return nil, err
	}
	return &E20Result{
		RawCompliance:  band.ComplianceRatio(load),
		RawPenalty:     band.Cost(load),
		KeptCompliance: band.ComplianceRatio(res.Net),
		KeptPenalty:    band.Cost(res.Net),
		Cycles:         res.EquivalentFullCycles,
	}, nil
}

func runE20() (*Exhibit, error) {
	res, err := RunE20()
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable("Powerband [8 MW, 12 MW] compliance over a volatile week (10 MW site)",
		"Operation", "In-band samples", "Weekly penalty")
	tbl.AddRow("raw batch facility", fmt.Sprintf("%.1f%%", res.RawCompliance*100), res.RawPenalty.String())
	tbl.AddRow("with band-keeping battery", fmt.Sprintf("%.1f%%", res.KeptCompliance*100), res.KeptPenalty.String())
	return &Exhibit{
		ID:         "E20",
		Title:      "Living inside a powerband (extension, §3.2.2)",
		PaperClaim: "§3.2.2: a powerband dictates consumption boundaries (upper and, optionally, lower) with continuous sampling; consumption outside the limits carries high additional cost. Five of the ten sites are subject to one.",
		Table:      tbl,
		Notes: []string{
			fmt.Sprintf("The battery runs %.1f equivalent full cycles for the week — the powerband's continuous sampling is why storage (or the idle-power floor of NOT shutting nodes down) is the natural compliance tool, unlike the three-peak demand charge where only rare peaks matter.", res.Cycles),
		},
	}, nil
}
