package serve

// Deadline-propagation tests: a router-stamped X-SCBill-Deadline-Ms
// budget tightens the request context, a spent one refuses work before
// evaluation starts, and an unparseable one is ignored.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func postBillWithDeadline(t *testing.T, ts *httptest.Server, deadlineMS string) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(BillRequest{
		Contract: specJSON(t, quickstartSpec()),
		Load:     LoadSpec{Profile: "quickstart-month"},
	})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/bill", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if deadlineMS != "" {
		req.Header.Set(deadlineHeader, deadlineMS)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestSpentDeadlineRefusedBeforeEvaluation: X-SCBill-Deadline-Ms <= 0
// answers 504 without starting evaluation or burning a slot.
func TestSpentDeadlineRefusedBeforeEvaluation(t *testing.T) {
	s := NewServer(Config{})
	var evaluated atomic.Bool
	s.billHook = func(context.Context) { evaluated.Store(true) }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, ms := range []string{"0", "-150"} {
		resp, body := postBillWithDeadline(t, ts, ms)
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("deadline %s ms = %d %s, want 504", ms, resp.StatusCode, body)
		}
	}
	if evaluated.Load() {
		t.Error("spent deadline must not start evaluation")
	}
	if got := s.metrics.deadlineExpired.Load(); got != 2 {
		t.Errorf("deadlineExpired = %d, want 2", got)
	}
}

// TestPropagatedDeadlineTightensTimeout: a small propagated budget
// overrides the generous configured RequestTimeout — the blocked
// evaluation 504s in milliseconds, not in 30 s.
func TestPropagatedDeadlineTightensTimeout(t *testing.T) {
	s := NewServer(Config{RequestTimeout: 30 * time.Second})
	s.billHook = func(ctx context.Context) { <-ctx.Done() }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	start := time.Now()
	resp, body := postBillWithDeadline(t, ts, "60")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("tight budget = %d %s, want 504", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("504 took %s; the 60 ms propagated budget did not tighten the deadline", elapsed)
	}
	if got := s.metrics.deadlinePropagated.Load(); got != 1 {
		t.Errorf("deadlinePropagated = %d, want 1", got)
	}
}

// TestGenerousAndMalformedDeadlines: a generous budget serves normally,
// and garbage in the header is ignored rather than refused.
func TestGenerousAndMalformedDeadlines(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, ms := range []string{"30000", "not-a-number", ""} {
		resp, body := postBillWithDeadline(t, ts, ms)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("deadline %q = %d %s, want 200", ms, resp.StatusCode, body)
		}
	}
	if got := s.metrics.deadlinePropagated.Load(); got != 1 {
		t.Errorf("deadlinePropagated = %d, want 1 (only the parseable budget counts)", got)
	}
}
