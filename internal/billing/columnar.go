package billing

// Columnar evaluation: the tight-slice-scan twin of the per-sample
// accumulator walk in billing.go. The period's load is viewed as
// contiguous month blocks (timeseries.MonthBlock); each block is fed to
// every compiled scanner chunk-at-a-time, so the inner loops are plain
// []units.Power scans with no interface dispatch per sample. Built-in
// energy/peak aggregates, context polling (every cancelCheckStride
// samples untraced, every traceBlock samples traced) and the per-family
// span attribution of the traced path are preserved exactly; the
// arithmetic is bit-identical to the legacy walk by the kernel
// compilation contract (kernel.go).

import (
	"context"
	"time"

	"repro/internal/obs"
	"repro/internal/timeseries"
	"repro/internal/units"
)

// scanSet is the pooled per-evaluation state of the columnar path: one
// scanner per kernel, the trace-family grouping of those scanners, the
// month-block scratch, and the period context handed to Begin (kept on
// the set so taking its address does not force a heap escape per
// period).
type scanSet struct {
	scanners []Scanner
	groups   [][]Scanner
	blocks   []timeseries.MonthBlock
	pctx     PeriodContext
}

// newScanSet builds the pool's scanSet from the compiled kernels.
func (e *Evaluator) newScanSet() *scanSet {
	ss := &scanSet{scanners: make([]Scanner, len(e.kernels))}
	for i, k := range e.kernels {
		ss.scanners[i] = k.NewScanner()
	}
	ss.groups = make([][]Scanner, len(e.famIdx))
	for g, idx := range e.famIdx {
		ss.groups[g] = make([]Scanner, len(idx))
		for j, i := range idx {
			ss.groups[g][j] = ss.scanners[i]
		}
	}
	return ss
}

// evaluateColumnar is the columnar counterpart of the sample walk in
// evaluatePeriodInto. load is non-empty and ctx not yet cancelled
// (checked by the caller).
func (e *Evaluator) evaluateColumnar(ctx context.Context, load *timeseries.PowerSeries, pctx PeriodContext, res *Result) error {
	ss := e.pool.Get().(*scanSet)
	defer e.pool.Put(ss)

	interval := load.Interval()
	n := load.Len()
	ss.pctx = pctx
	start := load.Start()
	for _, sc := range ss.scanners {
		sc.Begin(&ss.pctx, start, interval, n)
	}
	ss.blocks = load.AppendBlocks(ss.blocks)

	if reg := obs.SpansFrom(ctx); reg != nil {
		return e.columnarTraced(ctx, reg, load, ss, res)
	}

	done := ctx.Done()
	h := interval.Hours()
	var kwh float64
	peak := load.At(0)
	peakIdx := 0
	for _, blk := range ss.blocks {
		samples := blk.Samples
		for off := 0; off < len(samples); off += cancelCheckStride {
			if done != nil {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			end := off + cancelCheckStride
			if end > len(samples) {
				end = len(samples)
			}
			chunk := samples[off:end]
			base := blk.Offset + off
			for j, p := range chunk {
				en := float64(p) * h
				kwh += en
				if p > peak {
					peak, peakIdx = p, base+j
				}
			}
			for _, sc := range ss.scanners {
				sc.Scan(chunk, base)
			}
		}
	}
	e.finishColumnar(ss, load, res, kwh, peak, peakIdx)
	return nil
}

// columnarTraced is the span-recording twin of the columnar loop: same
// chunking as the traced sample walk (traceBlock), with each component
// family's scanners timed per chunk so observation cost attributes to
// "billing.<family>" spans exactly as on the legacy path.
func (e *Evaluator) columnarTraced(ctx context.Context, reg *obs.Registry, load *timeseries.PowerSeries, ss *scanSet, res *Result) error {
	endPeriod := obs.Span(ctx, SpanPeriod)
	done := ctx.Done()
	h := load.Interval().Hours()
	var kwh float64
	peak := load.At(0)
	peakIdx := 0
	nanos := make([]time.Duration, len(ss.groups))
	for _, blk := range ss.blocks {
		samples := blk.Samples
		for off := 0; off < len(samples); off += traceBlock {
			if done != nil {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			end := off + traceBlock
			if end > len(samples) {
				end = len(samples)
			}
			chunk := samples[off:end]
			base := blk.Offset + off
			for j, p := range chunk {
				en := float64(p) * h
				kwh += en
				if p > peak {
					peak, peakIdx = p, base+j
				}
			}
			for g, group := range ss.groups {
				t0 := e.now()
				for _, sc := range group {
					sc.Scan(chunk, base)
				}
				nanos[g] += e.now().Sub(t0)
			}
		}
	}
	for g, name := range e.famNames {
		reg.Observe(SpanFamilyPrefix+name, nanos[g].Seconds())
	}
	e.finishColumnar(ss, load, res, kwh, peak, peakIdx)
	endPeriod()
	return nil
}

// finishColumnar assembles the period result from the scanners.
func (e *Evaluator) finishColumnar(ss *scanSet, load *timeseries.PowerSeries, res *Result, kwh float64, peak units.Power, peakIdx int) {
	res.PeriodStart = load.Start()
	res.PeriodEnd = load.End()
	res.Energy = units.Energy(kwh)
	res.Peak = peak
	res.PeakTime = load.TimeAt(peakIdx)
	lines := make([]LineItem, 0, len(ss.scanners))
	for _, sc := range ss.scanners {
		lines = sc.AppendLines(lines)
	}
	var total units.Money
	for _, l := range lines {
		total += l.Amount
	}
	res.Lines = lines
	res.Total = total
}
