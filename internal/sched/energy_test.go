package sched

import (
	"math"
	"testing"
	"time"

	"repro/internal/hpc"
	"repro/internal/units"
)

func TestJobEnergyAccounting(t *testing.T) {
	m := tinyMachine(t)
	// One 5-node full-power job for 2 h: 5 kW × 2 h = 10 kWh.
	j := job(1, 0, 2*time.Hour, 5)
	res, err := Simulate(m, []*hpc.Job{j}, Config{Start: t0, ShutdownIdle: true, Horizon: 6 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Records[0].EnergyUsed; math.Abs(float64(got)-10) > 1e-9 {
		t.Errorf("job energy = %v, want 10 kWh", got)
	}
}

func TestJobEnergySumMatchesITLoad(t *testing.T) {
	// With shutdown-idle the IT profile is exactly the running jobs:
	// the per-job energies must sum to the integrated IT load.
	m := tinyMachine(t)
	jobs := []*hpc.Job{
		job(1, 0, time.Hour, 4),
		job(2, 30*time.Minute, 2*time.Hour, 3),
		job(3, time.Hour, 90*time.Minute, 2),
	}
	res, err := Simulate(m, jobs, Config{Start: t0, ShutdownIdle: true, Horizon: 8 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	var perJob units.Energy
	for _, r := range res.Records {
		perJob += r.EnergyUsed
	}
	if math.Abs(float64(perJob-res.ITLoad.Energy())) > 1e-6 {
		t.Errorf("per-job sum %v vs IT load %v", perJob, res.ITLoad.Energy())
	}
}

func TestJobEnergyUnderDVFSStretch(t *testing.T) {
	m := dvfsMachine(t)
	// 10 nodes in powersave (0.6 kW) for 2× the nominal hour: 12 kWh,
	// versus 10 kWh nominal — slower but cheaper per hour, costlier in
	// total energy here because powersave is less efficient per work.
	j := job(1, 0, time.Hour, 10)
	res, err := Simulate(m, []*hpc.Job{j}, Config{
		Start: t0, PowerCap: 7, ShutdownIdle: true, DVFSUnderCap: true,
		Horizon: 6 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Records[0].EnergyUsed; math.Abs(float64(got)-12) > 1e-9 {
		t.Errorf("powersave job energy = %v, want 12 kWh", got)
	}
}

func TestJobEnergyAcrossPreemption(t *testing.T) {
	m := tinyMachine(t)
	// 10-node 2 h checkpointable job preempted by a 1 h window after
	// 30 min, with 10 min overhead: total run = 30 min + 100 min =
	// 130 min at 10 kW → 21.667 kWh.
	j := job(1, 0, 2*time.Hour, 10)
	j.Checkpointable = true
	window := CapWindow{Start: t0.Add(30 * time.Minute), End: t0.Add(90 * time.Minute), Cap: 7}
	res, err := Simulate(m, []*hpc.Job{j}, Config{
		Start: t0, CapWindows: []CapWindow{window},
		PreemptUnderCap: true, ShutdownIdle: true,
		CheckpointOverhead: 10 * time.Minute,
		Horizon:            12 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 10.0 * (130.0 / 60.0)
	if got := res.Records[0].EnergyUsed; math.Abs(float64(got)-want) > 1e-6 {
		t.Errorf("preempted job energy = %v, want %.3f kWh", got, want)
	}
	// And it matches the metered IT energy.
	if math.Abs(float64(res.Records[0].EnergyUsed-res.ITLoad.Energy())) > 1e-6 {
		t.Errorf("record %v vs IT load %v", res.Records[0].EnergyUsed, res.ITLoad.Energy())
	}
}
