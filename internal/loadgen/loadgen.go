// Package loadgen is a seeded, deterministic, open-loop load generator
// for scserved and scroute. Open-loop means arrivals follow a fixed
// schedule (request i fires at start + i/RPS) regardless of how fast
// the server answers — unlike a closed loop, which waits for each
// response and therefore throttles itself exactly when the server
// slows down, hiding the overload it was meant to measure. Under an
// open-loop at saturation the queue grows and the server must shed;
// that shed-not-collapse behavior is the thing the harness exists to
// observe.
//
// The request sequence (endpoint, contract spec, load profile) is
// drawn from a seeded PRNG, so two runs with the same seed replay the
// same work against different fleet shapes — the property the sharding
// acceptance comparison rests on. Wall-clock interleaving is of course
// not reproducible; the descriptor sequence is.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/contract"
	"repro/internal/obs"
)

// Config tunes one load run. The zero value of every field selects a
// usable default; Target is required.
type Config struct {
	// Target is the base URL to load (a scroute front or a bare
	// scserved backend).
	Target string
	// RPS is the open-loop arrival rate; <= 0 selects 50.
	RPS float64
	// Duration bounds the arrival schedule; <= 0 selects 10 s.
	Duration time.Duration
	// Seed drives the descriptor sequence; 0 selects 1.
	Seed int64
	// Specs is how many distinct synthetic contract specs the run
	// cycles through — the knob that sizes the fleet's working set
	// against the per-backend engine cache; <= 0 selects 16.
	Specs int
	// Profiles is the load mix, drawn uniformly; empty selects
	// quickstart-month. Names must be scserved named profiles.
	Profiles []string
	// BatchFraction of requests go to /v1/bill/batch (one contract ×
	// BatchItems loads); the rest are single /v1/bill calls.
	BatchFraction float64
	// BatchItems is the loads-per-batch size; <= 0 selects 8.
	BatchItems int
	// MaxInflight caps concurrent requests so a stalled server cannot
	// accumulate unbounded goroutines; arrivals past the cap are
	// counted as skipped, not sent. <= 0 selects 512.
	MaxInflight int
	// Client issues requests; nil selects a client with a 2 min
	// timeout (beyond any sane server deadline, so the server's own
	// 429/504 behavior is what gets measured, not client aborts).
	Client *http.Client
	// NDJSON, when set, receives one JSON line per finished request.
	NDJSON io.Writer
	// Events are scheduled control actions fired from the arrival loop
	// mid-run — the chaos harness uses them to flip proxy faults (kill
	// a backend at +4 s, restore it at +10 s) on the same clock the
	// load records use, so windowed assertions line up with the faults
	// that caused them.
	Events []ScheduledEvent
}

// ScheduledEvent is one control action on the run clock: an HTTP
// request sent when the arrival loop first passes At.
type ScheduledEvent struct {
	// At is the offset from run start.
	At time.Duration
	// Method defaults to POST when a Body is set, GET otherwise.
	Method string
	// URL is absolute (events usually target an admin API, not Target).
	URL string
	// Body is sent as JSON when non-empty.
	Body string
}

func (c Config) withDefaults() Config {
	if c.RPS <= 0 {
		c.RPS = 50
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Specs <= 0 {
		c.Specs = 16
	}
	if len(c.Profiles) == 0 {
		c.Profiles = []string{"quickstart-month"}
	}
	if c.BatchItems <= 0 {
		c.BatchItems = 8
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 512
	}
	if c.Client == nil {
		// A dedicated transport sized to the inflight cap: the default
		// transport keeps only 2 idle conns per host, which at load-test
		// rates churns a fresh TCP connection per request and exhausts
		// ephemeral ports long before the server is the bottleneck.
		c.Client = &http.Client{
			Timeout: 2 * time.Minute,
			Transport: &http.Transport{
				MaxIdleConns:        c.MaxInflight,
				MaxIdleConnsPerHost: c.MaxInflight,
			},
		}
	}
	return c
}

// descriptor is one scheduled request, fully determined by the seed.
type descriptor struct {
	seq      int
	endpoint string
	spec     int
	profile  string
}

// SpecBody returns the i-th synthetic contract spec as JSON. Specs are
// rate-perturbed variants of a realistic contract (fixed tariff,
// n-peak demand charge, powerband), so each hashes to a distinct
// engine-cache key while costing about the same to evaluate.
func SpecBody(i int) ([]byte, error) {
	spec := &contract.Spec{
		Name:          fmt.Sprintf("loadgen-site-%03d", i),
		Tariffs:       []contract.TariffSpec{{Type: "fixed", Rate: 0.05 + 0.0005*float64(i)}},
		DemandCharges: []contract.DemandChargeSpec{{PricePerKW: 10 + 0.1*float64(i), Method: "n-peak-average", NPeaks: 3}},
		Powerbands:    []contract.PowerbandSpec{{UpperKW: 18000, OverPenalty: 0.40}},
	}
	return json.Marshal(spec)
}

// record is one NDJSON output line.
type record struct {
	Seq       int     `json:"seq"`
	OffsetMS  float64 `json:"offset_ms"`
	Endpoint  string  `json:"endpoint"`
	Spec      int     `json:"spec"`
	Profile   string  `json:"profile"`
	Code      int     `json:"code"` // 0 = transport error
	LatencyMS float64 `json:"latency_ms"`
	// Origin labels 5xx responses with the layer that produced them,
	// from the router's X-SCRoute-Origin header: "router" for errors
	// scroute originated (no healthy backend, expired deadline),
	// "upstream" for backend failures it relayed. Empty off the 5xx
	// path or when loading a bare scserved with no router in front.
	Origin string `json:"origin,omitempty"`
	Error  string `json:"error,omitempty"`
}

// Run executes one open-loop load run and reports what came back. It
// returns early (with the partial report) when ctx is canceled.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Target == "" {
		return nil, fmt.Errorf("loadgen: Target is required")
	}

	specs := make([][]byte, cfg.Specs)
	for i := range specs {
		raw, err := SpecBody(i)
		if err != nil {
			return nil, fmt.Errorf("loadgen: building spec %d: %w", i, err)
		}
		specs[i] = raw
	}

	rep := newReport(cfg)
	rng := rand.New(rand.NewSource(cfg.Seed))

	var (
		wg       sync.WaitGroup
		inflight atomic.Int64
		encMu    sync.Mutex
		enc      *json.Encoder
	)
	if cfg.NDJSON != nil {
		enc = json.NewEncoder(cfg.NDJSON)
	}

	events := append([]ScheduledEvent(nil), cfg.Events...)
	sort.Slice(events, func(i, j int) bool { return events[i].At < events[j].At })
	nextEvent := 0

	start := time.Now()
	interval := float64(time.Second) / cfg.RPS
	total := int(float64(cfg.Duration) / interval)
	// One pacing timer for the whole run: time.After per iteration
	// would arm a fresh timer per arrival that lives until it fires.
	// The initial 0-duration fire is drained immediately so every
	// Reset starts from an empty channel.
	pace := time.NewTimer(0)
	defer pace.Stop()
	<-pace.C
	for i := 0; i < total; i++ {
		due := start.Add(time.Duration(float64(i) * interval))
		if wait := time.Until(due); wait > 0 {
			pace.Reset(wait)
			select {
			case <-ctx.Done():
				if !pace.Stop() {
					<-pace.C
				}
				wg.Wait()
				return rep, nil
			case <-pace.C:
			}
		}

		// Fire control events that have come due on the run clock. They
		// run async so a slow admin API cannot skew the arrival schedule.
		for nextEvent < len(events) && time.Since(start) >= events[nextEvent].At {
			ev := events[nextEvent]
			nextEvent++
			wg.Add(1)
			go func() {
				defer wg.Done()
				fireEvent(ctx, cfg.Client, ev)
			}()
		}

		// Draw the descriptor unconditionally so the sequence stays
		// aligned with the seed even when an arrival is skipped.
		d := descriptor{
			seq:     i,
			spec:    rng.Intn(cfg.Specs),
			profile: cfg.Profiles[rng.Intn(len(cfg.Profiles))],
		}
		d.endpoint = "/v1/bill"
		if rng.Float64() < cfg.BatchFraction {
			d.endpoint = "/v1/bill/batch"
		}

		if inflight.Load() >= int64(cfg.MaxInflight) {
			rep.Skipped++
			continue
		}
		inflight.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer inflight.Add(-1)
			rec := fire(ctx, cfg, d, specs[d.spec], start)
			rep.observe(d.endpoint, rec)
			if enc != nil {
				encMu.Lock()
				_ = enc.Encode(rec)
				encMu.Unlock()
			}
		}()
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)
	return rep, ctx.Err()
}

// fireEvent sends one scheduled control action.
func fireEvent(ctx context.Context, client *http.Client, ev ScheduledEvent) {
	method := ev.Method
	if method == "" {
		method = http.MethodGet
		if ev.Body != "" {
			method = http.MethodPost
		}
	}
	var body io.Reader
	if ev.Body != "" {
		body = bytes.NewReader([]byte(ev.Body))
	}
	req, err := http.NewRequestWithContext(ctx, method, ev.URL, body)
	if err != nil {
		return
	}
	if ev.Body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// fire sends one request and classifies the outcome.
func fire(ctx context.Context, cfg Config, d descriptor, spec []byte, start time.Time) record {
	rec := record{
		Seq:      d.seq,
		OffsetMS: float64(time.Since(start)) / float64(time.Millisecond),
		Endpoint: d.endpoint,
		Spec:     d.spec,
		Profile:  d.profile,
	}

	body, err := requestBody(d, spec, cfg.BatchItems)
	if err != nil {
		rec.Error = err.Error()
		return rec
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.Target+d.endpoint, bytes.NewReader(body))
	if err != nil {
		rec.Error = err.Error()
		return rec
	}
	req.Header.Set("Content-Type", "application/json")

	sent := time.Now()
	resp, err := cfg.Client.Do(req)
	rec.LatencyMS = float64(time.Since(sent)) / float64(time.Millisecond)
	if err != nil {
		rec.Error = err.Error()
		return rec
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	rec.Code = resp.StatusCode
	if resp.StatusCode >= 500 {
		rec.Origin = resp.Header.Get(originHeader)
	}
	return rec
}

// originHeader mirrors route.OriginHeader: the router labels every 5xx
// it writes with the layer that produced it, which is what lets chaos
// assertions distinguish "the router gave up" from "a backend relayed
// its own failure".
const (
	originHeader = "X-SCRoute-Origin"
	originRouter = "router"
)

// requestBody renders the JSON body for one descriptor.
func requestBody(d descriptor, spec []byte, batchItems int) ([]byte, error) {
	type loadSpec struct {
		Profile string `json:"profile"`
	}
	switch d.endpoint {
	case "/v1/bill/batch":
		loads := make([]loadSpec, batchItems)
		for i := range loads {
			loads[i] = loadSpec{Profile: d.profile}
		}
		return json.Marshal(struct {
			Contract json.RawMessage `json:"contract"`
			Loads    []loadSpec      `json:"loads"`
		}{spec, loads})
	default:
		return json.Marshal(struct {
			Contract json.RawMessage `json:"contract"`
			Load     loadSpec        `json:"load"`
		}{spec, loadSpec{Profile: d.profile}})
	}
}

// EndpointStats aggregates one endpoint's outcomes.
type EndpointStats struct {
	Sent      uint64
	OK        uint64 // 2xx
	Shed      uint64 // 429
	ServerErr uint64 // 5xx, total of the origin split below
	// RouterErr counts 5xx the router originated (X-SCRoute-Origin:
	// router — no healthy backend, expired deadline); UpstreamErr
	// counts backend 5xx, relayed through the router or answered
	// directly by a bare scserved.
	RouterErr   uint64
	UpstreamErr uint64
	ClientErr   uint64 // other 4xx
	Transport   uint64 // no response at all

	admitted *obs.Histogram // latency of 2xx responses, seconds
	all      *obs.Histogram // latency of every response, seconds
}

// Admitted returns the latency distribution of 2xx responses.
func (e *EndpointStats) Admitted() obs.HistogramSnapshot { return e.admitted.Snapshot() }

// All returns the latency distribution across every response.
func (e *EndpointStats) All() obs.HistogramSnapshot { return e.all.Snapshot() }

// Report is the outcome of one Run.
type Report struct {
	Target   string
	Seed     int64
	RPS      float64
	Duration time.Duration
	Elapsed  time.Duration
	Skipped  uint64 // arrivals dropped by the MaxInflight cap

	mu        sync.Mutex
	endpoints map[string]*EndpointStats
	// samples keeps one (offset, outcome) tuple per finished request so
	// windowed assertions — "error rate after the ejection settles",
	// "zero 5xx post-failover" — can slice the run by its own clock.
	samples []sample
}

// sample is one finished request on the run clock.
type sample struct {
	offset  time.Duration
	code    int // 0 = transport error
	origin  string
	latency time.Duration
}

func newReport(cfg Config) *Report {
	return &Report{
		Target:    cfg.Target,
		Seed:      cfg.Seed,
		RPS:       cfg.RPS,
		Duration:  cfg.Duration,
		endpoints: make(map[string]*EndpointStats),
	}
}

func (r *Report) endpoint(name string) *EndpointStats {
	if e, ok := r.endpoints[name]; ok {
		return e
	}
	e := &EndpointStats{admitted: obs.NewHistogram(), all: obs.NewHistogram()}
	r.endpoints[name] = e
	return e
}

func (r *Report) observe(endpoint string, rec record) {
	secs := rec.LatencyMS / 1000
	r.mu.Lock()
	defer r.mu.Unlock()
	r.samples = append(r.samples, sample{
		offset:  time.Duration(rec.OffsetMS * float64(time.Millisecond)),
		code:    rec.Code,
		origin:  rec.Origin,
		latency: time.Duration(rec.LatencyMS * float64(time.Millisecond)),
	})
	e := r.endpoint(endpoint)
	e.Sent++
	switch {
	case rec.Code == 0:
		e.Transport++
		return
	case rec.Code >= 200 && rec.Code < 300:
		e.OK++
		e.admitted.Observe(secs)
	case rec.Code == http.StatusTooManyRequests:
		e.Shed++
	case rec.Code >= 500:
		e.ServerErr++
		if rec.Origin == originRouter {
			e.RouterErr++
		} else {
			e.UpstreamErr++
		}
	default:
		e.ClientErr++
	}
	e.all.Observe(secs)
}

// FailuresAfter counts client-visible failures (5xx or transport
// error) among requests that arrived at or after cutoff on the run
// clock, along with how many arrived in that window. Shed 429s are the
// admission layer working, not failing, and do not count.
func (r *Report) FailuresAfter(cutoff time.Duration) (failures, total uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.samples {
		if s.offset < cutoff {
			continue
		}
		total++
		if s.code == 0 || s.code >= 500 {
			failures++
		}
	}
	return failures, total
}

// ErrorRateAfter is the client-visible failure fraction among requests
// arriving at or after cutoff; 0 when nothing arrived in the window.
func (r *Report) ErrorRateAfter(cutoff time.Duration) float64 {
	failures, total := r.FailuresAfter(cutoff)
	if total == 0 {
		return 0
	}
	return float64(failures) / float64(total)
}

// Endpoints returns a snapshot copy of the per-endpoint stats.
func (r *Report) Endpoints() map[string]*EndpointStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]*EndpointStats, len(r.endpoints))
	for k, v := range r.endpoints {
		out[k] = v
	}
	return out
}

// Totals sums counters across endpoints.
func (r *Report) Totals() (sent, ok, shed, serverErr, clientErr, transport uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.endpoints {
		sent += e.Sent
		ok += e.OK
		shed += e.Shed
		serverErr += e.ServerErr
		clientErr += e.ClientErr
		transport += e.Transport
	}
	return
}

// ErrOrigins splits the 5xx total by the layer that produced it.
func (r *Report) ErrOrigins() (routerErr, upstreamErr uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.endpoints {
		routerErr += e.RouterErr
		upstreamErr += e.UpstreamErr
	}
	return
}

// ShedFraction is the share of sent requests answered 429.
func (r *Report) ShedFraction() float64 {
	sent, _, shed, _, _, _ := r.Totals()
	if sent == 0 {
		return 0
	}
	return float64(shed) / float64(sent)
}

// AdmittedP99 is the p99 latency in seconds across every endpoint's
// admitted (2xx) responses.
func (r *Report) AdmittedP99() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total obs.HistogramSnapshot
	for _, e := range r.endpoints {
		s := e.admitted.Snapshot()
		if total.Counts == nil {
			total = s
			continue
		}
		for i := range total.Counts {
			total.Counts[i] += s.Counts[i]
		}
		total.Sum += s.Sum
		total.Count += s.Count
	}
	return total.Quantile(0.99)
}
