package resilience

// Breaker is a three-state circuit breaker. Closed is the normal
// state; FailureThreshold consecutive failures trip it open. Open
// rejects every call with ErrOpen until OpenTimeout has elapsed, at
// which point the next caller transitions it to half-open AND takes a
// probe slot in the same step — the breaker is never half-open without
// an active probe. Half-open admits at most ProbeBudget concurrent
// probes; a successful probe closes the breaker, a failed probe
// reopens it (restarting the cooldown). The only path from open to
// closed is a successful probe.

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/obs"
)

// ErrOpen is returned by Allow/Do while the breaker rejects calls.
var ErrOpen = errors.New("resilience: circuit breaker is open")

// State is the breaker's position in the closed → open → half-open
// cycle.
type State int32

// Breaker states. The numeric values are stable: they are exported as
// a gauge (0 closed, 1 half-open, 2 open).
const (
	Closed   State = 0
	HalfOpen State = 1
	Open     State = 2
)

// String returns the conventional lowercase state name.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case HalfOpen:
		return "half-open"
	case Open:
		return "open"
	default:
		return "unknown"
	}
}

// BreakerObs are the optional internal/obs instruments a breaker
// drives; any field may be nil. StateGauge tracks the numeric state,
// Transitions counts every state change, Opens counts trips into open
// (from closed or a failed probe), Rejections counts calls refused
// with ErrOpen.
type BreakerObs struct {
	StateGauge  *obs.Gauge
	Transitions *obs.Counter
	Opens       *obs.Counter
	Rejections  *obs.Counter
}

// BreakerConfig tunes a Breaker. The zero value is usable.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive closed-state failures
	// trip the breaker; <= 0 selects 5.
	FailureThreshold int
	// OpenTimeout is the cooldown before an open breaker admits a
	// probe; <= 0 selects 30 s.
	OpenTimeout time.Duration
	// ProbeBudget caps concurrent half-open probes; <= 0 selects 1.
	ProbeBudget int
	// Now is the clock (tests inject a fake); nil selects time.Now.
	Now func() time.Time
	// OnTransition, when set, observes every state change. Transitions
	// are queued under the breaker's lock and delivered in order after
	// it is released, so the callback may safely call back into the
	// breaker (State, Stats, even Allow). Delivery happens on the
	// goroutine whose Allow/done triggered the change, before that
	// call returns.
	OnTransition func(from, to State)
	// Obs wires the breaker to metrics instruments.
	Obs BreakerObs
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = 30 * time.Second
	}
	if c.ProbeBudget <= 0 {
		c.ProbeBudget = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// BreakerStats is a snapshot of the breaker's counters.
type BreakerStats struct {
	State       State
	Transitions uint64
	Opens       uint64
	Probes      uint64
	Successes   uint64
	Failures    uint64
	Rejections  uint64
}

// Breaker is a concurrency-safe circuit breaker. Construct with
// NewBreaker.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    State
	failures int // consecutive closed-state failures
	openedAt time.Time
	probes   int // in-flight half-open probes
	stats    BreakerStats
	// pending queues OnTransition notifications recorded under mu;
	// they are drained and delivered after the lock is released so the
	// callback never runs inside the critical section (reentrancy and
	// slow-callback safety).
	pending []transition
}

// transition is one queued OnTransition notification.
type transition struct{ from, to State }

// NewBreaker builds a breaker in the closed state.
func NewBreaker(cfg BreakerConfig) *Breaker {
	b := &Breaker{cfg: cfg.withDefaults()}
	b.cfg.Obs.StateGauge.Set(int64(Closed))
	return b
}

// transitionLocked moves the breaker to a new state, firing hooks and
// instruments. Callers hold b.mu.
func (b *Breaker) transitionLocked(to State) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	b.stats.Transitions++
	if to == Open {
		b.stats.Opens++
		b.openedAt = b.cfg.Now()
		b.cfg.Obs.Opens.Inc()
	}
	if to != HalfOpen {
		b.probes = 0
	}
	b.cfg.Obs.StateGauge.Set(int64(to))
	b.cfg.Obs.Transitions.Inc()
	if b.cfg.OnTransition != nil {
		b.pending = append(b.pending, transition{from, to})
	}
}

// deliverPending flushes queued OnTransition notifications. Callers
// must NOT hold b.mu: the whole point is that the user callback runs
// outside the critical section.
func (b *Breaker) deliverPending() {
	if b.cfg.OnTransition == nil {
		return
	}
	b.mu.Lock()
	pending := b.pending
	b.pending = nil
	b.mu.Unlock()
	for _, tr := range pending {
		b.cfg.OnTransition(tr.from, tr.to)
	}
}

// State returns the breaker's current state. An open breaker whose
// cooldown has expired still reports open — the half-open transition
// happens on the next Allow, which also claims the probe slot.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats returns a snapshot of the breaker's counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.stats
	st.State = b.state
	return st
}

// Allow asks to place one call. On admission it returns a done
// function the caller MUST invoke exactly once with the call's
// outcome; on rejection it returns ErrOpen. A call admitted while
// half-open holds one of the ProbeBudget probe slots until its done
// runs.
func (b *Breaker) Allow() (done func(success bool), err error) {
	done, err = b.admit()
	b.deliverPending()
	return done, err
}

// admit is Allow's critical section; any transition it causes is
// queued for delivery after the lock is released.
func (b *Breaker) admit() (done func(success bool), err error) {
	b.mu.Lock()
	defer b.mu.Unlock()

	switch b.state {
	case Open:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.OpenTimeout {
			b.stats.Rejections++
			b.cfg.Obs.Rejections.Inc()
			return nil, ErrOpen
		}
		// Cooldown over: become half-open and give this caller the
		// probe slot in the same step, so half-open never exists
		// without an in-flight probe.
		b.transitionLocked(HalfOpen)
		fallthrough
	case HalfOpen:
		if b.probes >= b.cfg.ProbeBudget {
			b.stats.Rejections++
			b.cfg.Obs.Rejections.Inc()
			return nil, ErrOpen
		}
		b.probes++
		b.stats.Probes++
		return b.doneFunc(HalfOpen), nil
	default: // Closed
		return b.doneFunc(Closed), nil
	}
}

// doneFunc builds the once-only completion callback for a call
// admitted in the given state. Callers hold b.mu.
func (b *Breaker) doneFunc(admittedIn State) func(success bool) {
	var once sync.Once
	return func(success bool) {
		once.Do(func() { b.complete(admittedIn, success) })
	}
}

func (b *Breaker) complete(admittedIn State, success bool) {
	b.settle(admittedIn, success)
	b.deliverPending()
}

// settle is complete's critical section; any transition it causes is
// queued for delivery after the lock is released.
func (b *Breaker) settle(admittedIn State, success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if success {
		b.stats.Successes++
	} else {
		b.stats.Failures++
	}

	if admittedIn == HalfOpen {
		if b.state == HalfOpen {
			b.probes--
			if success {
				// The one and only open → closed path.
				b.failures = 0
				b.transitionLocked(Closed)
			} else {
				b.transitionLocked(Open)
			}
		}
		// If the state moved on while the probe ran (another probe
		// already closed or reopened the breaker), this outcome has
		// nothing left to decide.
		return
	}

	// Closed-state accounting. If the breaker tripped while this call
	// was in flight, its outcome no longer matters.
	if b.state != Closed {
		return
	}
	if success {
		b.failures = 0
		return
	}
	b.failures++
	if b.failures >= b.cfg.FailureThreshold {
		b.failures = 0
		b.transitionLocked(Open)
	}
}

// Do places op behind the breaker: it returns ErrOpen without calling
// op when the breaker rejects, and otherwise reports op's outcome
// (any non-nil error counts as a failure, including context errors —
// a dependency that times out is a failing dependency).
func (b *Breaker) Do(ctx context.Context, op func(ctx context.Context) error) error {
	done, err := b.Allow()
	if err != nil {
		return err
	}
	err = op(ctx)
	done(err == nil)
	return err
}
