package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("Demo", "Name", "Value")
	tbl.AddRow("alpha", "1")
	tbl.AddRow("beta-longer", "22")
	out := tbl.Render()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "====") {
		t.Error("title and underline missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, underline, header, separator, 2 rows.
	if len(lines) != 6 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Columns align: "Value" column starts at the same offset everywhere.
	header := lines[2]
	row := lines[4]
	if strings.Index(header, "Value") != strings.Index(row+"  1", "1") && !strings.Contains(row, "alpha") {
		t.Errorf("alignment check failed:\n%s", out)
	}
}

func TestTableRenderWithoutTitle(t *testing.T) {
	tbl := NewTable("", "A")
	tbl.AddRow("x")
	out := tbl.Render()
	if strings.Contains(out, "=") {
		t.Error("no title, no underline")
	}
}

func TestAddRowPadding(t *testing.T) {
	tbl := NewTable("", "A", "B", "C")
	tbl.AddRow("1")                // short
	tbl.AddRow("1", "2", "3", "4") // long, extra dropped
	if len(tbl.Rows[0]) != 3 || tbl.Rows[0][1] != "" {
		t.Error("short row should pad")
	}
	if len(tbl.Rows[1]) != 3 {
		t.Error("long row should truncate")
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := NewTable("T", "A", "B")
	tbl.AddRow("x|y", "z")
	md := tbl.Markdown()
	if !strings.Contains(md, "### T") {
		t.Error("markdown title")
	}
	if !strings.Contains(md, "| A | B |") || !strings.Contains(md, "| --- | --- |") {
		t.Error("markdown structure")
	}
	if !strings.Contains(md, `x\|y`) {
		t.Error("pipes must be escaped")
	}
	// No title variant.
	if strings.Contains(NewTable("", "A").Markdown(), "###") {
		t.Error("no title, no heading")
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("ignored title", "A", "B")
	tbl.AddRow("plain", "with,comma")
	tbl.AddRow(`with"quote`, "with\nnewline")
	out := tbl.CSV()
	lines := strings.SplitN(out, "\n", 3)
	if lines[0] != "A,B" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != `plain,"with,comma"` {
		t.Errorf("row 1 = %q", lines[1])
	}
	if !strings.Contains(out, `"with""quote"`) {
		t.Error("quotes must be doubled")
	}
	if strings.Contains(out, "ignored title") {
		t.Error("CSV must not emit the title")
	}
}

func TestRenderTree(t *testing.T) {
	root := &TreeNode{
		Label: "root",
		Children: []*TreeNode{
			{Label: "a", Detail: "first", Children: []*TreeNode{
				{Label: "a1"},
				{Label: "a2"},
			}},
			{Label: "b"},
		},
	}
	out := RenderTree(root)
	for _, want := range []string{"root", "├── a — first", "│   ├── a1", "│   └── a2", "└── b"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree missing %q:\n%s", want, out)
		}
	}
	if RenderTree(nil) != "" {
		t.Error("nil tree renders empty")
	}
}

func TestCheck(t *testing.T) {
	if Check(true) != "✓" || Check(false) != "" {
		t.Error("check marks")
	}
}

func TestKV(t *testing.T) {
	out := KV([][2]string{
		{"Total", "1,234.00"},
		{"Peak demand", "15.00 MW"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	// Values align at the same column.
	if strings.Index(lines[0], "1,234.00") != strings.Index(lines[1], "15.00 MW") {
		t.Errorf("values should align:\n%s", out)
	}
}
