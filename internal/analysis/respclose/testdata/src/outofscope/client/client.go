// Out of scope: respclose only patrols the fleet-path packages, so a
// leaked body here must not diagnose.
package client

import "net/http"

func Leak(url string) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}
