// Command scprocure simulates a CSCS-style public electricity tender:
// a contract model with a multi-variable price formula, a renewable-mix
// floor and (optionally) demand charges disallowed, evaluated over
// synthetic ESP bids against the buyer's reference load.
//
// Usage:
//
//	scprocure -bids 25
//	scprocure -bids 40 -renewable-min 0.9 -allow-demand-charges
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/contract"
	"repro/internal/demand"
	"repro/internal/hpc"
	"repro/internal/procurement"
	"repro/internal/report"
	"repro/internal/tariff"
	"repro/internal/units"
)

func main() {
	nBids := flag.Int("bids", 25, "number of synthetic ESP bids")
	renewableMin := flag.Float64("renewable-min", 0.80, "required renewable supply-mix fraction")
	allowDC := flag.Bool("allow-demand-charges", false, "permit bids with demand-charge riders")
	compliant := flag.Float64("compliant-fraction", 0.7, "fraction of generated bids meeting all rules")
	baseMW := flag.Float64("base-mw", 5, "buyer's average load in MW")
	seed := flag.Int64("seed", 17, "bid generation seed")
	statusQuoRate := flag.Float64("status-quo-rate", 0.075, "status-quo fixed tariff rate per kWh")
	flag.Parse()

	if err := run(*nBids, *renewableMin, *allowDC, *compliant, *baseMW, *seed, *statusQuoRate); err != nil {
		fmt.Fprintln(os.Stderr, "scprocure:", err)
		os.Exit(1)
	}
}

func run(nBids int, renewableMin float64, allowDC bool, compliantFrac, baseMW float64, seed int64, statusQuoRate float64) error {
	refLoad, err := hpc.SyntheticFacilityLoad(hpc.LoadProfileConfig{
		Start: time.Date(2016, time.January, 1, 0, 0, 0, 0, time.UTC),
		Span:  365 * 24 * time.Hour, Interval: time.Hour,
		Base: units.Power(baseMW) * units.Megawatt, PeakToAverage: 1.4,
		NoiseSigma: 0.02, Seed: 3,
	})
	if err != nil {
		return err
	}
	tender := &procurement.Tender{
		Name:                  "public tender",
		Variables:             procurement.CSCSVariables(),
		RenewableShareMin:     renewableMin,
		DisallowDemandCharges: !allowDC,
		ReferenceLoad:         refLoad,
	}
	bids, err := procurement.GenerateBids(tender, procurement.BidGenConfig{
		N: nBids, CompliantFraction: compliantFrac, Seed: seed,
	})
	if err != nil {
		return err
	}
	outcome, err := tender.Run(bids)
	if err != nil {
		return err
	}

	tbl := report.NewTable(
		fmt.Sprintf("Tender outcome (%d bids, ≥%.0f%% renewables, demand charges %s)",
			nBids, renewableMin*100, map[bool]string{true: "allowed", false: "disallowed"}[allowDC]),
		"Rank", "Bidder", "Rate", "Annual cost", "Renewables", "Status")
	rank := 0
	for _, s := range outcome.Ranked {
		status := "rejected: " + s.Reason
		rankStr := ""
		if s.Compliant {
			rank++
			rankStr = fmt.Sprintf("%d", rank)
			status = "compliant"
		}
		tbl.AddRow(rankStr, s.Bid.Bidder, s.Bid.EffectiveRate().String(),
			s.AnnualCost.String(), fmt.Sprintf("%.0f%%", s.Bid.RenewableShare*100), status)
	}
	fmt.Print(tbl.Render())

	if outcome.Winner == nil {
		fmt.Println("\nNo compliant bid received.")
		return nil
	}
	statusQuo := &contract.Contract{
		Name:          "status-quo",
		Tariffs:       []tariff.Tariff{tariff.MustNewFixed(units.EnergyPrice(statusQuoRate))},
		DemandCharges: []*demand.Charge{demand.SimpleCharge(11)},
	}
	base, won, saved, err := tender.Savings(outcome, statusQuo)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(report.KV([][2]string{
		{"Winner", outcome.Winner.Bid.Bidder},
		{"Status-quo annual cost", base.String()},
		{"Winning annual cost", won.String()},
		{"Annual savings", saved.String()},
		{"Savings", fmt.Sprintf("%.1f%%", saved.Float()/base.Float()*100)},
	}))
	return nil
}
