// Package timeseries is a fixture stub of the repo's PowerSeries:
// just enough surface for the ctxloop fixtures to type-check.
package timeseries

import "time"

type PowerSeries struct {
	start    time.Time
	interval time.Duration
	samples  []float64
}

func (s *PowerSeries) Len() int               { return len(s.samples) }
func (s *PowerSeries) At(i int) float64       { return s.samples[i] }
func (s *PowerSeries) TimeAt(i int) time.Time { return s.start.Add(time.Duration(i) * s.interval) }

// MonthBlock mirrors the columnar block view: a contiguous slice of one
// calendar month's samples plus its offset into the series.
type MonthBlock struct {
	Offset  int
	Samples []float64
}

func (s *PowerSeries) Blocks() []MonthBlock {
	return s.AppendBlocks(nil)
}

func (s *PowerSeries) AppendBlocks(dst []MonthBlock) []MonthBlock {
	return append(dst, MonthBlock{Samples: s.samples})
}
