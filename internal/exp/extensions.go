package exp

// Extension experiments beyond the paper's own exhibits: E11 evaluates
// the contingency-planning framework the paper proposes as future work
// (§5), and E12 ablates the two ways a scheduler can honor a power cap
// (blocking starts vs DVFS down-shifting) — one of the design choices
// DESIGN.md calls out.

import (
	"fmt"
	"time"

	"repro/internal/contingency"
	"repro/internal/contract"
	"repro/internal/demand"
	"repro/internal/dr"
	"repro/internal/grid"
	"repro/internal/hpc"
	"repro/internal/market"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/tariff"
	"repro/internal/units"
)

func init() {
	register("E11", runE11)
	register("E12", runE12)
}

// E11Result summarizes one contingency-plan evaluation.
type E11Result struct {
	Impact *contingency.Impact
	// BaselineCompliant reports whether the unmanaged site would have
	// met the emergency caps.
	BaselineCompliant bool
}

// RunE11 evaluates a three-level contingency plan (price watch → grid
// stress shed → emergency cap) on a month with expensive afternoons,
// two stress events and one declared emergency.
func RunE11() (*E11Result, error) {
	baseline, err := hpc.SyntheticFacilityLoad(hpc.LoadProfileConfig{
		Start: expStart, Span: 30 * 24 * time.Hour, Interval: 15 * time.Minute,
		Base: 12 * units.Megawatt, PeakToAverage: 1.3, NoiseSigma: 0.02, Seed: 11,
	})
	if err != nil {
		return nil, err
	}
	c := &contract.Contract{
		Name:          "plan-site",
		Tariffs:       []tariff.Tariff{tariff.MustNewFixed(0.06)},
		DemandCharges: []*demand.Charge{demand.SimpleCharge(12)},
		Emergencies: []*contract.EmergencyObligation{{
			Name: "regional", Cap: 9 * units.Megawatt, Penalty: 2.0,
		}},
	}
	plan := &contingency.Plan{
		Name: "three-level",
		Levels: []contingency.Level{
			{
				Name:     "price-watch",
				Trigger:  contingency.Trigger{Kind: contingency.PriceAbove, PriceThreshold: 0.15},
				Strategy: &dr.ShedStrategy{Fraction: 0.05, OpCostPerKWh: 0.01},
			},
			{
				Name:     "stress-shed",
				Trigger:  contingency.Trigger{Kind: contingency.GridStress},
				Strategy: &dr.ShedStrategy{Fraction: 0.10, OpCostPerKWh: 0.02},
			},
			{
				Name:     "emergency-cap",
				Trigger:  contingency.Trigger{Kind: contingency.EmergencyDeclared},
				Strategy: &dr.CapStrategy{Cap: 9 * units.Megawatt, OpCostPerKWh: 0.20},
			},
		},
	}
	// Signals: regional prices from a net-load model, two stress events,
	// one declared emergency.
	region := grid.DefaultRegion(expStart)
	regional, err := grid.SystemLoad(region)
	if err != nil {
		return nil, err
	}
	pm := market.DefaultPriceModel(55 * units.Power(100) * units.Megawatt) // 5.5 GW
	prices, err := pm.PriceSeries(regional)
	if err != nil {
		return nil, err
	}
	sig := contingency.Signals{
		Prices: prices,
		Stress: []grid.StressEvent{
			{Start: expStart.Add(5*24*time.Hour + 17*time.Hour), Duration: 2 * time.Hour},
			{Start: expStart.Add(12*24*time.Hour + 18*time.Hour), Duration: time.Hour},
		},
		Emergencies: []contract.EmergencyEvent{
			{Start: expStart.Add(20*24*time.Hour + 15*time.Hour), Duration: 2 * time.Hour},
		},
	}
	impact, err := contingency.Evaluate(plan, c, baseline, sig)
	if err != nil {
		return nil, err
	}
	// Baseline compliance: re-evaluate a do-nothing plan? Simpler: the
	// baseline profile peaks above 9 MW during the emergency with high
	// probability; compute directly.
	baseCompliant := true
	for i := 0; i < baseline.Len(); i++ {
		ts := baseline.TimeAt(i)
		for _, e := range sig.Emergencies {
			if e.Covers(ts) && baseline.At(i) > c.Emergencies[0].Cap {
				baseCompliant = false
			}
		}
	}
	return &E11Result{Impact: impact, BaselineCompliant: baseCompliant}, nil
}

func runE11() (*Exhibit, error) {
	res, err := RunE11()
	if err != nil {
		return nil, err
	}
	im := res.Impact
	tbl := report.NewTable("Contingency-plan impact analysis (12 MW site, one month)",
		"Level", "Activations", "Active for", "Curtailed", "Op cost")
	for _, l := range im.Levels {
		tbl.AddRow(l.Level, fmt.Sprintf("%d", l.Activations), l.ActiveFor.String(),
			l.Curtailed.String(), l.OpCost.String())
	}
	return &Exhibit{
		ID:         "E11",
		Title:      "Contingency planning with impact analysis (the paper's future work)",
		PaperClaim: "§5: \"we foresee a future need for contingency planning, where specific actions can be applied in SC operation, to adhere to grid conditions ... enable SCs to perform impact analysis of contingency planning on their operation.\"",
		Table:      tbl,
		Notes: []string{
			fmt.Sprintf("Baseline bill %s → planned bill %s (savings %s); operational cost %s; net benefit %s.",
				im.BaselineBill.Total, im.PlannedBill.Total, im.BillSavings(), im.TotalOpCost, im.NetBenefit),
			fmt.Sprintf("Emergency compliance: baseline %v → with plan %v.",
				res.BaselineCompliant, im.EmergencyCompliant),
		},
	}, nil
}

// E12Point compares cap-handling modes for one cap level.
type E12Point struct {
	CapFractionOfPeak float64
	// BlockingMakespan and DVFSMakespan are the times to drain the
	// trace under each mode.
	BlockingMakespan time.Duration
	DVFSMakespan     time.Duration
	// BlockingUnstarted counts jobs the blocking mode never started.
	BlockingUnstarted int
	DVFSUnstarted     int
}

// SweepE12 runs the same trace under a permanent IT-power cap handled by
// blocking starts vs DVFS down-shifting.
func SweepE12(capFractions []float64) ([]E12Point, error) {
	node := &hpc.NodeSpec{
		Name:      "dvfs-node",
		IdlePower: 0.05,
		States: []hpc.PowerState{
			{Name: "nominal", FreqFactor: 1.0, Power: 0.35},
			{Name: "balanced", FreqFactor: 0.85, Power: 0.27},
			{Name: "powersave", FreqFactor: 0.65, Power: 0.20},
		},
		Cores: 32,
	}
	m, err := hpc.NewMachine("dvfs-cluster", node, 2000, hpc.PUEModel{Fixed: 50, Factor: 1.1})
	if err != nil {
		return nil, err
	}
	wcfg := hpc.DefaultWorkload()
	wcfg.Span = 24 * time.Hour
	wcfg.Seed = 23
	jobs, err := hpc.GenerateWorkload(m, wcfg)
	if err != nil {
		return nil, err
	}
	itPeak := units.Power(float64(node.States[0].Power) * float64(m.Nodes))
	out := make([]E12Point, 0, len(capFractions))
	for _, f := range capFractions {
		cap := units.Power(float64(itPeak) * f)
		base := sched.Config{
			Start: expStart, PowerCap: cap, ShutdownIdle: true,
			Horizon: 72 * time.Hour,
		}
		blocking, err := sched.Simulate(m, jobs, base)
		if err != nil {
			return nil, err
		}
		withDVFS := base
		withDVFS.DVFSUnderCap = true
		dvfs, err := sched.Simulate(m, jobs, withDVFS)
		if err != nil {
			return nil, err
		}
		out = append(out, E12Point{
			CapFractionOfPeak: f,
			BlockingMakespan:  blocking.Makespan,
			DVFSMakespan:      dvfs.Makespan,
			BlockingUnstarted: blocking.Unstarted,
			DVFSUnstarted:     dvfs.Unstarted,
		})
	}
	return out, nil
}

func runE12() (*Exhibit, error) {
	points, err := SweepE12([]float64{0.6, 0.4, 0.3})
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable("Honoring a power cap: blocking starts vs DVFS down-shift (2000-node cluster, 24 h trace)",
		"Cap (% of IT peak)", "Blocking makespan", "DVFS makespan", "Blocking unstarted", "DVFS unstarted")
	for _, p := range points {
		tbl.AddRow(
			fmt.Sprintf("%.0f%%", p.CapFractionOfPeak*100),
			p.BlockingMakespan.Round(time.Minute).String(),
			p.DVFSMakespan.Round(time.Minute).String(),
			fmt.Sprintf("%d", p.BlockingUnstarted),
			fmt.Sprintf("%d", p.DVFSUnstarted),
		)
	}
	return &Exhibit{
		ID:         "E12",
		Title:      "Power-cap ablation: blocking vs DVFS (coarse-grained power management)",
		PaperClaim: "§2 (EE HPC WG prior work): power-aware job scheduling, power capping and shutdown are the most effective strategies SCs could employ in response to ESP programs.",
		Table:      tbl,
		Notes: []string{
			"A crossover appears: at moderate caps blocking wins (DVFS stretches jobs the cap would have admitted anyway), while under tight caps DVFS wins by keeping the machine computing instead of idling the queue — power capping policy must be cap-depth-aware.",
		},
	}, nil
}
