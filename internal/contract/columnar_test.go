package contract

// Columnar ≡ sample-walk ≡ legacy equivalence. The engine defaults to
// the columnar path whenever every component compiles a kernel, so the
// existing golden tests already cross-check columnar vs legacy; this
// suite pins the remaining triangle edge (columnar vs the engine's own
// sample walk via SetColumnar) and stresses the cases where the
// columnar representation could plausibly diverge: DST transition
// months, partial first/last months, series whose chunk boundaries
// straddle month edges, and a fuzz target over random geometries.

import (
	"math"
	"testing"
	"time"

	"repro/internal/calendar"
	"repro/internal/demand"
	"repro/internal/tariff"
	"repro/internal/timeseries"
	"repro/internal/units"
)

// assertColumnarTriangle bills the case on the columnar path, the
// engine's sample-walk path, and the legacy multi-pass path, and
// requires identical bills from all three — single period and monthly.
func assertColumnarTriangle(t *testing.T, name string, c *Contract, load *timeseries.PowerSeries, in BillingInput) {
	t.Helper()
	eng, err := NewEngine(c)
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Columnar() {
		t.Fatalf("%s: engine did not compile to the columnar path", name)
	}

	colBill, err := eng.Bill(load, in)
	if err != nil {
		t.Fatal(err)
	}
	colMonths, err := eng.BillMonths(load, in)
	if err != nil {
		t.Fatal(err)
	}

	eng.SetColumnar(false)
	walkBill, err := eng.Bill(load, in)
	if err != nil {
		t.Fatal(err)
	}
	walkMonths, err := eng.BillMonths(load, in)
	if err != nil {
		t.Fatal(err)
	}
	if !eng.SetColumnar(true) {
		t.Fatalf("%s: could not re-enable columnar path", name)
	}

	legacyBill, err := ComputeBillLegacy(c, load, in)
	if err != nil {
		t.Fatal(err)
	}
	legacyMonths, err := BillMonthsLegacy(c, load, in)
	if err != nil {
		t.Fatal(err)
	}

	assertBillsIdentical(t, name+"/columnar-vs-walk", colBill, walkBill)
	assertBillsIdentical(t, name+"/columnar-vs-legacy", colBill, legacyBill)
	if len(colMonths) != len(walkMonths) || len(colMonths) != len(legacyMonths) {
		t.Fatalf("%s: month counts %d / %d / %d", name, len(colMonths), len(walkMonths), len(legacyMonths))
	}
	for i := range colMonths {
		label := name + "/" + colMonths[i].PeriodStart.Format("2006-01")
		assertBillsIdentical(t, label+"/columnar-vs-walk", colMonths[i], walkMonths[i])
		assertBillsIdentical(t, label+"/columnar-vs-legacy", colMonths[i], legacyMonths[i])
	}
}

// columnarContract is a kitchen-sink contract exercising every kernel:
// fixed, TOU, dynamic and stacked tariffs, all three demand-charge
// methods, a two-sided powerband, an emergency obligation and fees.
func columnarContract(t *testing.T, feedStart time.Time, feedLen int) *Contract {
	t.Helper()
	prices := make([]units.EnergyPrice, feedLen)
	for i := range prices {
		prices[i] = units.EnergyPrice(0.025 + 0.02*math.Sin(float64(i)/5))
	}
	feed := timeseries.MustNewPrice(feedStart, time.Hour, prices)
	holidays := calendar.NewHolidayCalendar(
		time.Date(2016, time.January, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2016, time.August, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2016, time.December, 26, 0, 0, 0, 0, time.UTC),
	)
	return &Contract{
		Name: "columnar-kitchen-sink",
		Tariffs: []tariff.Tariff{
			tariff.MustNewFixed(0.051),
			tariff.MustNewTOU(calendar.SeasonalDayNight(7, 21, holidays), map[string]units.EnergyPrice{
				"summer-peak": 0.041, "peak": 0.021, "offpeak": 0.006,
			}),
			tariff.MustNewDynamic(feed, 1.15, 0.011),
			tariff.MustNewStack(tariff.MustNewFixed(0.013), tariff.MustNewDynamic(feed, 0.35, 0)),
		},
		DemandCharges: []*demand.Charge{
			demand.MustNewCharge(11, demand.SinglePeak, 0, 0),
			demand.SimpleCharge(13),
			demand.MustNewCharge(12, demand.Ratchet, 0, 0.8),
		},
		Powerbands: []*demand.Powerband{
			demand.MustNewPowerband(6*units.Megawatt, 17*units.Megawatt, 0.25, 0.55),
		},
		Emergencies: []*EmergencyObligation{{
			Name: "grid emergency", Cap: 10 * units.Megawatt, Penalty: 1.8,
		}},
		Fees: []FixedFee{{Name: "metering", Amount: units.CurrencyUnits(420)}},
	}
}

// columnarLoad builds a deterministic sinusoid-plus-drift load without
// the hpc generator, so start instants and intervals are unconstrained.
func columnarLoad(start time.Time, interval time.Duration, n int) *timeseries.PowerSeries {
	samples := make([]units.Power, n)
	for i := range samples {
		v := 11000 + 4500*math.Sin(float64(i)/37) + 1800*math.Sin(float64(i)/7+1.1) + float64(i%97)
		samples[i] = units.Power(v)
	}
	return timeseries.MustNewPower(start, interval, samples)
}

func columnarInput(start time.Time) BillingInput {
	return BillingInput{
		HistoricalPeak: 19 * units.Megawatt,
		Events: []EmergencyEvent{
			{Start: start.Add(31 * time.Hour), Duration: 3 * time.Hour},
			{Start: start.Add(32 * time.Hour), Duration: 4 * time.Hour}, // overlaps the first
			{Start: start.Add(50 * 24 * time.Hour), Duration: 2 * time.Hour},
		},
	}
}

func TestColumnarEquivalenceUTCYear(t *testing.T) {
	start := time.Date(2016, time.January, 1, 0, 0, 0, 0, time.UTC)
	load := columnarLoad(start, 15*time.Minute, 366*24*4)
	assertColumnarTriangle(t, "utc-leap-year", columnarContract(t, start, 400), load, columnarInput(start))
}

func TestColumnarEquivalencePartialMonths(t *testing.T) {
	// Starts mid-March at an off-hour instant and ends mid-June: partial
	// first and last months, odd alignment against hour and feed slots.
	start := time.Date(2016, time.March, 17, 13, 7, 0, 0, time.UTC)
	load := columnarLoad(start, 7*time.Minute, 18000)
	assertColumnarTriangle(t, "partial-months", columnarContract(t, start.Add(26*time.Hour), 300), load, columnarInput(start))
}

func TestColumnarEquivalenceZurichDST(t *testing.T) {
	loc, err := time.LoadLocation("Europe/Zurich")
	if err != nil {
		t.Skipf("tzdata unavailable: %v", err)
	}
	cases := []struct {
		name  string
		start time.Time
		n     int
	}{
		// 2016-03-27 02:00 CET jumps to 03:00 CEST.
		{"spring-forward", time.Date(2016, time.March, 20, 0, 0, 0, 0, loc), 14 * 24 * 4},
		// 2016-10-30 03:00 CEST falls back to 02:00 CET: the repeated
		// hour forces the TOU scanner's per-sample degradation.
		{"fall-back", time.Date(2016, time.October, 24, 0, 0, 0, 0, loc), 14 * 24 * 4},
		{"full-year", time.Date(2016, time.January, 1, 0, 0, 0, 0, loc), 366 * 24 * 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			load := columnarLoad(tc.start, 15*time.Minute, tc.n)
			assertColumnarTriangle(t, tc.name, columnarContract(t, tc.start, 24*20), load, columnarInput(tc.start))
		})
	}
}

// TestColumnarFallsBackOnCPP pins the all-or-nothing compilation rule:
// a CPP tariff has no kernel, so the whole engine stays on the sample
// walk — and still bills correctly.
func TestColumnarFallsBackOnCPP(t *testing.T) {
	cpp, err := tariff.NewCPP(tariff.MustNewFixed(0.05), 0.75, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := &Contract{
		Name:          "cpp-site",
		Tariffs:       []tariff.Tariff{cpp},
		DemandCharges: []*demand.Charge{demand.SimpleCharge(12)},
	}
	eng, err := NewEngine(c)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Columnar() {
		t.Fatal("engine with a CPP tariff must not compile to the columnar path")
	}
	if eng.SetColumnar(true) {
		t.Fatal("SetColumnar(true) must be refused without kernels")
	}
	start := time.Date(2016, time.May, 1, 0, 0, 0, 0, time.UTC)
	load := columnarLoad(start, 15*time.Minute, 30*24*4)
	got, err := eng.Bill(load, BillingInput{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ComputeBillLegacy(c, load, BillingInput{})
	if err != nil {
		t.Fatal(err)
	}
	assertBillsIdentical(t, "cpp-fallback", got, want)
}

// FuzzColumnarEquivalence cross-checks the three paths over random
// series geometries — arbitrary start instant, interval and length, so
// month blocks of every shape (empty-adjacent, single-sample, chunk
// -straddling) flow through the kernels.
func FuzzColumnarEquivalence(f *testing.F) {
	f.Add(int64(1), uint16(900), uint16(3000), uint8(0))
	f.Add(int64(2016), uint16(420), uint16(9000), uint8(1))
	f.Add(int64(-7), uint16(60), uint16(2100), uint8(2))
	f.Add(int64(99), uint16(10800), uint16(800), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, intervalSec uint16, n uint16, startSel uint8) {
		if intervalSec == 0 || n == 0 {
			t.Skip()
		}
		interval := time.Duration(intervalSec) * time.Second
		starts := []time.Time{
			time.Date(2016, time.January, 31, 23, 59, 0, 0, time.UTC),
			time.Date(2016, time.February, 28, 11, 13, 7, 0, time.UTC),
			time.Date(2015, time.December, 15, 6, 30, 0, 0, time.UTC),
			time.Date(2016, time.June, 1, 0, 0, 0, 0, time.UTC),
		}
		start := starts[int(startSel)%len(starts)].Add(time.Duration(seed%3600) * time.Second)

		samples := make([]units.Power, int(n))
		state := uint64(seed)*2654435761 + 12345
		for i := range samples {
			state = state*6364136223846793005 + 1442695040888963407
			// Mostly in-band with occasional excursions on either side.
			samples[i] = units.Power(4000 + float64(state%24000))
		}
		load := timeseries.MustNewPower(start, interval, samples)

		c := columnarContract(t, start.Add(time.Duration(seed%48)*time.Hour), 200)
		in := columnarInput(start)
		assertColumnarTriangle(t, "fuzz", c, load, in)
	})
}
