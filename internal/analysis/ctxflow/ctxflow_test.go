package ctxflow_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), ctxflow.Analyzer,
		"internal/serve/pos",
		"internal/serve/neg",
		"outofscope/tool",
	)
}
