// Package storage models behind-the-meter energy storage (battery/UPS
// systems) and the two operating policies the data-center DR literature
// the paper cites builds on: peak shaving against demand charges and
// price arbitrage against variable tariffs (Yao, Liu & Zhang's
// "predictive electricity cost minimization through energy buffering",
// cited in §2). A battery is state-of-charge-bounded, power-limited and
// round-trip lossy; policies transform a metered load profile into the
// grid-visible profile plus a state-of-charge trace.
package storage

import (
	"errors"
	"fmt"

	"repro/internal/timeseries"
	"repro/internal/units"
)

// Battery is one behind-the-meter storage system.
type Battery struct {
	// Capacity is usable energy capacity.
	Capacity units.Energy
	// MaxCharge and MaxDischarge bound power in each direction.
	MaxCharge    units.Power
	MaxDischarge units.Power
	// RoundTripEfficiency in (0,1]: energy out per energy in across a
	// full cycle. Losses are applied on charge.
	RoundTripEfficiency float64
	// InitialSoC is the starting state of charge as a fraction of
	// Capacity (0..1).
	InitialSoC float64
}

// Validate checks the battery parameters.
func (b *Battery) Validate() error {
	if b.Capacity <= 0 {
		return errors.New("storage: capacity must be positive")
	}
	if b.MaxCharge <= 0 || b.MaxDischarge <= 0 {
		return errors.New("storage: charge and discharge limits must be positive")
	}
	if b.RoundTripEfficiency <= 0 || b.RoundTripEfficiency > 1 {
		return errors.New("storage: round-trip efficiency must be in (0,1]")
	}
	if b.InitialSoC < 0 || b.InitialSoC > 1 {
		return errors.New("storage: initial SoC must be in [0,1]")
	}
	return nil
}

// Describe returns a one-line description.
func (b *Battery) Describe() string {
	return fmt.Sprintf("battery %s, ±(%s/%s), η=%.0f%%",
		b.Capacity, b.MaxCharge, b.MaxDischarge, b.RoundTripEfficiency*100)
}

// Result is the outcome of running a policy.
type Result struct {
	// Net is the grid-visible load (facility load ± battery power).
	Net *timeseries.PowerSeries
	// SoC is the state-of-charge trace (fractions of capacity), one
	// sample per input interval, recorded at interval end.
	SoC []float64
	// Discharged and Charged are the total battery throughputs
	// (Charged measured at the meter, i.e. before losses).
	Discharged units.Energy
	Charged    units.Energy
	// EquivalentFullCycles is discharged energy over capacity.
	EquivalentFullCycles float64
}

// PeakShave discharges whenever the facility load exceeds threshold and
// recharges (up to the threshold) whenever it is below — the classic
// demand-charge defense. The grid-visible profile never exceeds
// max(threshold, load−MaxDischarge) and never draws more than threshold
// while recharging.
func PeakShave(b *Battery, load *timeseries.PowerSeries, threshold units.Power) (*Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if threshold <= 0 {
		return nil, errors.New("storage: threshold must be positive")
	}
	return run(b, load, func(p units.Power, socKWh float64) units.Power {
		if p > threshold {
			return -(p - threshold) // discharge request (negative = discharge)
		}
		return threshold - p // charge headroom
	})
}

// Arbitrage charges when the price is at or below buyBelow and
// discharges into the facility load when the price is at or above
// sellAbove. Discharge is capped by the instantaneous load (no export).
func Arbitrage(b *Battery, load *timeseries.PowerSeries, prices *timeseries.PriceSeries, buyBelow, sellAbove units.EnergyPrice) (*Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if prices == nil {
		return nil, errors.New("storage: arbitrage needs a price feed")
	}
	if sellAbove <= buyBelow {
		return nil, errors.New("storage: sell threshold must exceed buy threshold")
	}
	return run(b, load, func(p units.Power, socKWh float64) units.Power {
		// The price at this sample's time is resolved by the caller via
		// closure state; we re-resolve inside run through load times.
		return 0 // placeholder, replaced below
	}, arbitragePolicy(load, prices, buyBelow, sellAbove))
}

// policyFn returns the desired battery power for a sample: positive =
// charge at up to that power, negative = discharge at up to |value|.
type policyFn func(load units.Power, socKWh float64) units.Power

// arbitragePolicy builds a time-aware policy (needs sample index).
func arbitragePolicy(load *timeseries.PowerSeries, prices *timeseries.PriceSeries, buyBelow, sellAbove units.EnergyPrice) indexedPolicy {
	return func(i int, p units.Power, socKWh float64) units.Power {
		price, _ := prices.PriceAt(load.TimeAt(i))
		switch {
		case price >= sellAbove:
			return -p // discharge into the load (capped by run)
		case price <= buyBelow:
			return units.Power(1e18) // charge as fast as allowed
		default:
			return 0
		}
	}
}

type indexedPolicy func(i int, load units.Power, socKWh float64) units.Power

// RunPolicy executes a caller-supplied dispatch policy over the load:
// for each sample the policy sees the index, instantaneous load and
// state of charge (as a fraction of capacity) and returns the desired
// battery power — positive to charge at up to that power, negative to
// discharge at up to its magnitude. Physical limits (rates, SoC bounds,
// no-export, charge losses) are enforced by the engine. This is the
// extension point DR strategies use.
func RunPolicy(b *Battery, load *timeseries.PowerSeries, policy func(i int, load units.Power, socFraction float64) units.Power) (*Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if policy == nil {
		return nil, errors.New("storage: nil policy")
	}
	capKWh := float64(b.Capacity)
	return run(b, load, nil, func(i int, p units.Power, socKWh float64) units.Power {
		return policy(i, p, socKWh/capKWh)
	})
}

// run executes a policy over the load. If ipol is non-nil it overrides
// pol (used by time-aware policies).
func run(b *Battery, load *timeseries.PowerSeries, pol policyFn, ipol ...indexedPolicy) (*Result, error) {
	if load == nil || load.Len() == 0 {
		return nil, errors.New("storage: empty load")
	}
	var indexed indexedPolicy
	if len(ipol) > 0 && ipol[0] != nil {
		indexed = ipol[0]
	} else {
		indexed = func(_ int, p units.Power, soc float64) units.Power { return pol(p, soc) }
	}
	h := load.Interval().Hours()
	capKWh := float64(b.Capacity)
	soc := b.InitialSoC * capKWh
	out := make([]units.Power, load.Len())
	socTrace := make([]float64, load.Len())
	res := &Result{}
	for i := 0; i < load.Len(); i++ {
		p := load.At(i)
		want := indexed(i, p, soc)
		var battery units.Power // positive = charging draw, negative = discharge relief
		if want < 0 {
			// Discharge: bounded by request, rate, load (no export) and SoC.
			req := -want
			req = units.MinPower(req, b.MaxDischarge)
			req = units.MinPower(req, p)
			maxBySoC := units.Power(soc / h)
			req = units.MinPower(req, maxBySoC)
			if req > 0 {
				soc -= float64(req) * h
				res.Discharged += units.Energy(float64(req) * h)
				battery = -req
			}
		} else if want > 0 {
			// Charge: bounded by request, rate and remaining capacity
			// (losses applied on the way in).
			req := units.MinPower(want, b.MaxCharge)
			room := capKWh - soc
			maxByRoom := units.Power(room / (h * b.RoundTripEfficiency))
			req = units.MinPower(req, maxByRoom)
			if req > 0 {
				soc += float64(req) * h * b.RoundTripEfficiency
				res.Charged += units.Energy(float64(req) * h)
				battery = req
			}
		}
		if soc < 0 {
			soc = 0
		}
		if soc > capKWh {
			soc = capKWh
		}
		out[i] = p + battery
		socTrace[i] = soc / capKWh
	}
	net, err := timeseries.NewPower(load.Start(), load.Interval(), out)
	if err != nil {
		return nil, err
	}
	res.Net = net
	res.SoC = socTrace
	res.EquivalentFullCycles = float64(res.Discharged) / capKWh
	return res, nil
}
