package billing

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/timeseries"
	"repro/internal/units"
)

var t0 = time.Date(2016, time.March, 1, 0, 0, 0, 0, time.UTC)

func series(kw ...float64) *timeseries.PowerSeries {
	samples := make([]units.Power, len(kw))
	for i, v := range kw {
		samples[i] = units.Power(v)
	}
	return timeseries.MustNewPower(t0, time.Hour, samples)
}

// probe is a test producer that records every sample it observes.
type probe struct {
	name    string
	invalid bool
	// begun counts BeginPeriod calls across goroutines; last is the
	// most recent accumulator (only meaningful for single-period runs).
	begun atomic.Int64
	last  *probeAcc
}

func (p *probe) Validate() error {
	if p.invalid {
		return errors.New("probe: invalid")
	}
	return nil
}

func (p *probe) Describe() string { return p.name }

func (p *probe) BeginPeriod(ctx *PeriodContext, interval time.Duration) Accumulator {
	p.begun.Add(1)
	a := &probeAcc{name: p.name, hist: ctx.HistoricalPeak, interval: interval}
	p.last = a
	return a
}

type probeAcc struct {
	name     string
	hist     units.Power
	interval time.Duration
	samples  []Sample
}

func (a *probeAcc) Observe(s Sample) { a.samples = append(a.samples, s) }

func (a *probeAcc) Lines() []LineItem {
	return []LineItem{{
		Class:       ClassFlatFee,
		Description: a.name,
		Quantity:    "flat",
		Amount:      units.Money(len(a.samples)),
	}}
}

func TestClassNames(t *testing.T) {
	for c := ClassFixedTariff; c <= ClassFlatFee; c++ {
		if strings.HasPrefix(c.String(), "Class(") {
			t.Errorf("class %d should have a name", int(c))
		}
	}
	if Class(99).String() != "Class(99)" {
		t.Error("unknown class formatting")
	}
}

func TestWindowCovers(t *testing.T) {
	w := Window{Start: t0, End: t0.Add(time.Hour)}
	if !w.Covers(t0) || w.Covers(t0.Add(time.Hour)) || w.Covers(t0.Add(-time.Second)) {
		t.Error("window coverage is half-open [start, end)")
	}
}

func TestNewEvaluatorValidates(t *testing.T) {
	if _, err := NewEvaluator(&probe{name: "ok"}, nil); err == nil {
		t.Error("nil producer should fail")
	}
	if _, err := NewEvaluator(&probe{name: "bad", invalid: true}); err == nil {
		t.Error("invalid producer should fail")
	}
	e, err := NewEvaluator(&probe{name: "a"}, &probe{name: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if e.Producers() != 2 {
		t.Errorf("producers = %d", e.Producers())
	}
}

func TestEvaluatePeriodEmptyLoad(t *testing.T) {
	e, _ := NewEvaluator(&probe{name: "p"})
	if _, err := e.EvaluatePeriod(nil, PeriodContext{}); !errors.Is(err, ErrEmptyLoad) {
		t.Errorf("nil load err = %v", err)
	}
	empty := timeseries.MustNewPower(t0, time.Hour, nil)
	if _, err := e.EvaluatePeriod(empty, PeriodContext{}); !errors.Is(err, ErrEmptyLoad) {
		t.Errorf("empty load err = %v", err)
	}
}

func TestEvaluatePeriodSamplesAndAggregates(t *testing.T) {
	p := &probe{name: "p"}
	e, _ := NewEvaluator(p)
	load := series(1000, 3000, 2000)
	res, err := e.EvaluatePeriod(load, PeriodContext{HistoricalPeak: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Peak != 3000 || !res.PeakTime.Equal(t0.Add(time.Hour)) {
		t.Errorf("peak = %v at %v", res.Peak, res.PeakTime)
	}
	if float64(res.Energy) != 6000 {
		t.Errorf("energy = %v", res.Energy)
	}
	if !res.PeriodStart.Equal(load.Start()) || !res.PeriodEnd.Equal(load.End()) {
		t.Error("period bounds")
	}
	// The probe observed every sample once, in order, with shared energy.
	if len(res.Lines) != 1 || res.Lines[0].Amount != units.Money(3) {
		t.Fatalf("lines = %+v", res.Lines)
	}
	if res.Total != units.Money(3) {
		t.Errorf("total = %v", res.Total)
	}
	if p.begun.Load() != 1 {
		t.Errorf("BeginPeriod calls = %d", p.begun.Load())
	}
	// Sample contents: index order, interval-start timestamps, shared
	// precomputed energy (power × 1 h here).
	obs := p.last.samples
	if len(obs) != 3 {
		t.Fatalf("observed %d samples", len(obs))
	}
	for i, s := range obs {
		if s.Index != i {
			t.Errorf("sample %d index = %d", i, s.Index)
		}
		if !s.Time.Equal(t0.Add(time.Duration(i) * time.Hour)) {
			t.Errorf("sample %d time = %v", i, s.Time)
		}
		if float64(s.Energy) != float64(s.Power) {
			t.Errorf("sample %d energy = %v for power %v", i, s.Energy, s.Power)
		}
	}
	if p.last.hist != 500 || p.last.interval != time.Hour {
		t.Errorf("context plumbed = %v/%v", p.last.hist, p.last.interval)
	}
}

func TestFlatFeeLine(t *testing.T) {
	load := series(1000, 2000)
	fe, _ := NewEvaluator(FlatFee{Name: "metering", Amount: units.Money(77)})
	fres, err := fe.EvaluatePeriod(load, PeriodContext{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fres.Lines) != 1 {
		t.Fatalf("lines = %+v", fres.Lines)
	}
	l := fres.Lines[0]
	if l.Class != ClassFlatFee || l.Description != "metering" || l.Quantity != "flat" || l.Amount != 77 {
		t.Errorf("fee line = %+v", l)
	}
	if fres.Total != 77 {
		t.Errorf("total = %v", fres.Total)
	}
}

func TestEvaluateMonthsEmptyAndSingle(t *testing.T) {
	e, _ := NewEvaluator(&probe{name: "p"})
	if _, err := e.EvaluateMonths(nil, PeriodContext{}, MonthsOptions{}); !errors.Is(err, ErrEmptyLoad) {
		t.Errorf("nil load err = %v", err)
	}
	res, err := e.EvaluateMonths(series(1000, 2000), PeriodContext{}, MonthsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Peak != 2000 {
		t.Fatalf("results = %+v", res)
	}
}

// ratchetProbe bills the historical peak it was given, exposing exactly
// what the prescan threaded into each month.
type ratchetProbe struct{}

func (ratchetProbe) Validate() error  { return nil }
func (ratchetProbe) Describe() string { return "ratchet-probe" }
func (ratchetProbe) BeginPeriod(ctx *PeriodContext, _ time.Duration) Accumulator {
	return &ratchetProbeAcc{hist: ctx.HistoricalPeak}
}

type ratchetProbeAcc struct{ hist units.Power }

func (a *ratchetProbeAcc) Observe(Sample) {}
func (a *ratchetProbeAcc) Lines() []LineItem {
	return []LineItem{{Class: ClassDemandCharge, Description: "hist", Amount: units.Money(a.hist)}}
}

func TestEvaluateMonthsThreadsHistoricalPeak(t *testing.T) {
	// Three months of hourly data: peaks 5 MW (Mar), 9 MW (Apr), 6 MW (May).
	n := (31 + 30 + 31) * 24
	samples := make([]units.Power, n)
	for i := range samples {
		samples[i] = 1000
	}
	samples[10] = 5000            // March
	samples[31*24+10] = 9000      // April
	samples[(31+30)*24+10] = 6000 // May
	load := timeseries.MustNewPower(t0, time.Hour, samples)

	e, _ := NewEvaluator(ratchetProbe{})
	for _, workers := range []int{0, 1, 2, 7} {
		res, err := e.EvaluateMonths(load, PeriodContext{HistoricalPeak: 4000}, MonthsOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 3 {
			t.Fatalf("months = %d", len(res))
		}
		// March enters with the caller's 4 MW, April with March's 5 MW,
		// May with April's 9 MW.
		want := []units.Money{4000, 5000, 9000}
		for i, r := range res {
			if r.Lines[0].Amount != want[i] {
				t.Errorf("workers=%d month %d hist = %v, want %v",
					workers, i, r.Lines[0].Amount, want[i])
			}
		}
	}
}

func TestFlatFeeValidateAndDescribe(t *testing.T) {
	f := FlatFee{Name: "levy", Amount: -5}
	if f.Validate() != nil {
		t.Error("negative fee models a credit; must validate")
	}
	if f.Describe() != "levy" {
		t.Error("describe")
	}
}
