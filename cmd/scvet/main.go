// Command scvet is the repo's custom static-analysis suite, packaged
// as a `go vet -vettool`-compatible multichecker:
//
//	go build -o bin/scvet ./cmd/scvet
//	go vet -vettool=$(pwd)/bin/scvet ./...
//
// It runs five analyzers that mechanically enforce the billing
// invariants (see each package's doc, or `scvet -scvet.doc`):
// moneyfloat, nondeterm, ctxloop, lockheld, metricname. A finding can
// be suppressed — with an auditable reason — by a directive on the
// same line or the line above:
//
//	//lint:scvet-ignore <analyzer> <reason>
package main

import (
	"repro/internal/analysis/ctxloop"
	"repro/internal/analysis/lockheld"
	"repro/internal/analysis/metricname"
	"repro/internal/analysis/moneyfloat"
	"repro/internal/analysis/nondeterm"
	"repro/internal/analysis/unitchecker"
)

func main() {
	unitchecker.Main(
		moneyfloat.Analyzer,
		nondeterm.Analyzer,
		ctxloop.Analyzer,
		lockheld.Analyzer,
		metricname.Analyzer,
	)
}
