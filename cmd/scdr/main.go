// Command scdr evaluates a demand-response participation decision: a
// facility baseline, a DR program, a dispatched event window and an SC
// response strategy, producing the bill delta, settlement and net
// benefit — the arithmetic behind the paper's "is the incentive high
// enough?" question.
//
// Usage:
//
//	scdr -strategy cap -cap-mw 8
//	scdr -strategy shed -fraction 0.1 -incentive 0.6
//	scdr -strategy shift -fraction 0.3 -op-cost 0.02
//	scdr -strategy gen -gen-mw 3 -fuel-cost 0.25
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/contract"
	"repro/internal/demand"
	"repro/internal/dr"
	"repro/internal/hpc"
	"repro/internal/market"
	"repro/internal/report"
	"repro/internal/tariff"
	"repro/internal/units"
)

func main() {
	strategyName := flag.String("strategy", "cap", "response strategy: cap, shed, shift or gen")
	capMW := flag.Float64("cap-mw", 8, "cap strategy: facility cap in MW")
	fraction := flag.Float64("fraction", 0.1, "shed/shift strategies: load fraction")
	genMW := flag.Float64("gen-mw", 3, "gen strategy: on-site generation capacity in MW")
	fuelCost := flag.Float64("fuel-cost", 0.25, "gen strategy: fuel cost per kWh")
	opCost := flag.Float64("op-cost", 0.05, "cap/shed/shift strategies: operational cost per kWh")
	incentive := flag.Float64("incentive", 0.50, "program energy incentive per kWh curtailed")
	committedMW := flag.Float64("committed-mw", 2, "program committed reduction in MW")
	eventHours := flag.Float64("event-hours", 1, "dispatch window length in hours")
	baseMW := flag.Float64("base-mw", 10, "facility base load in MW")
	seed := flag.Int64("seed", 5, "baseline seed")
	flag.Parse()

	if err := run(*strategyName, *capMW, *fraction, *genMW, *fuelCost, *opCost,
		*incentive, *committedMW, *eventHours, *baseMW, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "scdr:", err)
		os.Exit(1)
	}
}

func run(strategyName string, capMW, fraction, genMW, fuelCost, opCost,
	incentive, committedMW, eventHours, baseMW float64, seed int64) error {

	start := time.Date(2016, time.August, 1, 0, 0, 0, 0, time.UTC)
	baseline, err := hpc.SyntheticFacilityLoad(hpc.LoadProfileConfig{
		Start: start, Span: 30 * 24 * time.Hour, Interval: 15 * time.Minute,
		Base: units.Power(baseMW) * units.Megawatt, PeakToAverage: 1.3,
		NoiseSigma: 0.02, Seed: seed,
	})
	if err != nil {
		return err
	}

	var strategy dr.Strategy
	switch strategyName {
	case "cap":
		strategy = &dr.CapStrategy{
			Cap: units.Power(capMW) * units.Megawatt, OpCostPerKWh: units.EnergyPrice(opCost)}
	case "shed":
		strategy = &dr.ShedStrategy{Fraction: fraction, OpCostPerKWh: units.EnergyPrice(opCost)}
	case "shift":
		strategy = &dr.ShiftStrategy{
			Fraction: fraction, RecoverySpan: 4 * time.Hour, OpCostPerKWh: units.EnergyPrice(opCost)}
	case "gen":
		strategy = &dr.GenStrategy{
			Capacity: units.Power(genMW) * units.Megawatt, FuelCostPerKWh: units.EnergyPrice(fuelCost)}
	default:
		return fmt.Errorf("unknown strategy %q (want cap, shed, shift or gen)", strategyName)
	}

	c := &contract.Contract{
		Name:          "dr-site",
		Tariffs:       []tariff.Tariff{tariff.MustNewFixed(0.06)},
		DemandCharges: []*demand.Charge{demand.SimpleCharge(12)},
	}
	committed := units.Power(committedMW) * units.Megawatt
	program := &market.Program{
		Kind:                 market.EmergencyDR,
		CommittedReduction:   committed,
		EnergyIncentive:      units.EnergyPrice(incentive),
		UnderDeliveryPenalty: units.EnergyPrice(incentive), // symmetric
	}
	events := []market.Event{{
		Start:              start.Add(14*24*time.Hour + 15*time.Hour),
		Duration:           time.Duration(eventHours * float64(time.Hour)),
		RequestedReduction: committed,
	}}

	ev, err := dr.Evaluate(c, baseline, strategy, program, events, contract.BillingInput{})
	if err != nil {
		return err
	}

	fmt.Printf("DR participation evaluation — strategy %s\n\n", ev.Strategy)
	fmt.Print(report.KV([][2]string{
		{"Baseline bill", ev.BaselineBill.Total.String()},
		{"Bill with response", ev.ResponseBill.Total.String()},
		{"Bill savings", ev.BillSavings().String()},
		{"Curtailed energy", ev.Settlement.CurtailedEnergy.String()},
		{"Shortfall energy", ev.Settlement.ShortfallEnergy.String()},
		{"Energy payment", ev.Settlement.EnergyPayment.String()},
		{"Penalty", ev.Settlement.Penalty.String()},
		{"Operational cost", ev.OpCost.String()},
		{"NET BENEFIT", ev.NetBenefit.String()},
	}))
	if ev.WorthIt() {
		fmt.Println("\nParticipation pays at this incentive level.")
	} else {
		fmt.Println("\nParticipation does NOT pay — the paper's usual finding for compute-bearing load.")
	}
	return nil
}
