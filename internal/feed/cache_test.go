package feed

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/timeseries"
	"repro/internal/units"
)

// scripted is a provider whose next outcomes are queued by the test.
type scripted struct {
	mu          sync.Mutex
	series      *timeseries.PriceSeries
	fail        error // when set, every Fetch fails with it
	calls       int
	failedCalls int
}

func (p *scripted) Fetch(context.Context, time.Time, time.Time) (*timeseries.PriceSeries, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls++
	if p.fail != nil {
		p.failedCalls++
		return nil, p.fail
	}
	return p.series, nil
}

func (p *scripted) Describe() string { return "scripted test feed" }

func (p *scripted) setFail(err error) {
	p.mu.Lock()
	p.fail = err
	p.mu.Unlock()
}

func (p *scripted) callCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls
}

// healAfter clears the scripted failure once n calls have failed since
// it was set (call counts only grow, so "since set" = total calls).
func (p *scripted) healAfter(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fail != nil && p.failedCalls >= n {
		p.fail = nil
	}
}

var (
	t0      = time.Date(2016, time.March, 1, 0, 0, 0, 0, time.UTC)
	windowA = [2]time.Time{t0, t0.Add(24 * time.Hour)}
)

func daySeries() *timeseries.PriceSeries {
	return timeseries.ConstantPrice(t0, time.Hour, 25, units.EnergyPrice(0.05))
}

// noRetry keeps background refreshes single-shot so tests control
// every upstream attempt.
var noRetry = resilience.Retry{MaxAttempts: 1}

func newTestCache(p PriceProvider, clock *fakeClock, ttl, budget time.Duration) *Cached {
	return NewCached(p, CachedConfig{
		TTL:             ttl,
		StalenessBudget: budget,
		Retry:           noRetry,
		Breaker:         &resilience.BreakerConfig{FailureThreshold: 100, Now: clock.Now},
		Now:             clock.Now,
	})
}

// fakeClock mirrors the resilience test clock (the packages do not
// share test helpers).
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: t0} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestCachedFreshWithinTTL(t *testing.T) {
	clock := newFakeClock()
	p := &scripted{series: daySeries()}
	c := newTestCache(p, clock, 5*time.Minute, time.Hour)
	defer c.Close()

	res := c.Prices(context.Background(), windowA[0], windowA[1])
	if res.State != Fresh || res.Series == nil || res.Version != 1 {
		t.Fatalf("cold fetch: %+v", res)
	}
	// Within TTL: served from cache, no second upstream call.
	clock.Advance(4 * time.Minute)
	res = c.Prices(context.Background(), windowA[0], windowA[1])
	if res.State != Fresh || p.callCount() != 1 {
		t.Fatalf("within TTL: state=%s upstream calls=%d, want fresh from cache", res.State, p.callCount())
	}
	// Past TTL with a healthy upstream: refetched, version bumps.
	clock.Advance(2 * time.Minute)
	res = c.Prices(context.Background(), windowA[0], windowA[1])
	if res.State != Fresh || p.callCount() != 2 || res.Version != 2 {
		t.Fatalf("past TTL: state=%s calls=%d version=%d", res.State, p.callCount(), res.Version)
	}
}

func TestCachedServesStaleWithinBudget(t *testing.T) {
	clock := newFakeClock()
	p := &scripted{series: daySeries()}
	c := newTestCache(p, clock, 5*time.Minute, time.Hour)
	defer c.Close()

	if res := c.Prices(context.Background(), windowA[0], windowA[1]); res.State != Fresh {
		t.Fatalf("cold fetch: %+v", res)
	}
	p.setFail(errors.New("upstream 503"))
	clock.Advance(30 * time.Minute)

	res := c.Prices(context.Background(), windowA[0], windowA[1])
	if res.State != Stale || res.Series == nil {
		t.Fatalf("failing upstream within budget: %+v", res)
	}
	if res.Age != 30*time.Minute || !strings.Contains(res.Reason, "upstream 503") {
		t.Fatalf("stale result age=%s reason=%q", res.Age, res.Reason)
	}
	// Same version as the cached fetch: engines compiled against it
	// stay valid.
	if res.Version != 1 {
		t.Fatalf("stale version = %d, want 1", res.Version)
	}
}

func TestCachedDegradesPastBudget(t *testing.T) {
	clock := newFakeClock()
	p := &scripted{series: daySeries()}
	c := newTestCache(p, clock, 5*time.Minute, time.Hour)
	defer c.Close()

	c.Prices(context.Background(), windowA[0], windowA[1])
	p.setFail(errors.New("upstream gone"))
	clock.Advance(2 * time.Hour)

	res := c.Prices(context.Background(), windowA[0], windowA[1])
	if res.State != Degraded || res.Series != nil {
		t.Fatalf("past budget: %+v", res)
	}
	for _, want := range []string{"upstream gone", "past the 1h0m0s staleness budget"} {
		if !strings.Contains(res.Reason, want) {
			t.Fatalf("degraded reason %q missing %q", res.Reason, want)
		}
	}
}

func TestCachedDegradedWhenNeverFetched(t *testing.T) {
	clock := newFakeClock()
	p := &scripted{fail: errors.New("refused")}
	c := newTestCache(p, clock, 5*time.Minute, time.Hour)
	defer c.Close()

	res := c.Prices(context.Background(), windowA[0], windowA[1])
	if res.State != Degraded || res.Series != nil || res.Version != 0 {
		t.Fatalf("never-successful feed: %+v", res)
	}
	if !strings.Contains(res.Reason, "no usable cached prices") {
		t.Fatalf("reason: %q", res.Reason)
	}
}

func TestCachedRecoversAfterOutage(t *testing.T) {
	clock := newFakeClock()
	p := &scripted{series: daySeries()}
	c := newTestCache(p, clock, 5*time.Minute, time.Hour)
	defer c.Close()

	c.Prices(context.Background(), windowA[0], windowA[1])
	p.setFail(errors.New("flap"))
	clock.Advance(10 * time.Minute)
	if res := c.Prices(context.Background(), windowA[0], windowA[1]); res.State != Stale {
		t.Fatalf("during outage: %+v", res)
	}
	p.setFail(nil)
	clock.Advance(time.Minute)
	res := c.Prices(context.Background(), windowA[0], windowA[1])
	if res.State != Fresh || res.Version != 2 {
		t.Fatalf("after recovery: %+v", res)
	}
	if err := c.LastError(); err != nil {
		t.Fatalf("LastError after recovery: %v", err)
	}
}

func TestCachedBreakerFailsFast(t *testing.T) {
	clock := newFakeClock()
	p := &scripted{fail: errors.New("down hard")}
	c := NewCached(p, CachedConfig{
		TTL: 5 * time.Minute, StalenessBudget: time.Hour,
		Retry:   noRetry,
		Breaker: &resilience.BreakerConfig{FailureThreshold: 3, OpenTimeout: time.Hour, Now: clock.Now},
		Now:     clock.Now,
	})
	defer c.Close()

	// Trip the breaker with consecutive failures, then confirm further
	// requests stop reaching the upstream at all.
	for i := 0; i < 6; i++ {
		c.Prices(context.Background(), windowA[0], windowA[1])
	}
	tripped := p.callCount()
	if tripped > 4 { // 3 sync + at most 1 background before opening
		t.Fatalf("breaker let %d calls through, threshold 3", tripped)
	}
	if c.Breaker().State() != resilience.Open {
		t.Fatalf("breaker state = %s, want open", c.Breaker().State())
	}
	res := c.Prices(context.Background(), windowA[0], windowA[1])
	if res.State != Degraded || !strings.Contains(res.Reason, "circuit breaker is open") {
		t.Fatalf("open-breaker answer: %+v", res)
	}
}

func TestCachedBackgroundRefreshHeals(t *testing.T) {
	clock := newFakeClock()
	p := &scripted{series: daySeries()}
	c := NewCached(p, CachedConfig{
		TTL: 5 * time.Minute, StalenessBudget: time.Hour,
		// The injected sleep makes the background retries instant and
		// deterministically heals the upstream after the second
		// failure, so the third attempt must land.
		Retry: resilience.Retry{MaxAttempts: 5, Seed: 1,
			Sleep: func(_ context.Context, _ time.Duration) error {
				p.healAfter(2)
				return nil
			}},
		Breaker: &resilience.BreakerConfig{FailureThreshold: 100, Now: clock.Now},
		Now:     clock.Now,
	})
	defer c.Close()

	c.Prices(context.Background(), windowA[0], windowA[1])
	p.setFail(errors.New("brief blip"))
	clock.Advance(10 * time.Minute)
	// This request fails synchronously, kicks the background refresh,
	// and is served stale; the refresh loop then heals the cache with
	// no further requests arriving.
	if res := c.Prices(context.Background(), windowA[0], windowA[1]); res.State != Stale {
		t.Fatalf("during blip: %+v", res)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.Version() >= 2 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("background refresh never healed the cache (version %d, last error %v)",
		c.Version(), c.LastError())
}

func TestCachedWindowNotCovered(t *testing.T) {
	clock := newFakeClock()
	p := &scripted{series: daySeries()} // covers only day one
	c := newTestCache(p, clock, time.Hour, 2*time.Hour)
	defer c.Close()

	c.Prices(context.Background(), windowA[0], windowA[1])
	p.setFail(errors.New("down"))
	// A window outside the cached span cannot be served stale — prices
	// for it would be pure extrapolation — so it degrades.
	farStart := t0.Add(30 * 24 * time.Hour)
	res := c.Prices(context.Background(), farStart, farStart.Add(24*time.Hour))
	if res.State != Degraded {
		t.Fatalf("uncovered window: %+v", res)
	}
}

func TestCachedStatsAccount(t *testing.T) {
	clock := newFakeClock()
	p := &scripted{series: daySeries()}
	c := newTestCache(p, clock, 5*time.Minute, time.Hour)
	defer c.Close()

	c.Prices(context.Background(), windowA[0], windowA[1]) // fresh (fetch)
	c.Prices(context.Background(), windowA[0], windowA[1]) // fresh (cache)
	p.setFail(errors.New("x"))
	clock.Advance(10 * time.Minute)
	c.Prices(context.Background(), windowA[0], windowA[1]) // stale
	clock.Advance(2 * time.Hour)
	c.Prices(context.Background(), windowA[0], windowA[1]) // degraded

	st := c.Stats()
	if st.Fresh != 2 || st.Stale != 1 || st.Degraded != 1 || st.Refreshes != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestCachedConcurrent hammers one cache from many goroutines while
// the upstream flaps (run with -race): every answer must be one of the
// three legal states and degraded answers must carry a reason.
func TestCachedConcurrent(t *testing.T) {
	clock := newFakeClock()
	p := &scripted{series: daySeries()}
	c := NewCached(p, CachedConfig{
		TTL: time.Minute, StalenessBudget: time.Hour,
		Retry:   noRetry,
		Breaker: &resilience.BreakerConfig{FailureThreshold: 5, OpenTimeout: time.Minute, Now: clock.Now},
		Now:     clock.Now,
	})
	defer c.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if i%7 == w%7 {
					p.setFail(fmt.Errorf("flap %d/%d", w, i))
				} else if i%11 == 0 {
					p.setFail(nil)
				}
				if i%13 == 0 {
					clock.Advance(30 * time.Second)
				}
				res := c.Prices(context.Background(), windowA[0], windowA[1])
				switch res.State {
				case Fresh, Stale:
					if res.Series == nil {
						errs <- fmt.Errorf("%s answer without a series", res.State)
					}
				case Degraded:
					if res.Reason == "" {
						errs <- errors.New("degraded answer without a reason")
					}
				default:
					errs <- fmt.Errorf("illegal state %d", res.State)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
