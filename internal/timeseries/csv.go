package timeseries

// CSV interchange for load profiles: the format utility meters and
// building-management exports commonly use — one header line, then
// RFC 3339 timestamp and kW value per row. Only the first row's
// timestamp and the first-to-second spacing define start and interval;
// every subsequent row must land on the grid.

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/units"
)

// WritePowerCSV writes the series as "timestamp,kw" rows with a header.
func WritePowerCSV(w io.Writer, s *PowerSeries) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"timestamp", "kw"}); err != nil {
		return err
	}
	for i := 0; i < s.Len(); i++ {
		rec := []string{
			s.TimeAt(i).Format(time.RFC3339),
			strconv.FormatFloat(float64(s.At(i)), 'f', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadPowerCSV parses a "timestamp,kw" CSV (with header) into a series.
// Rows must be equally spaced and in order.
func ReadPowerCSV(r io.Reader) (*PowerSeries, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("timeseries: bad CSV: %w", err)
	}
	if len(rows) < 3 { // header + at least two samples to fix the interval
		return nil, fmt.Errorf("timeseries: CSV needs a header and at least two rows")
	}
	rows = rows[1:] // drop header
	parse := func(row []string) (time.Time, units.Power, error) {
		ts, err := time.Parse(time.RFC3339, row[0])
		if err != nil {
			return time.Time{}, 0, fmt.Errorf("timeseries: bad timestamp %q: %w", row[0], err)
		}
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return time.Time{}, 0, fmt.Errorf("timeseries: bad value %q: %w", row[1], err)
		}
		return ts, units.Power(v), nil
	}
	start, first, err := parse(rows[0])
	if err != nil {
		return nil, err
	}
	second, _, err := parse(rows[1])
	if err != nil {
		return nil, err
	}
	interval := second.Sub(start)
	if interval <= 0 {
		return nil, fmt.Errorf("timeseries: rows out of order")
	}
	samples := make([]units.Power, 0, len(rows))
	samples = append(samples, first)
	for i := 1; i < len(rows); i++ {
		ts, v, err := parse(rows[i])
		if err != nil {
			return nil, err
		}
		want := start.Add(time.Duration(i) * interval)
		if !ts.Equal(want) {
			return nil, fmt.Errorf("timeseries: row %d at %s breaks the %s grid (want %s)",
				i+1, ts.Format(time.RFC3339), interval, want.Format(time.RFC3339))
		}
		samples = append(samples, v)
	}
	return NewPower(start, interval, samples)
}
