// Package serve is the billing-as-a-service layer: a long-lived HTTP
// daemon exposing the reproduction — bill computation, the survey
// dataset, and the renegotiation advisor — over JSON. The related work
// the paper cites (workload modulation under real-world pricing, demand
// charge reduction via partial execution) assumes an always-available
// pricing oracle operators can query against real tariff structures;
// this package is that oracle over the paper's contract typology.
//
// The service amortizes the hot path the CLI tools pay per invocation:
// compiled contract engines (contract.Engine, ~3.4 ms per year-bill
// after a one-time compile) are cached in an LRU keyed by the canonical
// content hash of the contract spec, so a spec is compiled once and
// billed many times. Expensive endpoints run behind a bounded-
// concurrency admission gate with a finite queue — when the queue is
// full the server sheds load with 429 + Retry-After instead of
// collapsing — and every admitted request carries a deadline that is
// threaded as a context into the billing engine's evaluation loop.
// Shutdown is graceful: new requests are refused while in-flight bills
// drain.
//
// Endpoints:
//
//	POST /v1/bill?monthly=1   contract spec + load profile -> bill JSON
//	POST /v1/bill/batch       one load x N contracts (or N loads x one
//	                          contract) -> per-item bills in one request
//	POST /v1/advise           candidate sweep -> renegotiation advice
//	POST /v1/optimize         load + flexibility envelope -> cheapest
//	                          feasible reshaped schedule and its savings
//	GET  /v1/survey/roster    Table 1
//	GET  /v1/survey/records   Table 2 (+ RNP column)
//	GET  /v1/survey/typology  Figure 1 tree + aggregate counts
//	GET  /healthz             liveness (200 as long as the process serves)
//	GET  /readyz              readiness (503 as soon as draining begins)
//	GET  /metrics             Prometheus text exposition
//
// Dynamic tariffs can bill against a live market feed (Config.PriceFeed,
// a feed.Cached): prices are served fresh, stale within a staleness
// budget when the upstream is flaky, or — once the budget is blown —
// the bill degrades to the contract's declared fixed fallback rate and
// is marked degraded in both body and X-SCBill-Degraded header. A dead
// price feed therefore never turns into a 5xx on /v1/bill.
package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/feed"
	"repro/internal/obs"
)

// Config tunes the service layer. The zero value is usable: every field
// has a production-lean default applied by NewServer.
type Config struct {
	// MaxConcurrent caps bill/advise evaluations running at once;
	// <= 0 selects GOMAXPROCS.
	MaxConcurrent int
	// QueueDepth is how many admitted requests may wait for an
	// evaluation slot beyond MaxConcurrent before the server sheds
	// load with 429; < 0 means no queue (shed immediately when all
	// slots are busy). 0 selects the default of 64.
	QueueDepth int
	// RequestTimeout bounds one request end to end, queue wait
	// included; the deadline is threaded into engine evaluation.
	// 0 selects 30 s.
	RequestTimeout time.Duration
	// EngineCacheSize caps the compiled-engine LRU; 0 selects 128.
	EngineCacheSize int
	// MonthWorkers is the per-request worker-pool size for monthly
	// billing; 0 lets the engine pick (GOMAXPROCS). Shared servers
	// may want 1–2 so one monthly request does not monopolize cores.
	MonthWorkers int
	// Logger receives one structured line per request (log/slog);
	// nil disables request logging.
	Logger *slog.Logger
	// SlowRequest is the latency at or above which a request is logged
	// at warning level instead of info. 0 selects 1 s; < 0 disables
	// the slow marker (every request logs at info).
	SlowRequest time.Duration
	// PriceFeed, when set, supplies market prices for dynamic tariffs.
	// Requests that pin an explicit flat feed rate bypass it, and specs
	// without dynamic tariffs never consult it. nil keeps the flat
	// reference-feed behavior for every request.
	PriceFeed *feed.Cached
	// FallbackRate is the fixed price dynamic tariffs bill at when the
	// feed is degraded and the spec declares no fallback_rate of its
	// own; <= 0 selects the flat reference rate (0.045/kWh).
	FallbackRate float64
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.QueueDepth < 0:
		c.QueueDepth = 0
	case c.QueueDepth == 0:
		c.QueueDepth = 64
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.EngineCacheSize == 0 {
		c.EngineCacheSize = 128
	}
	switch {
	case c.SlowRequest < 0:
		c.SlowRequest = 0
	case c.SlowRequest == 0:
		c.SlowRequest = time.Second
	}
	if c.FallbackRate <= 0 {
		c.FallbackRate = defaultFlatFeedRate
	}
	return c
}

// Server is the billing service. Create with NewServer, mount via
// Handler, stop with Shutdown.
type Server struct {
	cfg     Config
	cache   *engineCache
	limiter *limiter
	metrics *metrics
	// stages collects per-stage latency spans — the HTTP pipeline's
	// (admission_wait, cache, compile, evaluate, encode) and, because
	// the registry rides the request context into the engine, the
	// billing spans (billing.period, billing.tariff, ...).
	stages  *obs.Registry
	mux     *http.ServeMux
	started time.Time

	mu       sync.Mutex
	draining bool
	inflight int
	drained  chan struct{}

	// billHook, when set (tests), runs inside an admitted /v1/bill
	// request with the request context, after a slot is held and the
	// request counts as in-flight but before evaluation.
	billHook func(ctx context.Context)
}

// NewServer builds a server with the given configuration.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   newEngineCache(cfg.EngineCacheSize),
		limiter: newLimiter(cfg.MaxConcurrent, cfg.QueueDepth),
		metrics: newMetrics(),
		stages:  obs.NewRegistry(),
		started: time.Now(),
		drained: make(chan struct{}),
	}
	s.mux = http.NewServeMux()
	s.mux.Handle("POST /v1/bill", s.instrument("/v1/bill", s.gated("/v1/bill", s.handleBill)))
	s.mux.Handle("POST /v1/bill/batch", s.instrument("/v1/bill/batch", s.gated("/v1/bill/batch", s.handleBillBatch)))
	s.mux.Handle("POST /v1/advise", s.instrument("/v1/advise", s.gated("/v1/advise", s.handleAdvise)))
	s.mux.Handle("POST /v1/optimize", s.instrument("/v1/optimize", s.gated("/v1/optimize", s.handleOptimize)))
	s.mux.Handle("GET /v1/survey/roster", s.instrument("/v1/survey/roster", http.HandlerFunc(s.handleSurveyRoster)))
	s.mux.Handle("GET /v1/survey/records", s.instrument("/v1/survey/records", http.HandlerFunc(s.handleSurveyRecords)))
	s.mux.Handle("GET /v1/survey/typology", s.instrument("/v1/survey/typology", http.HandlerFunc(s.handleSurveyTypology)))
	s.mux.Handle("GET /healthz", s.instrument("/healthz", http.HandlerFunc(s.handleHealthz)))
	s.mux.Handle("GET /readyz", s.instrument("/readyz", http.HandlerFunc(s.handleReadyz)))
	s.mux.Handle("GET /metrics", s.instrument("/metrics", http.HandlerFunc(s.handleMetrics)))
	return s
}

// Handler returns the root handler to mount on an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Inflight returns the number of requests currently being served by
// gated endpoints.
func (s *Server) Inflight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}

// Shutdown begins draining: gated endpoints refuse new work with 503
// while requests already admitted run to completion. It returns when
// every in-flight request has finished or ctx expires, whichever is
// first.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	if s.inflight == 0 {
		s.closeDrainedLocked()
	}
	ch := s.drained
	s.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) closeDrainedLocked() {
	select {
	case <-s.drained:
	default:
		close(s.drained)
	}
}

// beginRequest admits one gated request unless the server is draining.
func (s *Server) beginRequest() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight++
	return true
}

func (s *Server) endRequest() {
	s.mu.Lock()
	s.inflight--
	if s.inflight == 0 && s.draining {
		s.closeDrainedLocked()
	}
	s.mu.Unlock()
}

// deadlineHeader is the propagated request budget, in integer
// milliseconds, stamped by scroute on every forward. Parsing it into
// the request context means a backend stops evaluating bills the
// caller has already abandoned, and its 504s report the budget it was
// actually given rather than the configured default.
const deadlineHeader = "X-SCBill-Deadline-Ms"

// requestBudget resolves the effective deadline for one gated request:
// the configured RequestTimeout, tightened by a propagated
// X-SCBill-Deadline-Ms when one is present. expired reports a budget
// already spent on arrival (<= 0 ms), which short-circuits to 504.
func (s *Server) requestBudget(r *http.Request) (budget time.Duration, propagated, expired bool) {
	v := r.Header.Get(deadlineHeader)
	budget = s.cfg.RequestTimeout
	if v == "" {
		return budget, false, false
	}
	ms, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
	if err != nil {
		return budget, false, false // unparseable: ignore, keep the default
	}
	if ms <= 0 {
		return 0, true, true
	}
	if d := time.Duration(ms) * time.Millisecond; d < budget {
		budget = d
	}
	return budget, true, false
}

// gated wraps an expensive handler with the service's admission
// control: drain refusal, the per-request deadline (tightened by a
// propagated X-SCBill-Deadline-Ms), and the bounded concurrency queue
// with load shedding. The path selects the endpoint class tracked for
// the Retry-After estimate.
func (s *Server) gated(path string, h http.HandlerFunc) http.Handler {
	class := classFor(path)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.beginRequest() {
			writeError(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		defer s.endRequest()

		budget, propagated, expired := s.requestBudget(r)
		if expired {
			s.metrics.deadlineExpired.Add(1)
			writeError(w, http.StatusGatewayTimeout,
				"propagated deadline already expired; refusing to start evaluation")
			return
		}
		if propagated {
			s.metrics.deadlinePropagated.Add(1)
		}
		ctx, cancel := context.WithTimeout(r.Context(), budget)
		defer cancel()
		r = r.WithContext(ctx)

		// Buffer the body before parking in the admission queue:
		// net/http only watches the connection for a client disconnect
		// once the request body has been consumed, so without this a
		// hung-up client would hold its queue token — invisible — until
		// the deadline. With the body drained, a disconnect cancels the
		// request context and unparks the waiter immediately.
		if r.Body != nil && r.Body != http.NoBody {
			body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
				return
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
		}

		cm := s.metrics.class(class)
		cm.pending.Add(1)
		wait := time.Now()
		err := s.limiter.acquire(ctx)
		s.stages.Observe(stageAdmissionWait, time.Since(wait).Seconds())
		if err != nil {
			cm.pending.Add(-1)
			switch {
			case err == errSaturated:
				s.metrics.shed.Add(1)
				w.Header().Set("Retry-After", s.retryAfterHint())
				writeError(w, http.StatusTooManyRequests, "request queue is full, retry later")
			case errors.Is(err, context.Canceled):
				// The client hung up while the request was queued: there
				// is no one left to answer, so a 504 would only be
				// written to a dead connection and miscounted as a
				// server-side timeout. Count and log it as what it is.
				s.metrics.clientCancels.Add(1)
				if lg := s.cfg.Logger; lg != nil {
					lg.Info("client canceled while queued",
						"path", path, "request_id", obs.RequestIDFrom(r.Context()))
				}
			default:
				// Deadline expired while queued. Report the budget this
				// request actually had — propagated or configured — so the
				// 504 is truthful about the time that was available.
				writeError(w, http.StatusGatewayTimeout,
					fmt.Sprintf("timed out waiting for an evaluation slot (budget %s)", budget))
			}
			return
		}
		defer cm.pending.Add(-1)
		defer s.limiter.release()
		serviceStart := time.Now()
		h(w, r)
		s.metrics.observeGated(class, time.Since(serviceStart))
	})
}

// retryAfterHint suggests when a shed client should come back, from the
// observed backlog rather than a static timeout: the requests ahead of
// a retrying client (everyone holding or waiting for a slot) drain at
// MaxConcurrent × the expected service time per backlogged request.
// That expectation is derived from the class mix of what is actually
// pending — a queue full of single bills drains orders of magnitude
// faster than one stuffed with 64-item batches or 5000-candidate
// optimize searches, and the overall mean would let one historic batch
// over-penalize every shed single-bill client. Classes with no service
// history yet fall back to the overall gated mean. Floored at one
// second — also the cold answer before any request has completed — and
// capped at a minute.
func (s *Server) retryAfterHint() string {
	backlog := s.limiter.active() + s.limiter.waiting()
	overall := s.metrics.gatedMean()

	// Expected per-request service time, weighted by the pending class
	// mix. The shedding caller has already left the pending counts.
	var weighted, pending float64
	for _, cm := range s.metrics.classes {
		n := float64(cm.pending.Load())
		if n <= 0 {
			continue
		}
		mean := cm.service.Snapshot().Mean()
		if mean == 0 {
			mean = overall
		}
		weighted += n * mean
		pending += n
	}
	per := overall
	if pending > 0 {
		per = weighted / pending
	}

	secs := int(math.Ceil(per * float64(backlog) / float64(s.cfg.MaxConcurrent)))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return strconv.Itoa(secs)
}
