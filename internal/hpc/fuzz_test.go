package hpc

import (
	"strings"
	"testing"
)

// FuzzParseSWF checks the SWF parser never panics and that every job it
// accepts validates. Run with `go test -fuzz=FuzzParseSWF`; the seed
// corpus runs on every ordinary `go test`.
func FuzzParseSWF(f *testing.F) {
	f.Add(sampleSWF)
	f.Add("; empty\n")
	f.Add("1 0 10 3600 32 -1 -1 32 7200\n")
	f.Add("1 -5 10 3600 32 -1 -1 32 7200\n")
	f.Add("x y z\n")
	f.Add("1 0 10 3600 0 -1 -1 0 7200\n")
	f.Add("9223372036854775807 0 10 3600 32 -1 -1 32 7200\n")
	f.Fuzz(func(t *testing.T, input string) {
		jobs, err := ParseSWF(strings.NewReader(input), SWFConfig{})
		if err != nil {
			return
		}
		for _, j := range jobs {
			if err := j.Validate(); err != nil {
				t.Fatalf("parser accepted an invalid job: %v", err)
			}
		}
	})
}
