package billing

// Regression test for the wall-clock reads scvet's nondeterm analyzer
// surfaced in the traced evaluation path: per-family span attribution
// used to call time.Now/time.Since directly. The clock is now injected
// (Evaluator.WithNow), so the span accounting itself is testable
// deterministically — and provably reads the clock exactly twice per
// family per block, never inside the per-sample loop.

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestTracedSpanClockInjection pins the traced path's clock discipline
// with a tick-counting fake clock: 2 reads per family per block, each
// family span summing to exactly one fake tick per block, and a Result
// identical to the untraced path.
func TestTracedSpanClockInjection(t *testing.T) {
	n := 2*traceBlock + 9 // three blocks, the last partial
	load := series(traceLoad(n)...)
	blocks := (n + traceBlock - 1) / traceBlock

	mk := func() *Evaluator {
		ev, err := NewEvaluator(
			&famProbe{family: "tariff"},
			&famProbe{family: "demand"},
		)
		if err != nil {
			t.Fatal(err)
		}
		return ev
	}

	ticks := 0
	base := time.Date(2016, time.March, 1, 0, 0, 0, 0, time.UTC)
	ev := mk().WithNow(func() time.Time {
		ticks++
		return base.Add(time.Duration(ticks) * time.Second)
	})

	reg := obs.NewRegistry()
	ctx := obs.WithSpans(context.Background(), reg)
	traced, err := ev.EvaluatePeriodCtx(ctx, load, PeriodContext{})
	if err != nil {
		t.Fatal(err)
	}

	const families = 2
	if want := 2 * families * blocks; ticks != want {
		t.Errorf("clock reads = %d, want %d (2 per family per block; a read inside the sample loop would explode this)", ticks, want)
	}

	// Each family's span: one Observe per period, summing one 1 s tick
	// per block.
	for _, name := range []string{"billing.tariff", "billing.demand"} {
		found := false
		for _, s := range reg.Snapshot() {
			if s.Name != name {
				continue
			}
			found = true
			if s.Count != 1 {
				t.Errorf("%s: observations = %d, want 1", name, s.Count)
			}
			if s.Sum != float64(blocks) {
				t.Errorf("%s: span sum = %v s, want %v (one tick per block)", name, s.Sum, blocks)
			}
		}
		if !found {
			t.Errorf("missing span %q", name)
		}
	}

	// The injected clock is instrumentation only: the bill must be
	// bit-identical to the untraced path.
	plain, err := mk().EvaluatePeriod(load, PeriodContext{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, traced) {
		t.Errorf("fake-clock traced result differs from untraced:\n%+v\nvs\n%+v", traced, plain)
	}
}
