package hpc

// A synthetic Top500 power distribution, calibrated to the magnitudes
// §1 reports: "the electricity use varies significantly among the Top500
// list (in the range of 40kW to +10MW)", with the paper's focus on the
// Top50 whose power demands "can be expected to rise — while already
// having a significant impact on local grid operation".
//
// The model is a rank power law anchored at the published extremes, with
// deterministic per-rank jitter so the list is not implausibly smooth.

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/units"
)

// Top500Model parameterizes the synthetic list as a two-segment rank
// power law: a flat-ish head (the leadership machines) and a steeper
// tail, which is how the real list decays.
type Top500Model struct {
	// TopPower is system power at rank 1.
	TopPower units.Power
	// MidPower is system power at rank 50 (the paper's study floor).
	MidPower units.Power
	// TailPower is system power at rank 500.
	TailPower units.Power
	// JitterSigma is the relative log-normal jitter per rank.
	JitterSigma float64
	// Seed drives the deterministic jitter.
	Seed int64
}

// DefaultTop500 returns the model anchored to the paper's magnitudes:
// ≈15 MW at the top (the 2016 #1), ≈2 MW at rank 50, ≈40 kW at the tail.
func DefaultTop500() Top500Model {
	return Top500Model{
		TopPower: 15 * units.Megawatt, MidPower: 2 * units.Megawatt,
		TailPower: 40, JitterSigma: 0.25, Seed: 500,
	}
}

// Validate checks the model.
func (m Top500Model) Validate() error {
	if m.TopPower <= 0 || m.MidPower <= 0 || m.TailPower <= 0 {
		return errors.New("hpc: Top500 anchors must be positive")
	}
	if !(m.TailPower < m.MidPower && m.MidPower < m.TopPower) {
		return errors.New("hpc: anchors must decrease from top to tail")
	}
	if m.JitterSigma < 0 {
		return errors.New("hpc: jitter must be non-negative")
	}
	return nil
}

// Generate returns the 500 system powers in rank order (index 0 =
// rank 1). Jitter preserves the anchor magnitudes and the list is kept
// monotone so rank order stays meaningful.
func (m Top500Model) Generate() ([]units.Power, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	alphaHead := math.Log(float64(m.TopPower)/float64(m.MidPower)) / math.Log(50)
	alphaTail := math.Log(float64(m.MidPower)/float64(m.TailPower)) / math.Log(10) // ranks 50→500
	rng := rand.New(rand.NewSource(m.Seed))
	out := make([]units.Power, 500)
	for r := 1; r <= 500; r++ {
		var base float64
		if r <= 50 {
			base = float64(m.TopPower) * math.Pow(float64(r), -alphaHead)
		} else {
			base = float64(m.MidPower) * math.Pow(float64(r)/50, -alphaTail)
		}
		jitter := math.Exp(m.JitterSigma * rng.NormFloat64())
		out[r-1] = units.Power(base * jitter)
	}
	// Keep the list monotone in rank (descending power).
	for i := 1; i < len(out); i++ {
		if out[i] > out[i-1] {
			out[i] = out[i-1]
		}
	}
	return out, nil
}

// Top50Aggregate sums the first 50 entries — the population the paper
// targets.
func Top50Aggregate(list []units.Power) units.Power {
	var sum units.Power
	n := 50
	if len(list) < n {
		n = len(list)
	}
	for _, p := range list[:n] {
		sum += p
	}
	return sum
}
