package market

import (
	"math"
	"testing"
	"time"

	"repro/internal/timeseries"
	"repro/internal/units"
)

// weekSeries builds 7 days of hourly samples from a per-hour function.
func weekSeries(f func(day, hour int) float64) *timeseries.PowerSeries {
	samples := make([]units.Power, 7*24)
	for d := 0; d < 7; d++ {
		for h := 0; h < 24; h++ {
			samples[d*24+h] = units.Power(f(d, h))
		}
	}
	return timeseries.MustNewPower(t0, time.Hour, samples)
}

func TestCBLBaselineHonestSite(t *testing.T) {
	// Flat 10 MW history; event on day 6, 14:00–16:00, shed to 8 MW.
	event := Event{Start: t0.Add(6*24*time.Hour + 14*time.Hour), Duration: 2 * time.Hour, RequestedReduction: 2000}
	actual := weekSeries(func(d, h int) float64 {
		if d == 6 && (h == 14 || h == 15) {
			return 8000
		}
		return 10000
	})
	cbl, err := CBLBaseline(actual, []Event{event}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Inside the event the CBL equals the honest 10 MW history.
	idx, _ := cbl.IndexAt(event.Start)
	if cbl.At(idx) != 10000 {
		t.Errorf("CBL inside event = %v, want 10000", cbl.At(idx))
	}
	// Outside it keeps the actual.
	if cbl.At(0) != actual.At(0) {
		t.Error("CBL must keep actuals outside events")
	}
	// Settlement credits exactly the true 4 MWh curtailment.
	p := &Program{Kind: EmergencyDR, CommittedReduction: 2000, EnergyIncentive: 0.5}
	s, _, err := p.SettleWithCBL(actual, []Event{event}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.CurtailedEnergy.MWh()-4) > 1e-9 {
		t.Errorf("honest curtailment = %v, want 4 MWh", s.CurtailedEnergy)
	}
}

func TestCBLBaselineGamingInflatesCredit(t *testing.T) {
	// Gaming site: runs benchmarks at 14:00–16:00 on look-back days
	// (12 MW instead of 10), consumes a flat 10 MW on the event day
	// WITHOUT shedding anything.
	event := Event{Start: t0.Add(6*24*time.Hour + 14*time.Hour), Duration: 2 * time.Hour, RequestedReduction: 2000}
	actual := weekSeries(func(d, h int) float64 {
		if d < 6 && (h == 14 || h == 15) {
			return 12000 // inflate the look-back window
		}
		return 10000
	})
	p := &Program{Kind: EmergencyDR, CommittedReduction: 2000, EnergyIncentive: 0.5}
	s, cbl, err := p.SettleWithCBL(actual, []Event{event}, 5)
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := cbl.IndexAt(event.Start)
	if cbl.At(idx) != 12000 {
		t.Errorf("gamed CBL = %v, want inflated 12000", cbl.At(idx))
	}
	// Phantom curtailment: 2 MW × 2 h = 4 MWh credited for nothing.
	if math.Abs(s.CurtailedEnergy.MWh()-4) > 1e-9 {
		t.Errorf("phantom curtailment = %v, want 4 MWh", s.CurtailedEnergy)
	}
	if s.EnergyPayment != units.CurrencyUnits(2000) {
		t.Errorf("phantom payment = %v", s.EnergyPayment)
	}
}

func TestCBLSkipsEventDaysInLookback(t *testing.T) {
	// Two events on consecutive days at the same hour: the second
	// event's look-back must skip the first event's (reduced) day.
	ev1 := Event{Start: t0.Add(5*24*time.Hour + 14*time.Hour), Duration: time.Hour, RequestedReduction: 2000}
	ev2 := Event{Start: t0.Add(6*24*time.Hour + 14*time.Hour), Duration: time.Hour, RequestedReduction: 2000}
	actual := weekSeries(func(d, h int) float64 {
		if (d == 5 || d == 6) && h == 14 {
			return 8000 // shed during both events
		}
		return 10000
	})
	cbl, err := CBLBaseline(actual, []Event{ev1, ev2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := cbl.IndexAt(ev2.Start)
	if cbl.At(idx) != 10000 {
		t.Errorf("CBL for second event = %v, want 10000 (event day skipped)", cbl.At(idx))
	}
}

func TestCBLNoHistoryKeepsActual(t *testing.T) {
	// Event on day 0: no look-back exists → no curtailment credited.
	event := Event{Start: t0.Add(14 * time.Hour), Duration: time.Hour, RequestedReduction: 2000}
	actual := weekSeries(func(d, h int) float64 {
		if d == 0 && h == 14 {
			return 8000
		}
		return 10000
	})
	cbl, err := CBLBaseline(actual, []Event{event}, 5)
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := cbl.IndexAt(event.Start)
	if cbl.At(idx) != 8000 {
		t.Errorf("no-history CBL = %v, want the actual", cbl.At(idx))
	}
}

func TestCBLValidation(t *testing.T) {
	empty := timeseries.MustNewPower(t0, time.Hour, nil)
	if _, err := CBLBaseline(empty, nil, 5); err == nil {
		t.Error("empty series should fail")
	}
	s := timeseries.ConstantPower(t0, time.Hour, 24, 1)
	if _, err := CBLBaseline(s, nil, 0); err == nil {
		t.Error("zero look-back should fail")
	}
	odd := timeseries.ConstantPower(t0, 7*time.Hour, 24, 1)
	if _, err := CBLBaseline(odd, nil, 5); err == nil {
		t.Error("interval not dividing 24h should fail")
	}
}
