package resilience

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeClock is a hand-advanced clock for deterministic cooldown tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2016, time.March, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testBreaker(clock *fakeClock, threshold int, cooldown time.Duration, budget int) *Breaker {
	return NewBreaker(BreakerConfig{
		FailureThreshold: threshold,
		OpenTimeout:      cooldown,
		ProbeBudget:      budget,
		Now:              clock.Now,
	})
}

func fail(t *testing.T, b *Breaker) {
	t.Helper()
	done, err := b.Allow()
	if err != nil {
		t.Fatalf("Allow while %s: %v", b.State(), err)
	}
	done(false)
}

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	clock := newFakeClock()
	b := testBreaker(clock, 3, time.Minute, 1)

	for i := 0; i < 2; i++ {
		fail(t, b)
		if b.State() != Closed {
			t.Fatalf("tripped after %d failures, threshold is 3", i+1)
		}
	}
	// A success resets the consecutive count.
	done, _ := b.Allow()
	done(true)
	fail(t, b)
	fail(t, b)
	if b.State() != Closed {
		t.Fatal("success did not reset the consecutive-failure count")
	}
	fail(t, b)
	if b.State() != Open {
		t.Fatalf("state after 3 consecutive failures = %s, want open", b.State())
	}
	if _, err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker admitted a call: %v", err)
	}
}

func TestBreakerProbeAfterCooldown(t *testing.T) {
	clock := newFakeClock()
	b := testBreaker(clock, 1, time.Minute, 1)
	fail(t, b)

	clock.Advance(59 * time.Second)
	if _, err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatal("breaker probed before the cooldown elapsed")
	}
	clock.Advance(2 * time.Second)

	// First caller after the cooldown becomes the probe...
	done, err := b.Allow()
	if err != nil {
		t.Fatalf("probe refused after cooldown: %v", err)
	}
	if b.State() != HalfOpen {
		t.Fatalf("state during probe = %s, want half-open", b.State())
	}
	// ...and with the budget of 1 spent, everyone else is rejected.
	if _, err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatal("second caller got a probe slot beyond the budget")
	}

	done(true)
	if b.State() != Closed {
		t.Fatalf("state after successful probe = %s, want closed", b.State())
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	clock := newFakeClock()
	b := testBreaker(clock, 1, time.Minute, 1)
	fail(t, b)
	clock.Advance(2 * time.Minute)

	done, err := b.Allow()
	if err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	done(false)
	if b.State() != Open {
		t.Fatalf("state after failed probe = %s, want open", b.State())
	}
	// The cooldown restarts from the failed probe.
	if _, err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatal("breaker probed again without a fresh cooldown")
	}
	clock.Advance(2 * time.Minute)
	if _, err := b.Allow(); err != nil {
		t.Fatalf("probe refused after second cooldown: %v", err)
	}
}

func TestBreakerDo(t *testing.T) {
	clock := newFakeClock()
	b := testBreaker(clock, 1, time.Minute, 1)
	boom := errors.New("boom")

	if err := b.Do(context.Background(), func(context.Context) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Do = %v, want op error", err)
	}
	ran := false
	err := b.Do(context.Background(), func(context.Context) error { ran = true; return nil })
	if !errors.Is(err, ErrOpen) || ran {
		t.Fatalf("open breaker: Do = %v (op ran: %v), want ErrOpen without running op", err, ran)
	}
}

func TestBreakerObsInstruments(t *testing.T) {
	clock := newFakeClock()
	var gauge obs.Gauge
	var transitions, opens, rejections obs.Counter
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 1,
		OpenTimeout:      time.Minute,
		Now:              clock.Now,
		Obs: BreakerObs{
			StateGauge:  &gauge,
			Transitions: &transitions,
			Opens:       &opens,
			Rejections:  &rejections,
		},
	})
	fail(t, b)
	if gauge.Value() != int64(Open) || opens.Value() != 1 || transitions.Value() != 1 {
		t.Fatalf("after trip: gauge=%d opens=%d transitions=%d", gauge.Value(), opens.Value(), transitions.Value())
	}
	if _, err := b.Allow(); !errors.Is(err, ErrOpen) || rejections.Value() != 1 {
		t.Fatalf("rejection not counted: err=%v rejections=%d", err, rejections.Value())
	}
	clock.Advance(2 * time.Minute)
	done, _ := b.Allow()
	done(true)
	if gauge.Value() != int64(Closed) || transitions.Value() != 3 {
		t.Fatalf("after recovery: gauge=%d transitions=%d (want closed after open→half-open→closed)", gauge.Value(), transitions.Value())
	}
}

func TestBreakerDoneIsIdempotent(t *testing.T) {
	clock := newFakeClock()
	b := testBreaker(clock, 2, time.Minute, 1)
	done, _ := b.Allow()
	done(false)
	done(false) // second call must not double-count
	if st := b.Stats(); st.Failures != 1 {
		t.Fatalf("failures = %d after double done, want 1", st.Failures)
	}
	if b.State() != Closed {
		t.Fatal("double done tripped the breaker")
	}
}

// TestBreakerStateMachineProperties drives the breaker with a seeded
// random schedule against a reference model and checks the structural
// invariants the design promises:
//
//  1. the breaker is never half-open without an in-flight probe,
//  2. open → closed happens only via a successful probe,
//  3. in-flight probes never exceed the budget.
func TestBreakerStateMachineProperties(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		clock := newFakeClock()
		budget := 1 + rng.Intn(3)
		b := NewBreaker(BreakerConfig{
			FailureThreshold: 1 + rng.Intn(4),
			OpenTimeout:      time.Minute,
			ProbeBudget:      budget,
			Now:              clock.Now,
			OnTransition: func(from, to State) {
				if from == Open && to == Closed {
					t.Fatalf("seed %d: direct open → closed transition", seed)
				}
			},
		})

		var inflight []func(bool)
		for step := 0; step < 500; step++ {
			switch rng.Intn(4) {
			case 0: // admit a call
				st := b.State()
				done, err := b.Allow()
				if err != nil {
					if !errors.Is(err, ErrOpen) {
						t.Fatalf("seed %d step %d: Allow = %v", seed, step, err)
					}
					continue
				}
				if st == Open && b.State() != HalfOpen {
					t.Fatalf("seed %d step %d: admit from open left state %s", seed, step, b.State())
				}
				inflight = append(inflight, done)
			case 1, 2: // complete a pending call
				if len(inflight) == 0 {
					continue
				}
				i := rng.Intn(len(inflight))
				done := inflight[i]
				inflight = append(inflight[:i], inflight[i+1:]...)
				done(rng.Intn(2) == 0)
			case 3: // let time pass
				clock.Advance(time.Duration(rng.Intn(90)) * time.Second)
			}
			// White-box invariants after every step (in-package test).
			b.mu.Lock()
			state, probes := b.state, b.probes
			b.mu.Unlock()
			if probes < 0 || probes > budget {
				t.Fatalf("seed %d step %d: %d in-flight probes outside [0, %d]", seed, step, probes, budget)
			}
			if state == HalfOpen && probes == 0 {
				// Inv 1: the transition into half-open hands the probe
				// slot to the admitting caller, so an idle half-open
				// breaker cannot exist.
				t.Fatalf("seed %d step %d: half-open with no in-flight probe", seed, step)
			}
		}
	}
}

// TestBreakerConcurrentCallers hammers one breaker from many
// goroutines (run with -race): counters must reconcile and the breaker
// must end in a legal state.
func TestBreakerConcurrentCallers(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 5, OpenTimeout: time.Millisecond, ProbeBudget: 2})
	var wg sync.WaitGroup
	const workers, perWorker = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				done, err := b.Allow()
				if err != nil {
					continue
				}
				done(rng.Intn(3) != 0)
			}
		}(w)
	}
	wg.Wait()
	st := b.Stats()
	if st.Successes+st.Failures+st.Rejections != workers*perWorker {
		t.Fatalf("accounting leak: %d+%d+%d != %d",
			st.Successes, st.Failures, st.Rejections, workers*perWorker)
	}
	if s := b.State(); s != Closed && s != Open && s != HalfOpen {
		t.Fatalf("illegal final state %d", s)
	}
}
