package calendar

// Wall-clock boundary behavior under daylight saving time. Billing
// periods are calendar months in the contract's local time zone, so a
// month containing a DST transition is not 31×24 hours long — the
// spring-forward month is an hour short, the fall-back month an hour
// long. Europe/Zurich 2016: clocks jump 02:00→03:00 on March 27 and
// fall back 03:00→02:00 on October 30.

import (
	"testing"
	"time"
)

func zurich(t *testing.T) *time.Location {
	t.Helper()
	loc, err := time.LoadLocation("Europe/Zurich")
	if err != nil {
		t.Skipf("tzdata unavailable: %v", err)
	}
	return loc
}

func TestMonthOfSpringForward(t *testing.T) {
	loc := zurich(t)
	p := MonthOf(time.Date(2016, time.March, 15, 12, 0, 0, 0, loc))

	if !p.Start.Equal(time.Date(2016, time.March, 1, 0, 0, 0, 0, loc)) {
		t.Errorf("start = %v", p.Start)
	}
	if !p.End.Equal(time.Date(2016, time.April, 1, 0, 0, 0, 0, loc)) {
		t.Errorf("end = %v", p.End)
	}
	// March 2016 in Zurich loses the 02:00–03:00 hour on the 27th.
	if want := 31*24*time.Hour - time.Hour; p.Duration() != want {
		t.Errorf("March duration = %v, want %v", p.Duration(), want)
	}

	// The boundaries must sit at local midnight, not a UTC offset echo.
	for _, tt := range []time.Time{p.Start, p.End} {
		if h, m, s := tt.Clock(); h != 0 || m != 0 || s != 0 {
			t.Errorf("boundary %v not at local midnight", tt)
		}
	}
}

func TestMonthOfFallBack(t *testing.T) {
	loc := zurich(t)
	p := MonthOf(time.Date(2016, time.October, 30, 2, 30, 0, 0, loc))
	// October 2016 repeats the 02:00–03:00 hour on the 30th.
	if want := 31*24*time.Hour + time.Hour; p.Duration() != want {
		t.Errorf("October duration = %v, want %v", p.Duration(), want)
	}
}

func TestYearOfDSTNeutral(t *testing.T) {
	loc := zurich(t)
	p := YearOf(time.Date(2016, time.July, 1, 0, 0, 0, 0, loc))
	// The lost spring hour returns in autumn: a full year is exactly
	// 366 days in 2016 (leap year) despite two DST transitions.
	if want := 366 * 24 * time.Hour; p.Duration() != want {
		t.Errorf("2016 duration = %v, want %v", p.Duration(), want)
	}
	if !p.Start.Equal(time.Date(2016, time.January, 1, 0, 0, 0, 0, loc)) ||
		!p.End.Equal(time.Date(2017, time.January, 1, 0, 0, 0, 0, loc)) {
		t.Errorf("year bounds = %v .. %v", p.Start, p.End)
	}
}

func TestMonthsBetweenAcrossSpringForward(t *testing.T) {
	loc := zurich(t)
	from := time.Date(2016, time.February, 10, 0, 0, 0, 0, loc)
	to := time.Date(2016, time.May, 10, 0, 0, 0, 0, loc)
	months := MonthsBetween(from, to)
	if len(months) != 4 {
		t.Fatalf("got %d periods, want 4 (Feb..May)", len(months))
	}

	// Interior boundaries are local midnights on the 1st; the two DST
	// transitions in the range must not introduce gaps or overlaps.
	for i := 1; i < len(months); i++ {
		if !months[i].Start.Equal(months[i-1].End) {
			t.Errorf("gap between period %d and %d: %v vs %v",
				i-1, i, months[i-1].End, months[i].Start)
		}
	}
	mar := months[1]
	if !mar.Start.Equal(time.Date(2016, time.March, 1, 0, 0, 0, 0, loc)) {
		t.Errorf("March start = %v", mar.Start)
	}
	if want := 31*24*time.Hour - time.Hour; mar.Duration() != want {
		t.Errorf("clipped-range March duration = %v, want %v", mar.Duration(), want)
	}

	// Total coverage equals the requested range exactly.
	var total time.Duration
	for _, p := range months {
		total += p.Duration()
	}
	if total != to.Sub(from) {
		t.Errorf("periods cover %v, range is %v", total, to.Sub(from))
	}
}

func TestHourBandDuringRepeatedHour(t *testing.T) {
	loc := zurich(t)
	band := HourBand{From: 22, To: 6} // classic night band, wraps midnight

	// 2016-10-30 02:30 occurs twice in Zurich; both instants read as
	// hour 2 on the wall clock, so the night band covers both.
	first := time.Date(2016, time.October, 30, 0, 30, 0, 0, loc).Add(2 * time.Hour)  // 02:30 CEST
	second := time.Date(2016, time.October, 30, 0, 30, 0, 0, loc).Add(3 * time.Hour) // 02:30 CET
	if first.Equal(second) {
		t.Fatal("expected two distinct instants for the repeated wall time")
	}
	for _, tt := range []time.Time{first, second} {
		if tt.Hour() != 2 {
			t.Fatalf("instant %v has hour %d, want 2", tt, tt.Hour())
		}
		if !band.Contains(tt) {
			t.Errorf("night band must contain %v", tt)
		}
	}

	// The skipped hour on March 27 simply never occurs: 02:30 local
	// normalizes to 03:30 CEST — still night, but a band covering only
	// the skipped hour matches no instant of that day.
	skipped := time.Date(2016, time.March, 27, 2, 30, 0, 0, loc)
	if skipped.Hour() != 3 {
		t.Fatalf("skipped wall time normalized to hour %d, want 3", skipped.Hour())
	}
	if !band.Contains(skipped) {
		t.Error("normalized 03:30 is still inside the 22-06 night band")
	}
	gap := HourBand{From: 2, To: 3}
	for tt := time.Date(2016, time.March, 27, 0, 0, 0, 0, loc); tt.Day() == 27; tt = tt.Add(15 * time.Minute) {
		if gap.Contains(tt) {
			t.Errorf("band 02-03 matched %v on the spring-forward day", tt)
		}
	}
}
