package exp

// E22: which DR product should an SC sell? §3.1.4 asks the sites what
// services they offer; LANL participates in "generation and voltage
// control programs". The answer depends on how often the grid actually
// calls: emergency DR pays per dispatched kWh, capacity bidding pays for
// standing availability plus dispatch, regulation pays continuously for
// tracked capacity. This experiment sweeps dispatch frequency and
// compares annualized revenue for the same 2 MW of SC flexibility.

import (
	"fmt"
	"time"

	"repro/internal/market"
	"repro/internal/report"
	"repro/internal/timeseries"
	"repro/internal/units"
)

func init() {
	register("E22", runE22)
}

// E22Point is one dispatch-frequency level.
type E22Point struct {
	EventsPerYear int
	EmergencyNet  units.Money
	CapacityNet   units.Money
	RegulationNet units.Money
}

// RunE22 computes annual revenue for the three products at several
// dispatch frequencies. The site delivers 2 MW perfectly in every
// dispatched hour; regulation runs year-round at the E14-calibrated
// tracking score for a batch facility's ramp capability.
func RunE22(eventsPerYear []int) ([]E22Point, error) {
	const committed = 2 * units.Megawatt
	baseline := timeseries.ConstantPower(expStart, time.Hour, 24, 10*units.Megawatt)
	// One representative dispatched hour, reused per event.
	curtailed := baseline.Map(func(p units.Power) units.Power { return p })
	samples := curtailed.Samples()
	samples[12] -= committed
	actual, err := timeseries.NewPower(baseline.Start(), baseline.Interval(), samples)
	if err != nil {
		return nil, err
	}
	event := []market.Event{{Start: expStart.Add(12 * time.Hour), Duration: time.Hour, RequestedReduction: committed}}

	emergency := &market.Program{Kind: market.EmergencyDR, CommittedReduction: committed, EnergyIncentive: 0.60}
	capacity := &market.Program{
		Kind: market.CapacityBidding, CommittedReduction: committed,
		EnergyIncentive: 0.20, AvailabilityIncentive: 4, // per kW-month
	}
	perEventEmergency, err := emergency.Settle(baseline, actual, event)
	if err != nil {
		return nil, err
	}
	perEventCapacity, err := capacity.Settle(baseline, actual, event)
	if err != nil {
		return nil, err
	}
	// Capacity availability is paid monthly regardless of dispatch; the
	// Settle call includes one availability payment, so separate parts.
	capAvailabilityYear := capacity.AvailabilityIncentive.Cost(committed).MulFloat(12)
	capEnergyPerEvent := perEventCapacity.EnergyPayment

	// Regulation: 2 MW offered year-round at a realistic batch-site
	// tracking score (E14: MW/min-class agility tracks near-perfectly;
	// use the 500 kW/min score ≈ 0.92 to stay conservative).
	sig, err := market.GenerateRegulationSignal(expStart, time.Minute, 600, 41)
	if err != nil {
		return nil, err
	}
	track, err := market.TrackRegulation(sig, committed, 500, 0.9) // 0.9/kW-month at full score
	if err != nil {
		return nil, err
	}
	regulationYear := track.Payment.MulFloat(12)

	out := make([]E22Point, 0, len(eventsPerYear))
	for _, n := range eventsPerYear {
		out = append(out, E22Point{
			EventsPerYear: n,
			EmergencyNet:  perEventEmergency.Net.MulFloat(float64(n)),
			CapacityNet:   capAvailabilityYear + capEnergyPerEvent.MulFloat(float64(n)),
			RegulationNet: regulationYear,
		})
	}
	return out, nil
}

func runE22() (*Exhibit, error) {
	points, err := RunE22([]int{1, 5, 20, 60})
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable("Annual revenue for 2 MW of SC flexibility, by product and dispatch frequency",
		"Dispatches/yr", "Emergency DR", "Capacity bidding", "Regulation")
	for _, p := range points {
		tbl.AddRow(fmt.Sprintf("%d", p.EventsPerYear),
			p.EmergencyNet.String(), p.CapacityNet.String(), p.RegulationNet.String())
	}
	return &Exhibit{
		ID:         "E22",
		Title:      "Which DR product should an SC sell? (extension, §3.1.4/§4)",
		PaperClaim: "§3.1.4 asks what services sites offer their ESPs; §4: LANL participates in generation and voltage control programs and sees DR opportunities on the 15 min–1 h timescale.",
		Table:      tbl,
		Notes: []string{
			"Emergency DR only pays when the grid actually calls — rare events leave the flexibility stranded; capacity bidding's availability payment and regulation's continuous performance payment monetize the capability itself, which is why LANL's standing generation/voltage programs are the economically sensible shape for an SC.",
		},
	}, nil
}
