// Command scgrid explores the ESP side of the relationship: it builds a
// regional demand profile with wind and solar fleets, forms wholesale
// prices on the net load, detects grid-stress events and shows the DR
// dispatches an emergency program would issue.
//
// Usage:
//
//	scgrid -days 7
//	scgrid -days 30 -solar-mw 1500 -wind-mw 2500 -stress-quantile 0.95
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/grid"
	"repro/internal/market"
	"repro/internal/report"
	"repro/internal/units"
)

func main() {
	days := flag.Int("days", 7, "span in days")
	baseGW := flag.Float64("base-gw", 5, "regional average demand in GW")
	solarMW := flag.Float64("solar-mw", 800, "solar fleet nameplate in MW")
	windMW := flag.Float64("wind-mw", 1200, "wind fleet nameplate in MW")
	stressQuantile := flag.Float64("stress-quantile", 0.97, "net-load quantile that defines grid stress")
	seed := flag.Int64("seed", 1, "generation seed")
	flag.Parse()

	if err := run(*days, *baseGW, *solarMW, *windMW, *stressQuantile, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "scgrid:", err)
		os.Exit(1)
	}
}

func run(days int, baseGW, solarMW, windMW, stressQuantile float64, seed int64) error {
	start := time.Date(2016, time.July, 4, 0, 0, 0, 0, time.UTC)
	cfg := grid.DefaultRegion(start)
	cfg.Span = time.Duration(days) * 24 * time.Hour
	cfg.BaseLoad = units.Power(baseGW) * units.Gigawatt
	cfg.Seed = seed
	demandLoad, err := grid.SystemLoad(cfg)
	if err != nil {
		return err
	}
	solar, err := grid.Solar(demandLoad, grid.SolarConfig{
		Capacity: units.Power(solarMW) * units.Megawatt, CloudNoise: 0.3, Seed: seed + 1})
	if err != nil {
		return err
	}
	wind, err := grid.Wind(demandLoad, grid.WindConfig{
		Capacity: units.Power(windMW) * units.Megawatt,
		MeanCF:   0.35, Persistence: 0.97, Sigma: 0.03, Seed: seed + 2})
	if err != nil {
		return err
	}
	net, err := grid.NetLoad(demandLoad, solar, wind)
	if err != nil {
		return err
	}

	pm := market.DefaultPriceModel(cfg.BaseLoad + cfg.BaseLoad/2)
	rt, err := pm.PriceSeries(net)
	if err != nil {
		return err
	}
	da, err := pm.DayAheadPrice(net)
	if err != nil {
		return err
	}

	threshold, err := net.Percentile(stressQuantile)
	if err != nil {
		return err
	}
	stress, err := grid.DetectStress(net, threshold)
	if err != nil {
		return err
	}

	peakDemand, _, _ := demandLoad.Peak()
	peakNet, _, _ := net.Peak()
	fmt.Printf("Regional simulation: %d days, %.1f GW average demand\n\n", days, baseGW)
	fmt.Print(report.KV([][2]string{
		{"Demand peak", peakDemand.String()},
		{"Net-load peak", peakNet.String()},
		{"Solar energy", solar.Energy().String()},
		{"Wind energy", wind.Energy().String()},
		{"Mean RT price", rt.Mean().String()},
		{"Mean DA price", da.Mean().String()},
		{"Stress threshold", threshold.String()},
		{"Stress events", fmt.Sprintf("%d", len(stress))},
	}))

	if len(stress) > 0 {
		program := &market.Program{
			Kind:               market.EmergencyDR,
			CommittedReduction: 50 * units.Megawatt,
			EnergyIncentive:    0.60,
			MaxEventDuration:   2 * time.Hour,
			MaxEventsPerPeriod: 10,
		}
		events := program.DispatchFromStress(stress)
		tbl := report.NewTable("Emergency DR dispatches", "Start", "Duration", "Requested")
		for _, e := range events {
			tbl.AddRow(e.Start.Format("2006-01-02 15:04"), e.Duration.String(), e.RequestedReduction.String())
		}
		fmt.Println()
		fmt.Print(tbl.Render())
	}
	return nil
}
