package route

// Deterministic rendezvous-ring tests: stable ranking, and the key-
// movement bound that justifies the design — membership changes move
// only the keys the changed backend owned (≈ K/N), everything else
// stays put and keeps its hot engine cache.

import (
	"fmt"
	"testing"
)

func testBackends(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:9100", i+1)
	}
	return out
}

func testKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		// Routing keys are sha256 spec hashes in production; any
		// distinct strings exercise the same code path.
		out[i] = fmt.Sprintf("spec-hash-%04d", i)
	}
	return out
}

func TestRankIsDeterministicPermutation(t *testing.T) {
	backends := testBackends(5)
	for _, key := range testKeys(50) {
		a := Rank(backends, key)
		b := Rank(backends, key)
		if len(a) != len(backends) {
			t.Fatalf("Rank returned %d backends, want %d", len(a), len(backends))
		}
		seen := make(map[string]bool, len(a))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("Rank not deterministic for %q: %v vs %v", key, a, b)
			}
			seen[a[i]] = true
		}
		if len(seen) != len(backends) {
			t.Fatalf("Rank for %q is not a permutation: %v", key, a)
		}
		if Owner(backends, key) != a[0] {
			t.Fatalf("Owner disagrees with Rank[0] for %q", key)
		}
	}
}

func TestRankSpreadsKeys(t *testing.T) {
	backends := testBackends(4)
	keys := testKeys(2000)
	counts := make(map[string]int)
	for _, key := range keys {
		counts[Owner(backends, key)]++
	}
	// Perfectly uniform would be 500 each; demand every backend gets a
	// real share (the bound is loose — this guards against a degenerate
	// hash, not statistical wobble).
	for _, b := range backends {
		if counts[b] < len(keys)/8 {
			t.Errorf("backend %s owns only %d of %d keys: %v", b, counts[b], len(keys), counts)
		}
	}
}

// TestKeyMovementOnRemoval pins the consistency property: removing one
// backend moves exactly the keys it owned — every other key keeps its
// owner, so at most K/N keys move.
func TestKeyMovementOnRemoval(t *testing.T) {
	backends := testBackends(4)
	keys := testKeys(2000)
	removed := backends[1]
	remaining := append(append([]string(nil), backends[:1]...), backends[2:]...)

	moved := 0
	for _, key := range keys {
		before := Owner(backends, key)
		after := Owner(remaining, key)
		if before != removed && before != after {
			t.Fatalf("key %q moved from surviving backend %s to %s", key, before, after)
		}
		if before == removed {
			moved++
		}
	}
	// The removed backend owned ≈ K/N = 500 keys; allow generous slack.
	if lo, hi := len(keys)/8, len(keys)/2; moved < lo || moved > hi {
		t.Errorf("removal moved %d of %d keys, want roughly K/N=%d (bounds %d..%d)",
			moved, len(keys), len(keys)/len(backends), lo, hi)
	}
}

// TestKeyMovementOnAddition is the dual: a key only moves when the new
// backend is its new owner, so growth steals ≈ K/(N+1) keys and leaves
// the rest pinned.
func TestKeyMovementOnAddition(t *testing.T) {
	backends := testBackends(3)
	keys := testKeys(2000)
	added := "http://10.0.0.9:9100"
	grown := append(append([]string(nil), backends...), added)

	moved := 0
	for _, key := range keys {
		before := Owner(backends, key)
		after := Owner(grown, key)
		if before != after {
			if after != added {
				t.Fatalf("key %q moved to %s, not the added backend", key, after)
			}
			moved++
		}
	}
	if lo, hi := len(keys)/8, len(keys)/2; moved < lo || moved > hi {
		t.Errorf("addition moved %d of %d keys, want roughly K/(N+1)=%d (bounds %d..%d)",
			moved, len(keys), len(keys)/len(grown), lo, hi)
	}
}

// TestFailoverOrderStable: for any key, dropping its owner promotes
// the key's second choice — the failover order is the rank order.
func TestFailoverOrderStable(t *testing.T) {
	backends := testBackends(4)
	for _, key := range testKeys(200) {
		rank := Rank(backends, key)
		without := make([]string, 0, len(backends)-1)
		for _, b := range backends {
			if b != rank[0] {
				without = append(without, b)
			}
		}
		if got := Owner(without, key); got != rank[1] {
			t.Fatalf("key %q: owner after losing %s is %s, want second choice %s",
				key, rank[0], got, rank[1])
		}
	}
}
