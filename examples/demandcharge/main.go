// Demand-charge study: reproduce, on synthetic facility load, the shape
// the paper cites from Xu & Li — the peakier the load (higher
// peak-to-average ratio), the larger the share of the bill the demand
// charge takes — and show what peak shaving buys back.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/contract"
	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/hpc"
	"repro/internal/report"
	"repro/internal/tariff"
	"repro/internal/units"
)

func main() {
	c := &repro.Contract{
		Name:          "industrial-style",
		Tariffs:       []repro.Tariff{tariff.MustNewFixed(0.06)},
		DemandCharges: []*repro.DemandCharge{demand.SimpleCharge(13)},
	}

	// Part 1: demand share vs peak/average ratio.
	tbl := report.NewTable("Demand-charge share vs peak/average ratio (10 MW base, one month)",
		"Peak/Avg", "Demand share", "Monthly total")
	for _, ratio := range []float64{1.0, 1.5, 2.0, 3.0, 4.0} {
		load := mustLoad(ratio)
		bill, err := repro.ComputeBill(c, load, contract.BillingInput{})
		if err != nil {
			log.Fatal(err)
		}
		tbl.AddRow(fmt.Sprintf("%.1f", ratio),
			fmt.Sprintf("%.1f%%", bill.DemandShare()*100), bill.Total.String())
	}
	fmt.Print(tbl.Render())
	fmt.Println()

	// Part 2: peak shaving on a peaky month.
	load := mustLoad(2.5)
	results, err := core.PeakShaveSweep(c, load, []float64{0, 0.1, 0.2, 0.3, 0.4}, contract.BillingInput{})
	if err != nil {
		log.Fatal(err)
	}
	shaveTbl := report.NewTable("Peak shaving on a 2.5× peak/avg month",
		"Shave", "Bill", "Savings", "Compute energy lost")
	for _, r := range results {
		shaveTbl.AddRow(
			fmt.Sprintf("%.0f%%", r.Fraction*100),
			r.ShavedTotal.String(), r.Savings.String(), r.EnergyLost.String())
	}
	fmt.Print(shaveTbl.Render())
	fmt.Println("\nThe first shaving percents are nearly free (spikes are rare and short);")
	fmt.Println("this is why the paper recommends SCs 'focus on energy efficiency in order")
	fmt.Println("to reduce job costs with respect to demand charges and powerbands'.")
}

func mustLoad(ratio float64) *repro.PowerSeries {
	load, err := hpc.SyntheticFacilityLoad(hpc.LoadProfileConfig{
		Start:         time.Date(2016, time.March, 1, 0, 0, 0, 0, time.UTC),
		Span:          30 * 24 * time.Hour,
		Interval:      15 * time.Minute,
		Base:          10 * units.Megawatt,
		PeakToAverage: ratio,
		NoiseSigma:    0.02,
		Seed:          7,
	})
	if err != nil {
		log.Fatal(err)
	}
	return load
}
