package feed

// Price-feed parsing. A bill computed from garbage prices is worse
// than no bill, so both wire formats are strict: NaN/Inf prices and
// out-of-order or off-grid timestamps are rejected with errors that
// name the offending line or element, in the same style as the
// timeseries load-CSV errors. Negative prices are accepted — real-time
// markets do clear negative — but non-finite ones never are.

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/timeseries"
	"repro/internal/units"
)

// ParseCSV reads a "timestamp,price_per_kwh" price feed (header row
// optional). Rows must be in strictly increasing time order on a fixed
// grid set by the first two rows; prices must be finite numbers.
// Errors name the offending line and field.
func ParseCSV(r io.Reader) (*timeseries.PriceSeries, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	type row struct {
		line      int
		ts, price string
	}
	var rows []row
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			// csv.ParseError already carries the line number.
			return nil, fmt.Errorf("price feed: bad CSV: %w", err)
		}
		line, _ := cr.FieldPos(0)
		rows = append(rows, row{line: line, ts: rec[0], price: rec[1]})
	}
	if len(rows) > 0 {
		if _, err := time.Parse(time.RFC3339, rows[0].ts); err != nil {
			rows = rows[1:] // header row
		}
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("price feed: CSV needs at least two data rows to fix the sample interval")
	}
	parse := func(rw row) (time.Time, units.EnergyPrice, error) {
		ts, err := time.Parse(time.RFC3339, rw.ts)
		if err != nil {
			return time.Time{}, 0, fmt.Errorf("price feed: line %d: timestamp field %q is not RFC 3339 (e.g. 2016-03-01T00:00:00Z)",
				rw.line, rw.ts)
		}
		v, err := strconv.ParseFloat(rw.price, 64)
		if err != nil {
			return time.Time{}, 0, fmt.Errorf("price feed: line %d: price field %q is not a number", rw.line, rw.price)
		}
		if !isFinite(v) {
			return time.Time{}, 0, fmt.Errorf("price feed: line %d: price %q is not finite (a bill computed from NaN/Inf prices is garbage)",
				rw.line, rw.price)
		}
		return ts, units.EnergyPrice(v), nil
	}
	start, first, err := parse(rows[0])
	if err != nil {
		return nil, err
	}
	second, _, err := parse(rows[1])
	if err != nil {
		return nil, err
	}
	interval := second.Sub(start)
	if interval <= 0 {
		return nil, fmt.Errorf("price feed: line %d: timestamp %s is not after line %d's %s (rows must be in strictly increasing order)",
			rows[1].line, second.Format(time.RFC3339), rows[0].line, start.Format(time.RFC3339))
	}
	samples := make([]units.EnergyPrice, 0, len(rows))
	samples = append(samples, first)
	for i := 1; i < len(rows); i++ {
		ts, v, err := parse(rows[i])
		if err != nil {
			return nil, err
		}
		want := start.Add(time.Duration(i) * interval)
		switch {
		case !ts.After(start.Add(time.Duration(i-1) * interval)):
			return nil, fmt.Errorf("price feed: line %d: timestamp %s is not after the previous row (rows must be in strictly increasing order)",
				rows[i].line, ts.Format(time.RFC3339))
		case !ts.Equal(want):
			return nil, fmt.Errorf("price feed: line %d: timestamp %s breaks the %s grid (want %s)",
				rows[i].line, ts.Format(time.RFC3339), interval, want.Format(time.RFC3339))
		}
		samples = append(samples, v)
	}
	return timeseries.NewPrice(start, interval, samples)
}

// feedJSON is the JSON wire shape: an explicit start and interval plus
// the dense price array.
type feedJSON struct {
	Start           time.Time `json:"start"`
	IntervalSeconds int       `json:"interval_seconds"`
	Prices          []float64 `json:"prices"`
}

// ParseJSON reads the JSON price-feed shape
//
//	{"start": "2016-03-01T00:00:00Z", "interval_seconds": 3600,
//	 "prices": [0.031, 0.042, ...]}
//
// The grid is monotonic by construction; the interval must be
// positive and every price finite (encoding/json already refuses the
// bare NaN/Infinity tokens, so the finiteness check guards extension
// decoders and hand-built values). Errors name the offending element.
func ParseJSON(r io.Reader) (*timeseries.PriceSeries, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var in feedJSON
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("price feed: bad JSON: %w", err)
	}
	if in.Start.IsZero() {
		return nil, fmt.Errorf("price feed: JSON is missing \"start\"")
	}
	if in.IntervalSeconds <= 0 {
		return nil, fmt.Errorf("price feed: JSON \"interval_seconds\" %d must be positive", in.IntervalSeconds)
	}
	if len(in.Prices) == 0 {
		return nil, fmt.Errorf("price feed: JSON \"prices\" is empty")
	}
	samples := make([]units.EnergyPrice, len(in.Prices))
	for i, v := range in.Prices {
		if !isFinite(v) {
			return nil, fmt.Errorf("price feed: prices[%d] is not finite", i)
		}
		samples[i] = units.EnergyPrice(v)
	}
	return timeseries.NewPrice(in.Start, time.Duration(in.IntervalSeconds)*time.Second, samples)
}
