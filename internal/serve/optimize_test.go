package serve

// End-to-end coverage for POST /v1/optimize: byte-stable responses on a
// fixed seed (pinned by a committed golden body), the shared admission
// gate (429 when saturated, 504 when queued past the deadline), and the
// /v1/bill-identical degraded-feed semantics.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/optimize"
)

// optimizeRequest is the canonical test request: the quickstart
// contract (demand charge + powerband) against the quickstart month
// under 10% deferrable / 20% partial flexibility, with a short seeded
// search so the suite stays fast.
func optimizeRequest(t *testing.T) OptimizeRequest {
	return OptimizeRequest{
		Contract:    specJSON(t, quickstartSpec()),
		Load:        LoadSpec{Profile: "quickstart-month"},
		Flexibility: optimize.Flexibility{DeferrableFraction: 0.10, PartialFraction: 0.20},
		Search:      &SearchSpec{Seed: 7, Candidates: 250},
	}
}

// TestOptimizeEndpointByteStable: the same seeded request must produce
// byte-identical bodies across calls and across processes — the second
// is pinned by the committed golden file (regenerate with
// UPDATE_OPTIMIZE_GOLDEN=1 go test ./internal/serve -run ByteStable).
func TestOptimizeEndpointByteStable(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := optimizeRequest(t)
	resp, first := postBill(t, ts, "/v1/optimize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize failed: %d: %s", resp.StatusCode, first)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	_, second := postBill(t, ts, "/v1/optimize", req)
	if !bytes.Equal(first, second) {
		t.Fatalf("same seed produced different response bytes:\n%s\n---\n%s", first, second)
	}

	var res optimize.Result
	if err := json.Unmarshal(first, &res); err != nil {
		t.Fatalf("response is not an optimize.Result: %v", err)
	}
	if res.Savings <= 0 {
		t.Errorf("quickstart contract has a demand charge; expected savings, got %+v", res.Savings)
	}
	if res.Seed != 7 || res.Stats.Candidates != 250 {
		t.Errorf("search parameters not echoed: seed %d candidates %d", res.Seed, res.Stats.Candidates)
	}

	golden := filepath.Join("testdata", "optimize_golden.json")
	if os.Getenv("UPDATE_OPTIMIZE_GOLDEN") != "" {
		if err := os.WriteFile(golden, first, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with UPDATE_OPTIMIZE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(first, want) {
		t.Errorf("response drifted from committed golden %s (UPDATE_OPTIMIZE_GOLDEN=1 to regenerate)", golden)
	}
}

// TestOptimizeSheds429: /v1/optimize sits behind the same admission
// gate as /v1/bill — with the only slot parked and no queue, it sheds.
func TestOptimizeSheds429(t *testing.T) {
	s := NewServer(Config{MaxConcurrent: 1, QueueDepth: -1})
	release := make(chan struct{})
	s.billHook = func(ctx context.Context) {
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bill := BillRequest{
		Contract: specJSON(t, quickstartSpec()),
		Load:     LoadSpec{Profile: "quickstart-month"},
	}
	go postBillAsync(ts, "/v1/bill", bill)
	waitUntil(t, "slot held", func() bool { return s.limiter.active() == 1 })

	resp, body := postBill(t, ts, "/v1/optimize", optimizeRequest(t))
	close(release)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server must shed optimize with 429, got %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 must carry Retry-After")
	}
}

// TestOptimizeQueued504: an optimize request that waits in the
// admission queue past its deadline gets 504, like /v1/bill.
func TestOptimizeQueued504(t *testing.T) {
	s := NewServer(Config{MaxConcurrent: 1, QueueDepth: 1, RequestTimeout: 80 * time.Millisecond})
	release := make(chan struct{})
	s.billHook = func(context.Context) { <-release }
	ts := httptest.NewServer(s.Handler())
	defer func() {
		close(release)
		ts.Close()
	}()

	bill := BillRequest{
		Contract: specJSON(t, quickstartSpec()),
		Load:     LoadSpec{Profile: "quickstart-month"},
	}
	go postBillAsync(ts, "/v1/bill", bill)
	waitUntil(t, "slot held", func() bool { return s.limiter.active() == 1 })

	resp, body := postBill(t, ts, "/v1/optimize", optimizeRequest(t))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("optimize queued past deadline must 504, got %d: %s", resp.StatusCode, body)
	}
}

// TestOptimizeDegradedFeedMarked: with the market feed dead past its
// staleness budget, /v1/optimize bills on the contract's fallback rate
// and marks the response degraded — header and body — exactly as
// /v1/bill does.
func TestOptimizeDegradedFeedMarked(t *testing.T) {
	u := newPriceUpstream(t)
	u.down.Store(true) // the feed never succeeds
	_, ts, _ := newFeedServer(t, u, time.Minute)

	req := OptimizeRequest{
		Contract:    specJSON(t, dynamicSpec()),
		Load:        LoadSpec{Profile: "quickstart-month"},
		Flexibility: optimize.Flexibility{DeferrableFraction: 0.10, PartialFraction: 0.20},
		Search:      &SearchSpec{Seed: 3, Candidates: 120},
	}
	resp, body := postBill(t, ts, "/v1/optimize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded feed must not fail optimize: %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-SCBill-Feed"); got != "degraded" {
		t.Errorf("X-SCBill-Feed = %q, want degraded", got)
	}
	if resp.Header.Get("X-SCBill-Degraded") == "" {
		t.Error("degraded response must carry X-SCBill-Degraded reason")
	}
	var marked struct {
		Degraded       bool    `json:"degraded"`
		DegradedReason string  `json:"degraded_reason"`
		Savings        float64 `json:"savings"`
		BaselineTotal  float64 `json:"baseline_total"`
	}
	if err := json.Unmarshal(body, &marked); err != nil {
		t.Fatal(err)
	}
	if !marked.Degraded || marked.DegradedReason == "" {
		t.Errorf(`degraded body marking missing: %+v`, marked)
	}
	if marked.BaselineTotal <= 0 {
		t.Errorf("degraded optimize still bills on the fallback rate, got baseline %v", marked.BaselineTotal)
	}
}

// TestOptimizeRejectsBadRequests covers the endpoint's 400 surface.
func TestOptimizeRejectsBadRequests(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		req  OptimizeRequest
	}{
		{"missing contract", OptimizeRequest{
			Load:        LoadSpec{Profile: "quickstart-month"},
			Flexibility: optimize.Flexibility{DeferrableFraction: 0.1},
		}},
		{"bad flexibility", OptimizeRequest{
			Contract:    specJSON(t, quickstartSpec()),
			Load:        LoadSpec{Profile: "quickstart-month"},
			Flexibility: optimize.Flexibility{DeferrableFraction: 1.5},
		}},
		{"candidates over cap", OptimizeRequest{
			Contract:    specJSON(t, quickstartSpec()),
			Load:        LoadSpec{Profile: "quickstart-month"},
			Flexibility: optimize.Flexibility{DeferrableFraction: 0.1},
			Search:      &SearchSpec{Candidates: maxOptimizeCandidates + 1},
		}},
		{"no load", OptimizeRequest{
			Contract:    specJSON(t, quickstartSpec()),
			Flexibility: optimize.Flexibility{DeferrableFraction: 0.1},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postBill(t, ts, "/v1/optimize", tc.req)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("want 400, got %d: %s", resp.StatusCode, body)
			}
		})
	}
}
