package feed

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/timeseries"
	"repro/internal/units"
)

func TestValidate(t *testing.T) {
	if err := Validate(nil); err == nil {
		t.Error("nil series validated")
	}
	good := timeseries.ConstantPrice(t0, time.Hour, 3, 0.05)
	if err := Validate(good); err != nil {
		t.Errorf("good series rejected: %v", err)
	}
	poisoned, err := timeseries.NewPrice(t0, time.Hour,
		[]units.EnergyPrice{0.03, units.EnergyPrice(math.NaN()), 0.04})
	if err != nil {
		t.Fatal(err)
	}
	verr := Validate(poisoned)
	if verr == nil || !strings.Contains(verr.Error(), "sample 1") {
		t.Errorf("NaN sample: %v", verr)
	}
}

func TestStaticProvider(t *testing.T) {
	s := daySeries()
	p := NewStatic(s)
	got, err := p.Fetch(context.Background(), t0, t0.Add(time.Hour))
	if err != nil || got != s {
		t.Fatalf("Fetch = %v, %v", got, err)
	}
	if _, err := (&Static{}).Fetch(context.Background(), t0, t0); err == nil {
		t.Error("empty static feed fetched without error")
	}
}

func TestFlatProvider(t *testing.T) {
	p := &Flat{Rate: 0.045}
	s, err := p.Fetch(context.Background(), t0, t0.Add(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if !covers(s, t0, t0.Add(24*time.Hour)) {
		t.Fatalf("flat series [%s, %s] does not cover the requested day", s.Start(), s.End())
	}
	if v, ok := s.PriceAt(t0.Add(13 * time.Hour)); !ok || float64(v) != 0.045 {
		t.Fatalf("PriceAt = %v, %v", v, ok)
	}
	if _, err := p.Fetch(context.Background(), t0, t0); err == nil {
		t.Error("empty window accepted")
	}
}

func TestFileProvider(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "prices.csv")
	if err := os.WriteFile(csvPath, []byte(goodCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	p := &File{Path: csvPath}
	s, err := p.Fetch(context.Background(), t0, t0.Add(time.Hour))
	if err != nil || s.Len() != 3 {
		t.Fatalf("CSV file fetch: %v, %v", s, err)
	}

	jsonPath := filepath.Join(dir, "prices.json")
	body := `{"start":"2016-03-01T00:00:00Z","interval_seconds":3600,"prices":[0.03,0.04]}`
	if err := os.WriteFile(jsonPath, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err = (&File{Path: jsonPath}).Fetch(context.Background(), t0, t0)
	if err != nil || s.Len() != 2 {
		t.Fatalf("JSON file fetch: %v, %v", s, err)
	}

	// A missing file and a malformed file both fail with the path in
	// the error.
	if _, err := (&File{Path: filepath.Join(dir, "nope.csv")}).Fetch(context.Background(), t0, t0); err == nil {
		t.Error("missing file fetched")
	}
	badPath := filepath.Join(dir, "bad.csv")
	os.WriteFile(badPath, []byte("timestamp,price_per_kwh\n2016-03-01T00:00:00Z,NaN\n2016-03-01T01:00:00Z,0.03\n"), 0o644)
	_, err = (&File{Path: badPath}).Fetch(context.Background(), t0, t0)
	if err == nil || !strings.Contains(err.Error(), badPath) {
		t.Errorf("malformed file error %v should name %s", err, badPath)
	}
}

func TestHTTPProvider(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/csv":
			w.Header().Set("Content-Type", "text/csv")
			w.Write([]byte(goodCSV))
		case "/json":
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"start":"2016-03-01T00:00:00Z","interval_seconds":3600,"prices":[0.03,0.04]}`))
		case "/flaky":
			http.Error(w, "try later", http.StatusServiceUnavailable)
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	s, err := (&HTTP{URL: srv.URL + "/csv"}).Fetch(context.Background(), t0, t0)
	if err != nil || s.Len() != 3 {
		t.Fatalf("CSV fetch: %v, %v", s, err)
	}
	s, err = (&HTTP{URL: srv.URL + "/json"}).Fetch(context.Background(), t0, t0)
	if err != nil || s.Len() != 2 {
		t.Fatalf("JSON fetch: %v, %v", s, err)
	}
	_, err = (&HTTP{URL: srv.URL + "/flaky"}).Fetch(context.Background(), t0, t0)
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("503 fetch error: %v", err)
	}

	// Context cancellation aborts an in-flight fetch.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (&HTTP{URL: srv.URL + "/csv"}).Fetch(ctx, t0, t0); err == nil {
		t.Error("cancelled fetch succeeded")
	}
}
