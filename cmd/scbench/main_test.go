package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkBillingYear-8         	     100	  11892503 ns/op	 4700213 B/op	    1205 allocs/op
BenchmarkBillYearLegacy-8      	     174	   6850558 ns/op	  156240 B/op	     642 allocs/op
BenchmarkBillYearEngine-8      	    1650	    731867 ns/op	   13921 B/op	      91 allocs/op
BenchmarkBillYearEngineSequential-8	 1500	    801123 ns/op	   14002 B/op	      92 allocs/op
PASS
ok  	repro	12.3s
`

func TestParseBench(t *testing.T) {
	benches, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %+v", len(benches), benches)
	}
	got := benches[2]
	if got.Name != "BenchmarkBillYearEngine" {
		t.Errorf("name %q: the -N proc suffix must be stripped", got.Name)
	}
	if got.NsPerOp != 731867 || got.BytesPerOp != 13921 || got.AllocsPerOp != 91 {
		t.Errorf("values: %+v", got)
	}
}

func TestStripProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkBillYearEngine-8":          "BenchmarkBillYearEngine",
		"BenchmarkBillYearEngine":            "BenchmarkBillYearEngine",
		"BenchmarkBatchVsSequential/batch-4": "BenchmarkBatchVsSequential/batch",
		"BenchmarkE1_Something-16":           "BenchmarkE1_Something",
		"BenchmarkOdd-name":                  "BenchmarkOdd-name",
	}
	for in, want := range cases {
		if got := stripProcSuffix(in); got != want {
			t.Errorf("stripProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func report(ns float64) Report {
	return Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkBillYearEngine", NsPerOp: ns},
		{Name: "BenchmarkBillYearLegacy", NsPerOp: 100 * ns}, // outside the gate
	}}
}

func allocReport(ns, allocs float64) Report {
	return Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkBillYearEngine", NsPerOp: ns, AllocsPerOp: allocs},
	}}
}

func TestCheckRegression(t *testing.T) {
	base := report(700000)

	if err := checkRegression(base, report(700000), "BillYearEngine", 0.15, 0.10); err != nil {
		t.Errorf("unchanged timing must pass: %v", err)
	}
	if err := checkRegression(base, report(790000), "BillYearEngine", 0.15, 0.10); err != nil {
		t.Errorf("+13%% must pass under a 15%% threshold: %v", err)
	}
	err := checkRegression(base, report(900000), "BillYearEngine", 0.15, 0.10)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkBillYearEngine") {
		t.Errorf("+29%% must fail the gate, got: %v", err)
	}
	// The legacy benchmark is outside the gate: regressing it alone is fine.
	slowLegacy := report(700000)
	slowLegacy.Benchmarks[1].NsPerOp *= 10
	if err := checkRegression(base, slowLegacy, "BillYearEngine$", 0.15, 0.10); err != nil {
		t.Errorf("non-gated benchmark must not trip the gate: %v", err)
	}

	missing := Report{Benchmarks: []Benchmark{{Name: "BenchmarkSomethingElse", NsPerOp: 1}}}
	if err := checkRegression(base, missing, "BillYearEngine", 0.15, 0.10); err == nil {
		t.Error("gate benchmark missing from the run must fail")
	}
	if err := checkRegression(base, report(700000), "NoSuchBenchmark", 0.15, 0.10); err == nil {
		t.Error("a gate matching nothing in the baseline must fail loudly")
	}
}

func TestCheckRegressionAllocGate(t *testing.T) {
	base := allocReport(700000, 90)

	if err := checkRegression(base, allocReport(700000, 90), "BillYearEngine", 0.15, 0.10); err != nil {
		t.Errorf("unchanged allocs must pass: %v", err)
	}
	if err := checkRegression(base, allocReport(700000, 95), "BillYearEngine", 0.15, 0.10); err != nil {
		t.Errorf("+5.5%% allocs must pass under a 10%% threshold: %v", err)
	}
	err := checkRegression(base, allocReport(700000, 120), "BillYearEngine", 0.15, 0.10)
	if err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Errorf("+33%% allocs must fail the alloc gate even at unchanged ns/op, got: %v", err)
	}
	// Both dimensions can fail at once; the report names each.
	err = checkRegression(base, allocReport(2000000, 200), "BillYearEngine", 0.15, 0.10)
	if err == nil || !strings.Contains(err.Error(), "ns/op") || !strings.Contains(err.Error(), "allocs/op") {
		t.Errorf("double regression must report both dimensions, got: %v", err)
	}
	// A baseline without alloc counts (no -benchmem) skips the alloc gate.
	if err := checkRegression(report(700000), allocReport(700000, 1e6), "BillYearEngine", 0.15, 0.10); err != nil {
		t.Errorf("baseline without allocs/op must skip the alloc gate: %v", err)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH_billing.json")

	// First pass: parse and write the baseline.
	if err := run(strings.NewReader(sampleOutput), "abc1234", baseline, "", "BillYearEngine", 0.15, 0.10); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"commit": "abc1234"`, `"BenchmarkBillYearEngine"`, `"ns_per_op": 731867`, `"allocs_per_op": 91`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("baseline missing %s:\n%s", want, data)
		}
	}

	// Second pass: same numbers gate clean against the baseline.
	current := filepath.Join(dir, "BENCH_current.json")
	if err := run(strings.NewReader(sampleOutput), "def5678", current, baseline, "BillYearEngine", 0.15, 0.10); err != nil {
		t.Fatalf("identical rerun must pass the gate: %v", err)
	}

	// A 2x-slower rerun trips it.
	slow := strings.ReplaceAll(sampleOutput, "731867 ns/op", "1500000 ns/op")
	err = run(strings.NewReader(slow), "bad", current, baseline, "BillYearEngine", 0.15, 0.10)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("2x regression must fail, got: %v", err)
	}

	if err := run(strings.NewReader("no benchmarks here\n"), "", current, "", "x", 0.15, 0.10); err == nil {
		t.Error("empty input must fail")
	}
}
