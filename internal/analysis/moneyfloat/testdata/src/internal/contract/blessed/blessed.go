// Package blessed sits under internal/contract, the one place tariff
// specs may turn literal float rates into Money: the literal rule is
// waived here (equality on float money stays banned everywhere).
package blessed

import "internal/units"

var demandRate = units.MoneyFromFloat(18.50) // blessed: inside internal/contract

func defaultFee() units.Money { return units.MoneyFromFloat(4.2) }
