// Package resilience is a fixture stub of the repo's retry/breaker
// surface: just enough for the lockheld fixtures to type-check.
package resilience

import "context"

type Retry struct{}

func (r *Retry) Do(ctx context.Context, op func(context.Context) error) error { return op(ctx) }

type Breaker struct{}

func (b *Breaker) Do(ctx context.Context, op func(context.Context) error) error { return op(ctx) }
