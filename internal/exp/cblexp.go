package exp

// E21: settlement-baseline realism. Real DR programs estimate the
// counterfactual with a customer-baseline-load (CBL) rule; the estimate
// is accurate for honest flat operators and inflatable by look-back
// gaming. The paper's §2 observes that DR research rarely engages with
// "realistic contract issues" — the CBL is exactly such an issue.

import (
	"time"

	"repro/internal/market"
	"repro/internal/report"
	"repro/internal/timeseries"
	"repro/internal/units"
)

func init() {
	register("E21", runE21)
}

// E21Row is one site behaviour settled both ways.
type E21Row struct {
	Behaviour string
	// TrueCurtailment is measured against the real counterfactual.
	TrueCurtailment units.Energy
	// CBLCurtailment is what the program credits.
	CBLCurtailment units.Energy
	// Payment is the resulting energy payment under the CBL.
	Payment units.Money
}

// RunE21 settles three site behaviours against the same program: an
// honest curtailer, a non-participant, and a look-back gamer.
func RunE21() ([]E21Row, error) {
	event := market.Event{
		Start:              expStart.Add(6*24*time.Hour + 14*time.Hour),
		Duration:           2 * time.Hour,
		RequestedReduction: 2 * units.Megawatt,
	}
	program := &market.Program{
		Kind: market.EmergencyDR, CommittedReduction: 2 * units.Megawatt,
		EnergyIncentive: 0.5,
	}
	week := func(f func(day, hour int) float64) *timeseries.PowerSeries {
		samples := make([]units.Power, 7*24)
		for d := 0; d < 7; d++ {
			for h := 0; h < 24; h++ {
				samples[d*24+h] = units.Power(f(d, h))
			}
		}
		s, err := timeseries.NewPower(expStart, time.Hour, samples)
		if err != nil {
			panic(err)
		}
		return s
	}
	inEventHour := func(d, h int) bool { return d == 6 && (h == 14 || h == 15) }

	behaviours := []struct {
		name   string
		actual *timeseries.PowerSeries
		truth  units.Energy // against the real 10 MW counterfactual
	}{
		{
			name: "honest curtailer (10→8 MW)",
			actual: week(func(d, h int) float64 {
				if inEventHour(d, h) {
					return 8000
				}
				return 10000
			}),
			truth: 4 * units.MegawattHour,
		},
		{
			name: "non-participant (flat 10 MW)",
			actual: week(func(d, h int) float64 {
				return 10000
			}),
			truth: 0,
		},
		{
			name: "look-back gamer (inflates 14:00–16:00 history, sheds nothing)",
			actual: week(func(d, h int) float64 {
				if d < 6 && (h == 14 || h == 15) {
					return 12000
				}
				return 10000
			}),
			truth: 0,
		},
	}
	var rows []E21Row
	for _, b := range behaviours {
		s, _, err := program.SettleWithCBL(b.actual, []market.Event{event}, 5)
		if err != nil {
			return nil, err
		}
		rows = append(rows, E21Row{
			Behaviour:       b.name,
			TrueCurtailment: b.truth,
			CBLCurtailment:  s.CurtailedEnergy,
			Payment:         s.EnergyPayment,
		})
	}
	return rows, nil
}

func runE21() (*Exhibit, error) {
	rows, err := RunE21()
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable("CBL settlement vs ground truth (2 MW × 2 h event, 5-day look-back)",
		"Site behaviour", "True curtailment", "CBL-credited", "Payment")
	for _, r := range rows {
		tbl.AddRow(r.Behaviour, r.TrueCurtailment.String(), r.CBLCurtailment.String(), r.Payment.String())
	}
	return &Exhibit{
		ID:         "E21",
		Title:      "Settlement baselines: accurate for the honest, gameable by design (extension, §2)",
		PaperClaim: "§2: \"only a few studies related to DR with data centers hint at realistic contract issues\" — baseline measurement is such an issue; programs settle against an estimated counterfactual, not the true one.",
		Table:      tbl,
		Notes: []string{
			"The CBL reproduces the honest curtailer's 4 MWh exactly and pays the non-participant nothing — but credits the look-back gamer the same 4 MWh for doing nothing. SC benchmark runs scheduled into CBL windows would produce exactly this artifact, which is one reason ESPs want the §3.4 good-neighbor notifications.",
		},
	}, nil
}
