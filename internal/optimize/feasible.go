package optimize

// Independent feasibility verification: CheckFeasible re-derives the
// flexibility envelope from the baseline alone and checks a candidate
// schedule against it, sharing no state with the search. Optimize runs
// it on every returned schedule (an infeasible result is an internal
// invariant failure, never silently returned), and the fuzz tests run
// it against adversarial envelopes.

import (
	"fmt"
	"math"

	"repro/internal/timeseries"
)

// Feasibility tolerances. Budgets and floors are checked with an
// absolute-plus-relative slack covering float accumulation over a year
// of 15-minute samples; they are far below anything billable.
const (
	// tolKW is the per-sample slack on floor and ramp checks.
	tolKW = 1e-6
	// tolEnergyRel is the relative slack on energy conservation and
	// budget checks.
	tolEnergyRel = 1e-6
)

// CheckFeasible verifies that candidate is a legal reshaping of
// baseline under flex: aligned series, per-sample floor respected,
// every ramp step within the envelope, total energy conserved up to the
// declared dropped amount, and the dropped amount within the
// partial-execution budget. droppedKWh is the energy the optimizer
// reports as dropped (0 for pure deferral).
func CheckFeasible(baseline, candidate *timeseries.PowerSeries, flex Flexibility, droppedKWh float64) error {
	if baseline == nil || candidate == nil {
		return fmt.Errorf("optimize: nil series")
	}
	if !candidate.Start().Equal(baseline.Start()) ||
		candidate.Interval() != baseline.Interval() ||
		candidate.Len() != baseline.Len() {
		return fmt.Errorf("optimize: candidate is not aligned with the baseline")
	}
	if err := flex.Validate(); err != nil {
		return err
	}

	floor := flex.FloorKW
	maxRamp := flex.MaxRampKW
	if maxRamp <= 0 {
		maxRamp = math.Inf(1)
	}
	n := baseline.Len()
	for i := 0; i < n; i++ {
		b, c := float64(baseline.At(i)), float64(candidate.At(i))
		lo := math.Min(b, floor)
		if lo < 0 {
			lo = 0
		}
		if c < lo-tolKW {
			return fmt.Errorf("optimize: sample %d at %.3f kW is below the floor %.3f kW", i, c, lo)
		}
		if i+1 < n {
			bStep := math.Abs(float64(baseline.At(i+1)) - b)
			allow := math.Max(bStep, maxRamp)
			if step := math.Abs(float64(candidate.At(i+1)) - c); step > allow+tolKW {
				return fmt.Errorf("optimize: ramp %.3f kW at step %d exceeds the envelope %.3f kW", step, i, allow)
			}
		}
	}

	eBase := float64(baseline.Energy())
	eCand := float64(candidate.Energy())
	tolE := tolEnergyRel * math.Max(math.Abs(eBase), 1)
	removed := eBase - eCand
	if math.Abs(removed-droppedKWh) > tolE {
		return fmt.Errorf("optimize: energy not conserved: baseline %.6f kWh, candidate %.6f kWh, declared dropped %.6f kWh",
			eBase, eCand, droppedKWh)
	}
	if droppedKWh > flex.PartialFraction*eBase+tolE {
		return fmt.Errorf("optimize: dropped %.6f kWh exceeds the partial-execution budget %.6f kWh",
			droppedKWh, flex.PartialFraction*eBase)
	}
	return nil
}
