package exp

import (
	"strings"
	"testing"
)

func TestE17AdaptationPaysBothSides(t *testing.T) {
	res, err := RunE17()
	if err != nil {
		t.Fatal(err)
	}
	if res.Saving <= 0 {
		t.Errorf("adapting must beat passive: saving %v", res.Saving)
	}
	if res.AbsorbedGreen <= 0 || res.AvoidedRed <= 0 {
		t.Errorf("flexibility must be delivered: %+v", res)
	}
	// The cautionary half of the story: a passive site under a GreenSDA
	// pays more than under the flat reference (penalties dominate).
	if res.PassiveNet <= res.FlatNet {
		t.Errorf("passive GreenSDA %v should exceed flat %v", res.PassiveNet, res.FlatNet)
	}
	// And the adapting site beats the flat contract.
	if res.ActiveNet >= res.FlatNet {
		t.Errorf("adaptive GreenSDA %v should beat flat %v", res.ActiveNet, res.FlatNet)
	}
}

func TestE17Exhibit(t *testing.T) {
	e, err := Run("E17")
	if err != nil {
		t.Fatal(err)
	}
	out := e.Render()
	for _, want := range []string{"GreenSDA", "adapting", "win-win"} {
		if !strings.Contains(out, want) {
			t.Errorf("E17 missing %q", want)
		}
	}
}
