package main

import "testing"

func TestRunRegion(t *testing.T) {
	if err := run(3, 5, 800, 1200, 0.97, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunRegionQuiet(t *testing.T) {
	// A very high stress quantile still works (few or no events).
	if err := run(2, 5, 0, 0, 0.999, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunRegionValidation(t *testing.T) {
	if err := run(0, 5, 800, 1200, 0.97, 1); err == nil {
		t.Error("zero days should fail")
	}
	if err := run(3, 0, 800, 1200, 0.97, 1); err == nil {
		t.Error("zero base load should fail")
	}
}
