package hpc

import (
	"testing"

	"repro/internal/units"
)

func TestTop500MatchesPaperRange(t *testing.T) {
	list, err := DefaultTop500().Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 500 {
		t.Fatalf("len = %d", len(list))
	}
	// §1: range 40 kW to 10+ MW.
	if list[0].MW() < 10 {
		t.Errorf("rank 1 = %v, want 10+ MW", list[0])
	}
	// Study floor: rank 50 sits in the MW class.
	if list[49].MW() < 1 || list[49].MW() > 4 {
		t.Errorf("rank 50 = %v, want ≈2 MW", list[49])
	}
	tail := list[499]
	if tail.KW() < 20 || tail.KW() > 120 {
		t.Errorf("rank 500 = %v, want ≈40 kW", tail)
	}
	// Monotone descending.
	for i := 1; i < len(list); i++ {
		if list[i] > list[i-1] {
			t.Fatalf("list not monotone at rank %d", i+1)
		}
	}
	// Top50 aggregate: a grid-significant load (tens to hundreds of MW).
	agg := Top50Aggregate(list)
	if agg.MW() < 30 || agg.MW() > 400 {
		t.Errorf("Top50 aggregate = %v", agg)
	}
}

func TestTop500Deterministic(t *testing.T) {
	a, _ := DefaultTop500().Generate()
	b, _ := DefaultTop500().Generate()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("equal seeds must reproduce the list")
		}
	}
}

func TestTop500Validation(t *testing.T) {
	bad := []Top500Model{
		{TopPower: 0, MidPower: 100, TailPower: 40},
		{TopPower: 1000, MidPower: 100, TailPower: 0},
		{TopPower: 40, MidPower: 100, TailPower: 1000},
		{TopPower: 1000, MidPower: 2000, TailPower: 40},
		{TopPower: 1000, MidPower: 100, TailPower: 40, JitterSigma: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
		if _, err := m.Generate(); err == nil {
			t.Errorf("case %d generate should fail", i)
		}
	}
}

func TestTop50AggregateShortList(t *testing.T) {
	short := []units.Power{100, 200}
	if got := Top50Aggregate(short); got != 300 {
		t.Errorf("short aggregate = %v", got)
	}
	if Top50Aggregate(nil) != 0 {
		t.Error("empty aggregate = 0")
	}
}
