package repro

// Cross-cutting property tests: invariants that span subsystem
// boundaries and therefore live at the top of the module.

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/contract"
	"repro/internal/demand"
	"repro/internal/dr"
	"repro/internal/market"
	"repro/internal/tariff"
	"repro/internal/timeseries"
	"repro/internal/units"
)

var propStart = time.Date(2016, time.March, 7, 0, 0, 0, 0, time.UTC)

func propSeries(raw []uint16) *timeseries.PowerSeries {
	samples := make([]units.Power, len(raw))
	for i, v := range raw {
		samples[i] = units.Power(v % 20000)
	}
	return timeseries.MustNewPower(propStart, 15*time.Minute, samples)
}

// Property: for any load and any contract of (fixed tariff + demand
// charge + upper powerband), scaling the load down never raises any
// component of the bill.
func TestQuickBillMonotoneInLoad(t *testing.T) {
	band, err := demand.NewUpperPowerband(15*units.Megawatt, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	c := &contract.Contract{
		Name:          "prop",
		Tariffs:       []tariff.Tariff{tariff.MustNewFixed(0.07)},
		DemandCharges: []*demand.Charge{demand.SimpleCharge(12)},
		Powerbands:    []*demand.Powerband{band},
	}
	f := func(raw []uint16, scalePct uint8) bool {
		if len(raw) == 0 {
			return true
		}
		load := propSeries(raw)
		scale := float64(scalePct%100) / 100 // [0, 1)
		smaller := load.Scale(scale)
		b1, err1 := contract.ComputeBill(c, load, contract.BillingInput{})
		b2, err2 := contract.ComputeBill(c, smaller, contract.BillingInput{})
		if err1 != nil || err2 != nil {
			return false
		}
		for _, comp := range contract.AllComponents() {
			if b2.ComponentTotal(comp) > b1.ComponentTotal(comp) {
				return false
			}
		}
		return b2.Total <= b1.Total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: every DR strategy keeps the load non-negative and never
// increases energy during event windows.
func TestQuickStrategiesRespectEventWindows(t *testing.T) {
	strategies := []dr.Strategy{
		&dr.CapStrategy{Cap: 8000},
		&dr.ShedStrategy{Fraction: 0.3},
		&dr.GenStrategy{Capacity: 3000},
	}
	f := func(raw []uint16, startQ uint8) bool {
		if len(raw) < 8 {
			return true
		}
		load := propSeries(raw)
		at := int(startQ) % (len(raw) - 4)
		ev := []market.Event{{
			Start: load.TimeAt(at), Duration: time.Hour, RequestedReduction: 2000,
		}}
		evEnd := ev[0].Start.Add(ev[0].Duration)
		for _, s := range strategies {
			resp, err := s.Respond(load, ev)
			if err != nil {
				return false
			}
			mn, err := resp.Load.Min()
			if err != nil || mn < 0 {
				return false
			}
			for i := 0; i < load.Len(); i++ {
				ts := load.TimeAt(i)
				inside := !ts.Before(ev[0].Start) && ts.Before(evEnd)
				if inside && resp.Load.At(i) > load.At(i)+1e-9 {
					return false // strategies must not raise in-event load
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: classification is stable under component re-ordering and
// profile counts match the contract's actual component lists.
func TestQuickClassificationConsistent(t *testing.T) {
	f := func(nDC, nPB uint8, hasFixed bool) bool {
		c := &contract.Contract{Name: "q", Tariffs: []tariff.Tariff{tariff.MustNewFixed(0.05)}}
		for i := 0; i < int(nDC%3); i++ {
			c.DemandCharges = append(c.DemandCharges, demand.SimpleCharge(10))
		}
		for i := 0; i < int(nPB%3); i++ {
			band, err := demand.NewUpperPowerband(10000, 1)
			if err != nil {
				return false
			}
			c.Powerbands = append(c.Powerbands, band)
		}
		p := contract.Classify(c)
		if p.DemandCharge != (len(c.DemandCharges) > 0) {
			return false
		}
		if p.Powerband != (len(c.Powerbands) > 0) {
			return false
		}
		return p.FixedTariff
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: settlement of any load against itself credits nothing.
func TestQuickSelfSettlementIsZero(t *testing.T) {
	p := &market.Program{Kind: market.EmergencyDR, CommittedReduction: 2000, EnergyIncentive: 0.5}
	f := func(raw []uint16) bool {
		if len(raw) < 8 {
			return true
		}
		load := propSeries(raw)
		ev := []market.Event{{Start: load.TimeAt(2), Duration: time.Hour, RequestedReduction: 2000}}
		s, err := p.Settle(load, load, ev)
		if err != nil {
			return false
		}
		return s.CurtailedEnergy == 0 && s.EnergyPayment == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: bill demand share stays in [0, 1] for non-degenerate loads.
func TestQuickDemandShareBounded(t *testing.T) {
	c := &contract.Contract{
		Name:          "share",
		Tariffs:       []tariff.Tariff{tariff.MustNewFixed(0.06)},
		DemandCharges: []*demand.Charge{demand.SimpleCharge(13)},
	}
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		load := propSeries(raw)
		bill, err := contract.ComputeBill(c, load, contract.BillingInput{})
		if err != nil {
			return false
		}
		share := bill.DemandShare()
		return share >= 0 && share <= 1 && !math.IsNaN(share)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
