// Package survey encodes the paper's empirical dataset — the ten
// interviewed supercomputing centers (Table 1), the anonymized per-site
// contract-component matrix and responsible-negotiating-party column
// (Table 2), and the quantified statements of the running text — and
// regenerates the paper's exhibits from it.
//
// Two layers of data exist and are kept separate exactly as the paper
// keeps them: the named site roster (Table 1) and the anonymized site
// records (Table 2). The paper never maps one onto the other, and
// neither do we.
//
// Each anonymized record also carries a synthetic but representative
// executable contract (built via contract.Spec) whose typology
// classification reproduces that site's Table 2 row; the Table 2
// generator classifies those contracts rather than echoing the stored
// booleans, so the classification pipeline itself is exercised end to
// end.
//
// Known text/table inconsistency: the running text of §3.2.4 says eight
// sites have fixed tariffs and eight have demand charges, and describes
// three time-of-use and two dynamic sites; the printed Table 2 matrix
// has 7 fixed, 7 demand-charge, 2 TOU and 3 dynamic ticks. This package
// treats the matrix as ground truth (it is the per-site primary data)
// and exposes both numbers — MatrixCounts and TextClaims — so reports
// can show the discrepancy instead of hiding it.
package survey

import (
	"fmt"
	"time"

	"repro/internal/contract"
	"repro/internal/timeseries"
)

// Region is the coarse geography used by the study.
type Region int

// Regions covered by the survey.
const (
	Europe Region = iota
	UnitedStates
)

// String returns the region name.
func (r Region) String() string {
	switch r {
	case Europe:
		return "Europe"
	case UnitedStates:
		return "United States"
	default:
		return fmt.Sprintf("Region(%d)", int(r))
	}
}

// RosterEntry is one named interview site (Table 1).
type RosterEntry struct {
	Name    string
	Country string
	Region  Region
}

// Roster returns Table 1: the interview sites and their countries, in
// the paper's order.
func Roster() []RosterEntry {
	return []RosterEntry{
		{"European Centre for Medium-range Weather Forecasts", "England", Europe},
		{"GSI Helmholtz Center", "Germany", Europe},
		{"Jülich Supercomputing Centre", "Germany", Europe},
		{"High Performance Computing Center Stuttgart", "Germany", Europe},
		{"Leibniz Supercomputing Centre", "Germany", Europe},
		{"Swiss National Supercomputing Centre", "Switzerland", Europe},
		{"Los Alamos National Laboratory", "United States", UnitedStates},
		{"National Center for Supercomputing Applications", "United States", UnitedStates},
		{"Oak Ridge National Laboratory", "United States", UnitedStates},
		{"Lawrence Livermore National Laboratory", "United States", UnitedStates},
	}
}

// RNP is the responsible negotiating party for electricity procurement
// (§3.3): the SC itself, an internal organization (university or lab
// level), or an external organization (e.g. the US Department of Energy).
type RNP int

// Responsible negotiating parties.
const (
	RNPSupercomputingCenter RNP = iota
	RNPInternal
	RNPExternal
)

// String returns the Table 2 label.
func (r RNP) String() string {
	switch r {
	case RNPSupercomputingCenter:
		return "SC"
	case RNPInternal:
		return "Internal"
	case RNPExternal:
		return "External"
	default:
		return fmt.Sprintf("RNP(%d)", int(r))
	}
}

// SiteRecord is one anonymized survey row (Table 2), plus the narrative
// attributes the text reports in aggregate.
type SiteRecord struct {
	// ID is the anonymized site number (1–10).
	ID int
	// Profile is the site's typology row in Table 2.
	Profile contract.Profile
	// RNP is the responsible negotiating party.
	RNP RNP
	// CommunicatesSwings marks the six sites that report load swings to
	// their ESP (§3.4). The paper gives only the count, not the per-site
	// assignment; the assignment here is synthetic and marked as such.
	CommunicatesSwings bool
	// SwingsByContract distinguishes contractual reporting from good
	// business practice (only meaningful when CommunicatesSwings).
	SwingsByContract bool
}

// Records returns the ten anonymized site rows exactly as printed in
// Table 2. The CommunicatesSwings flags are a synthetic assignment
// consistent with the published aggregate (six of ten, "some ... by
// contract while others ... as part of a good business relationship").
func Records() []SiteRecord {
	return []SiteRecord{
		{ID: 1, Profile: contract.Profile{DemandCharge: true, FixedTariff: true, TOUTariff: true}, RNP: RNPExternal, CommunicatesSwings: true, SwingsByContract: true},
		{ID: 2, Profile: contract.Profile{DemandCharge: true, Powerband: true, FixedTariff: true}, RNP: RNPInternal, CommunicatesSwings: true, SwingsByContract: true},
		{ID: 3, Profile: contract.Profile{DemandCharge: true, FixedTariff: true, EmergencyDR: true}, RNP: RNPInternal, CommunicatesSwings: true},
		{ID: 4, Profile: contract.Profile{DemandCharge: true, DynamicTariff: true}, RNP: RNPInternal},
		{ID: 5, Profile: contract.Profile{DemandCharge: true, Powerband: true, FixedTariff: true}, RNP: RNPInternal, CommunicatesSwings: true, SwingsByContract: true},
		{ID: 6, Profile: contract.Profile{Powerband: true, FixedTariff: true}, RNP: RNPSupercomputingCenter, CommunicatesSwings: true},
		{ID: 7, Profile: contract.Profile{DemandCharge: true, Powerband: true, DynamicTariff: true, EmergencyDR: true}, RNP: RNPInternal, CommunicatesSwings: true},
		{ID: 8, Profile: contract.Profile{DynamicTariff: true}, RNP: RNPInternal},
		{ID: 9, Profile: contract.Profile{DemandCharge: true, Powerband: true, FixedTariff: true, TOUTariff: true}, RNP: RNPExternal},
		{ID: 10, Profile: contract.Profile{FixedTariff: true}, RNP: RNPExternal},
	}
}

// BuildContext supplies the price feed synthetic dynamic-tariff sites
// need. DefaultBuildContext returns a flat reference feed suitable for
// classification purposes.
func DefaultBuildContext(start time.Time) contract.BuildContext {
	feed := timeseries.ConstantPrice(start, time.Hour, 24*365, 0.045)
	return contract.BuildContext{Feed: feed}
}

// BuildContract constructs the representative executable contract for a
// site record: parameters are synthetic (the survey is anonymized and
// price levels were explicitly out of scope) but the component structure
// matches the site's Table 2 row exactly.
func BuildContract(site SiteRecord, ctx contract.BuildContext) (*contract.Contract, error) {
	spec := SiteSpec(site)
	return spec.Build(ctx)
}

// SiteSpec returns the serializable contract spec behind BuildContract,
// so the ten survey contracts can be shipped over the wire (the billing
// service), stored on disk, and round-trip tested.
func SiteSpec(site SiteRecord) contract.Spec {
	spec := contract.Spec{Name: fmt.Sprintf("Site %d", site.ID)}
	if site.Profile.FixedTariff {
		spec.Tariffs = append(spec.Tariffs, contract.TariffSpec{Type: "fixed", Rate: 0.085})
	}
	if site.Profile.TOUTariff {
		// The configurations observed: a variable service charge on top
		// of the fixed rate (Sites 1 and 9).
		spec.Tariffs = append(spec.Tariffs, contract.TariffSpec{
			Type: "tou", DayRate: 0.030, NightRate: 0.010, DayFrom: 8, DayTo: 20,
		})
	}
	if site.Profile.DynamicTariff {
		spec.Tariffs = append(spec.Tariffs, contract.TariffSpec{Type: "dynamic", Multiplier: 1.1, Adder: 0.005})
	}
	if site.Profile.DemandCharge {
		spec.DemandCharges = append(spec.DemandCharges, contract.DemandChargeSpec{
			PricePerKW: 12, Method: "n-peak-average", NPeaks: 3,
		})
	}
	if site.Profile.Powerband {
		spec.Powerbands = append(spec.Powerbands, contract.PowerbandSpec{
			LowerKW: 2000, UpperKW: 14000, UnderPenalty: 0.10, OverPenalty: 0.40,
		})
	}
	if site.Profile.EmergencyDR {
		spec.Emergencies = append(spec.Emergencies, contract.EmergencySpec{
			Name: "grid-emergency", CapKW: 6000, NoticeMinutes: 30, Penalty: 1.50,
		})
	}
	return spec
}

// Counts aggregates the Table 2 matrix.
type Counts struct {
	// Component counts the ticks per typology column.
	Component map[contract.Component]int
	// RNP counts sites per negotiating party.
	RNP map[RNP]int
	// CommunicateSwings counts §3.4's reporting sites.
	CommunicateSwings int
	// Sites is the total number of rows.
	Sites int
}

// MatrixCounts tallies the published Table 2 matrix (the per-site primary
// data) by classifying each site's built contract.
func MatrixCounts() (Counts, error) {
	ctx := DefaultBuildContext(time.Date(2016, time.January, 1, 0, 0, 0, 0, time.UTC))
	counts := Counts{
		Component: make(map[contract.Component]int),
		RNP:       make(map[RNP]int),
	}
	for _, site := range Records() {
		c, err := BuildContract(site, ctx)
		if err != nil {
			return Counts{}, fmt.Errorf("survey: site %d: %w", site.ID, err)
		}
		profile := contract.Classify(c)
		if profile != site.Profile {
			return Counts{}, fmt.Errorf("survey: site %d classification %v does not reproduce its Table 2 row %v",
				site.ID, profile, site.Profile)
		}
		for _, comp := range profile.Components() {
			counts.Component[comp]++
		}
		counts.RNP[site.RNP]++
		if site.CommunicatesSwings {
			counts.CommunicateSwings++
		}
		counts.Sites++
	}
	return counts, nil
}

// TextClaims returns the aggregate numbers as stated in the paper's
// running text (§3.2.4, §3.3, §3.4), which disagree with the printed
// matrix in four cells — see the package comment.
func TextClaims() Counts {
	return Counts{
		Component: map[contract.Component]int{
			contract.CompFixedTariff:   8,
			contract.CompTOUTariff:     3,
			contract.CompDynamicTariff: 2,
			contract.CompDemandCharge:  8,
			contract.CompPowerband:     5,
			contract.CompEmergencyDR:   2,
		},
		RNP: map[RNP]int{
			RNPSupercomputingCenter: 1,
			RNPInternal:             6,
			RNPExternal:             3,
		},
		CommunicateSwings: 6,
		Sites:             10,
	}
}

// Discrepancy is one cell where the running text and the printed matrix
// disagree.
type Discrepancy struct {
	Component contract.Component
	Text      int
	Matrix    int
}

// Discrepancies compares TextClaims against MatrixCounts and returns the
// cells that differ, in Table 2 column order.
func Discrepancies() ([]Discrepancy, error) {
	matrix, err := MatrixCounts()
	if err != nil {
		return nil, err
	}
	text := TextClaims()
	var out []Discrepancy
	for _, comp := range contract.AllComponents() {
		if text.Component[comp] != matrix.Component[comp] {
			out = append(out, Discrepancy{
				Component: comp,
				Text:      text.Component[comp],
				Matrix:    matrix.Component[comp],
			})
		}
	}
	return out, nil
}

// GeographicFinding restates the survey's regional conclusion: contrary
// to the hypothesis from prior work, no difference between Europe and
// the United States was found, and the results show no geographic trends.
const GeographicFinding = "The current work specifically asked this question of all sites and " +
	"discovered that there was not a difference between SCs in Europe and the United States. " +
	"Furthermore, the survey results did not show any geographic trends."
