// Command scvet is the repo's custom static-analysis suite, packaged
// as a `go vet -vettool`-compatible multichecker:
//
//	go build -o bin/scvet ./cmd/scvet
//	go vet -vettool=$(pwd)/bin/scvet ./...
//
// It runs nine analyzers that mechanically enforce the billing and
// fleet invariants (see each package's doc, or `scvet -scvet.doc`):
// moneyfloat, nondeterm, ctxloop, lockheld, metricname, goroleak,
// timerstop, respclose, ctxflow. A finding can be suppressed — with an
// auditable reason — by a directive on the same line or the line
// above:
//
//	//lint:scvet-ignore <analyzer> <reason>
//
// Beyond the vet protocol, `scvet -ignores [packages...]` inventories
// every suppression directive in the tree (file:line, analyzer,
// reason) and flags stale ones; `-strict` makes stale directives fail
// the run.
package main

import (
	"repro/internal/analysis/registry"
	"repro/internal/analysis/unitchecker"
)

func main() {
	unitchecker.Main(registry.All()...)
}
