package billing_test

// Equivalence tests for the incremental month evaluator: a staged
// re-evaluation over mutated samples must price exactly like a full
// EvaluateMonths over the same samples, for both peak-independent and
// ratchet (cross-month) contracts.

import (
	"context"
	"testing"
	"time"

	"repro/internal/billing"
	"repro/internal/demand"
	"repro/internal/timeseries"
	"repro/internal/units"
)

func yearLoadBuf(t *testing.T) (*timeseries.PowerSeries, []units.Power) {
	t.Helper()
	start := time.Date(2016, time.January, 1, 0, 0, 0, 0, time.UTC)
	n := 366 * 24 // 2016 is a leap year; hourly metering
	samples := make([]units.Power, n)
	for i := range samples {
		// Deterministic diurnal shape with a mid-year hump so month
		// peaks differ and the ratchet prefix actually moves.
		day := i / 24
		hour := i % 24
		p := 8000.0 + 2000.0*float64(hour%12)/11.0
		if day > 150 && day < 200 {
			p += 4000
		}
		samples[i] = units.Power(p)
	}
	return timeseries.MustNewPower(start, time.Hour, samples), samples
}

func evaluators(t *testing.T) map[string]*billing.Evaluator {
	t.Helper()
	ratchet, err := billing.NewEvaluator(
		demand.MustNewCharge(12, demand.Ratchet, 0, 0.8),
		billing.FlatFee{Name: "service", Amount: units.MoneyFromFloat(100)},
	)
	if err != nil {
		t.Fatal(err)
	}
	independent, err := billing.NewEvaluator(
		demand.SimpleCharge(12),
		billing.FlatFee{Name: "service", Amount: units.MoneyFromFloat(100)},
	)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*billing.Evaluator{"ratchet": ratchet, "independent": independent}
}

// fullTotal bills the buffer from scratch and returns the grand total.
func fullTotal(t *testing.T, e *billing.Evaluator, load *timeseries.PowerSeries, pctx billing.PeriodContext) units.Money {
	t.Helper()
	results, err := e.EvaluateMonths(load, pctx, billing.MonthsOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var total units.Money
	for _, r := range results {
		total += r.Total
	}
	return total
}

func TestIncrementalMonthsMatchesFullEvaluation(t *testing.T) {
	for name, eval := range evaluators(t) {
		t.Run(name, func(t *testing.T) {
			base, _ := yearLoadBuf(t)
			buf := base.AppendSamples(nil)
			cand := base.WithSamples(buf)
			pctx := billing.PeriodContext{HistoricalPeak: 13000}

			im, err := eval.IncrementalMonths(context.Background(), cand, pctx)
			if err != nil {
				t.Fatal(err)
			}
			if im.Months() != 12 {
				t.Fatalf("months = %d, want 12", im.Months())
			}
			if got, want := im.Total(), fullTotal(t, eval, cand, pctx); got != want {
				t.Fatalf("initial total = %v, want %v", got, want)
			}

			// Shave March's peak hours and raise July's: cross-month
			// ratchet interactions in both directions.
			blocks := cand.Blocks()
			for i := range blocks[2].Samples {
				if blocks[2].Samples[i] > 9000 {
					blocks[2].Samples[i] = 9000
				}
			}
			for i := range blocks[6].Samples {
				blocks[6].Samples[i] += 1500
			}
			staged, err := im.Stage(context.Background(), []int{2, 6})
			if err != nil {
				t.Fatal(err)
			}
			if want := fullTotal(t, eval, cand, pctx); staged != want {
				t.Fatalf("staged total = %v, want full re-evaluation %v", staged, want)
			}
			im.Commit()
			if im.Total() != staged {
				t.Fatalf("committed total = %v, want %v", im.Total(), staged)
			}

			// A second stage on top of the committed state.
			for i := range blocks[11].Samples {
				blocks[11].Samples[i] += 500
			}
			staged2, err := im.Stage(context.Background(), []int{11})
			if err != nil {
				t.Fatal(err)
			}
			if want := fullTotal(t, eval, cand, pctx); staged2 != want {
				t.Fatalf("second staged total = %v, want %v", staged2, want)
			}
			im.Commit()

			// Per-month results match a fresh full evaluation.
			results, err := eval.EvaluateMonths(cand, pctx, billing.MonthsOptions{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for i, r := range results {
				if got := im.Result(i); got.Total != r.Total || got.Peak != r.Peak || got.Energy != r.Energy {
					t.Fatalf("month %d: incremental %+v vs full %+v", i, got, r)
				}
			}
		})
	}
}

func TestIncrementalMonthsDiscardRestoresCommitted(t *testing.T) {
	eval := evaluators(t)["ratchet"]
	base, _ := yearLoadBuf(t)
	buf := base.AppendSamples(nil)
	cand := base.WithSamples(buf)

	im, err := eval.IncrementalMonths(context.Background(), cand, billing.PeriodContext{})
	if err != nil {
		t.Fatal(err)
	}
	committed := im.Total()

	// Mutate, stage, then reject: revert the buffer and discard.
	undo := make([]units.Power, len(buf))
	copy(undo, buf)
	blocks := cand.Blocks()
	for i := range blocks[5].Samples {
		blocks[5].Samples[i] *= 2
	}
	staged, err := im.Stage(context.Background(), []int{5})
	if err != nil {
		t.Fatal(err)
	}
	if staged == committed {
		t.Fatalf("doubling a month did not change the staged total")
	}
	copy(buf, undo)
	im.Discard()

	if im.Total() != committed {
		t.Fatalf("total after discard = %v, want %v", im.Total(), committed)
	}
	// Staging the same (reverted) month again reproduces the committed
	// total exactly.
	restaged, err := im.Stage(context.Background(), []int{5})
	if err != nil {
		t.Fatal(err)
	}
	if restaged != committed {
		t.Fatalf("restaged total = %v, want committed %v", restaged, committed)
	}
	im.Discard()
}

func TestIncrementalMonthsSkipsUntouchedForIndependentContracts(t *testing.T) {
	eval := evaluators(t)["independent"]
	if eval.UsesHistoricalPeak() {
		t.Fatal("independent evaluator claims to use the historical peak")
	}
	base, _ := yearLoadBuf(t)
	buf := base.AppendSamples(nil)
	cand := base.WithSamples(buf)

	im, err := eval.IncrementalMonths(context.Background(), cand, billing.PeriodContext{})
	if err != nil {
		t.Fatal(err)
	}
	before := im.Evaluations() // 12: the initial pass
	blocks := cand.Blocks()
	for i := range blocks[3].Samples {
		blocks[3].Samples[i] += 100
	}
	if _, err := im.Stage(context.Background(), []int{3}); err != nil {
		t.Fatal(err)
	}
	if got := im.Evaluations() - before; got != 1 {
		t.Fatalf("stage of one month performed %d evaluations, want 1", got)
	}
	im.Commit()
}

func TestIncrementalMonthsRatchetReevaluatesDownstream(t *testing.T) {
	eval := evaluators(t)["ratchet"]
	if !eval.UsesHistoricalPeak() {
		t.Fatal("ratchet evaluator does not report using the historical peak")
	}
	base, _ := yearLoadBuf(t)
	buf := base.AppendSamples(nil)
	cand := base.WithSamples(buf)

	im, err := eval.IncrementalMonths(context.Background(), cand, billing.PeriodContext{})
	if err != nil {
		t.Fatal(err)
	}
	before := im.Evaluations()
	// A new all-time peak in February must re-price every later month
	// (the 80% ratchet floor rises everywhere downstream).
	blocks := cand.Blocks()
	blocks[1].Samples[0] = 40000
	staged, err := im.Stage(context.Background(), []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if got := im.Evaluations() - before; got != 11 {
		t.Fatalf("ratchet stage performed %d evaluations, want 11 (Feb..Dec)", got)
	}
	if want := fullTotal(t, eval, cand, billing.PeriodContext{}); staged != want {
		t.Fatalf("staged total = %v, want %v", staged, want)
	}
	im.Commit()
}
