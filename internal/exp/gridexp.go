package exp

// Grid-facing experiments: E8 (wholesale DR peak-shaving potential),
// E9 (SC ramp rates strain the grid), E10 (tariff kind → incentive
// mapping under load shifting).

import (
	"fmt"
	"time"

	"repro/internal/calendar"
	"repro/internal/dr"
	"repro/internal/grid"
	"repro/internal/hpc"
	"repro/internal/market"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/tariff"
	"repro/internal/units"
)

func init() {
	register("E8", runE8)
	register("E9", runE9)
	register("E10", runE10)
}

// E8Point is one enrollment level of the regional DR study.
type E8Point struct {
	// EnrolledFraction is DR capacity as a fraction of the regional peak.
	EnrolledFraction float64
	// PeakReduction is the relative regional peak reduction achieved.
	PeakReduction float64
}

// SweepE8 builds a regional net-load profile and shaves its top hours
// with growing amounts of enrolled DR capacity, measuring the relative
// peak reduction. FERC's 6.6% estimate is the reference point.
func SweepE8(fractions []float64) ([]E8Point, error) {
	cfg := grid.DefaultRegion(expStart)
	demandLoad, err := grid.SystemLoad(cfg)
	if err != nil {
		return nil, err
	}
	solar, err := grid.Solar(demandLoad, grid.SolarConfig{Capacity: 800 * units.Megawatt, CloudNoise: 0.3, Seed: 2})
	if err != nil {
		return nil, err
	}
	wind, err := grid.Wind(demandLoad, grid.WindConfig{
		Capacity: 1200 * units.Megawatt, MeanCF: 0.35, Persistence: 0.97, Sigma: 0.03, Seed: 4,
	})
	if err != nil {
		return nil, err
	}
	net, err := grid.NetLoad(demandLoad, solar, wind)
	if err != nil {
		return nil, err
	}
	peak, _, err := net.Peak()
	if err != nil {
		return nil, err
	}
	out := make([]E8Point, 0, len(fractions))
	for _, f := range fractions {
		enrolled := units.Power(float64(peak) * f)
		// Enrolled DR shaves the regional profile: every interval above
		// (peak − enrolled) is cut by up to the enrolled capacity.
		shaved := net.Map(func(p units.Power) units.Power {
			limit := peak - enrolled
			if p > limit {
				return limit
			}
			return p
		})
		_, rel, err := grid.PeakReduction(net, shaved)
		if err != nil {
			return nil, err
		}
		out = append(out, E8Point{EnrolledFraction: f, PeakReduction: rel})
	}
	return out, nil
}

func runE8() (*Exhibit, error) {
	fractions := []float64{0.01, 0.033, 0.066, 0.10}
	points, err := SweepE8(fractions)
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable("Regional peak reduction vs enrolled DR capacity (5 GW region with wind+solar)",
		"Enrolled DR (% of peak)", "Peak reduction")
	for _, p := range points {
		tbl.AddRow(
			fmt.Sprintf("%.1f%%", p.EnrolledFraction*100),
			fmt.Sprintf("%.1f%%", p.PeakReduction*100),
		)
	}
	return &Exhibit{
		ID:         "E8",
		Title:      "Wholesale DR peak-reduction potential",
		PaperClaim: "§1 (FERC): DR programs throughout the United States have the potential to reduce peak load by 6.6%.",
		Table:      tbl,
		Notes: []string{
			"Enrolling DR capacity equal to 6.6% of the regional peak delivers the FERC-estimated 6.6% peak reduction; the relationship is one-to-one while the load-duration curve stays above the shaving band.",
		},
	}, nil
}

// E9Result summarizes the ramp-rate study.
type E9Result struct {
	// SC ramp statistics (kW/min) for the batch facility.
	SCMaxRamp units.RampRate
	SCP99Ramp units.RampRate
	// Smoothed statistics for the same energy delivered flat.
	SmoothedMaxRamp units.RampRate
}

// RunE9 simulates a batch facility at one-minute metering and compares
// its ramp distribution with a smoothed (hourly-averaged) delivery of
// the same energy.
func RunE9() (*E9Result, error) {
	m := hpc.SmallSiteMachine()
	wcfg := hpc.DefaultWorkload()
	wcfg.Span = 48 * time.Hour
	wcfg.Seed = 13
	jobs, err := hpc.GenerateWorkload(m, wcfg)
	if err != nil {
		return nil, err
	}
	res, err := sched.Simulate(m, jobs, sched.Config{
		Start: expStart, Step: time.Minute, MeterInterval: time.Minute,
		Horizon: 24 * time.Hour,
	})
	if err != nil {
		return nil, err
	}
	facility := res.FacilityLoad
	ramps := facility.Ramps()
	if len(ramps) == 0 {
		return nil, fmt.Errorf("exp: no ramps produced")
	}
	abs := make([]float64, len(ramps))
	for i, r := range ramps {
		v := float64(r)
		if v < 0 {
			v = -v
		}
		abs[i] = v
	}
	p99, err := stats.Quantile(abs, 0.99)
	if err != nil {
		return nil, err
	}
	smoothed, err := facility.Resample(time.Hour)
	if err != nil {
		return nil, err
	}
	return &E9Result{
		SCMaxRamp:       facility.MaxRamp(),
		SCP99Ramp:       units.RampRate(p99),
		SmoothedMaxRamp: smoothed.MaxRamp(),
	}, nil
}

func runE9() (*Exhibit, error) {
	res, err := RunE9()
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable("Facility ramp rates: batch operation vs smoothed delivery (1 MW-class site, 1-min metering)",
		"Profile", "Max |ramp|", "p99 |ramp|")
	tbl.AddRow("batch SC", res.SCMaxRamp.String(), res.SCP99Ramp.String())
	tbl.AddRow("hourly-smoothed", res.SmoothedMaxRamp.String(), "—")
	return &Exhibit{
		ID:         "E9",
		Title:      "Fast ramping variability of SC demand",
		PaperClaim: "§1: the fast ramping variability in the demand of these SCs can strain the grid power systems.",
		Table:      tbl,
		Notes: []string{
			"Job starts and completions move megawatt-scale blocks within single minutes; the same energy delivered hourly-smoothed ramps an order of magnitude slower.",
		},
	}, nil
}

// E10Point prices the same facility under one tariff, with and without
// load shifting into cheap windows.
type E10Point struct {
	Tariff       string
	Kind         tariff.Kind
	BaselineCost units.Money
	ShiftedCost  units.Money
	Savings      units.Money
}

// SweepE10 builds a diurnal facility profile, shifts 20% of peak-window
// load into the night, and prices baseline vs shifted under fixed, TOU
// and dynamic tariffs.
func SweepE10() ([]E10Point, error) {
	load, err := hpc.SyntheticFacilityLoad(hpc.LoadProfileConfig{
		Start: expStart, Span: 7 * 24 * time.Hour, Interval: 15 * time.Minute,
		Base: 10 * units.Megawatt, PeakToAverage: 1, DiurnalSwing: 0.10, Seed: 21,
	})
	if err != nil {
		return nil, err
	}
	// Shift 20% of the weekday 12:00–16:00 load into the following
	// evening hours, via the DR shift strategy with synthetic "events".
	var events []market.Event
	for d := 0; d < 7; d++ {
		at := expStart.Add(time.Duration(d)*24*time.Hour + 12*time.Hour)
		if wd := at.Weekday(); wd == time.Saturday || wd == time.Sunday {
			continue
		}
		events = append(events, market.Event{Start: at, Duration: 4 * time.Hour})
	}
	shift := &dr.ShiftStrategy{Fraction: 0.20, RecoverySpan: 8 * time.Hour}
	resp, err := shift.Respond(load, events)
	if err != nil {
		return nil, err
	}
	shifted := resp.Load

	fixed := tariff.MustNewFixed(0.080)
	tou := tariff.MustNewTOU(calendar.DayNight(8, 20, nil), map[string]units.EnergyPrice{
		"peak": 0.110, "offpeak": 0.050,
	})
	// Dynamic feed: expensive afternoons, cheap nights (price follows a
	// regional net-load model).
	region := grid.DefaultRegion(expStart)
	region.Span = 7 * 24 * time.Hour
	regional, err := grid.SystemLoad(region)
	if err != nil {
		return nil, err
	}
	pm := market.DefaultPriceModel(6 * units.Gigawatt)
	feed, err := pm.PriceSeries(regional)
	if err != nil {
		return nil, err
	}
	dyn := tariff.PassThrough(feed)

	var out []E10Point
	for _, t := range []tariff.Tariff{fixed, tou, dyn} {
		out = append(out, E10Point{
			Tariff:       t.Describe(),
			Kind:         t.Kind(),
			BaselineCost: t.Cost(load),
			ShiftedCost:  t.Cost(shifted),
			Savings:      t.Cost(load) - t.Cost(shifted),
		})
	}
	return out, nil
}

func runE10() (*Exhibit, error) {
	points, err := SweepE10()
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable("Weekly cost with vs without shifting 20% of midday load into the night",
		"Tariff kind", "Baseline", "Shifted", "Savings")
	for _, p := range points {
		tbl.AddRow(p.Kind.String(), p.BaselineCost.String(), p.ShiftedCost.String(), p.Savings.String())
	}
	return &Exhibit{
		ID:         "E10",
		Title:      "What each tariff kind incentivizes",
		PaperClaim: "§3.2.1: fixed tariffs encourage energy efficiency but no DSM; time-of-use tariffs encourage static DSM; dynamic tariffs encourage DR.",
		Table:      tbl,
		Notes: []string{
			"Savings are ~zero under the fixed tariff (shifting conserves energy), and positive under TOU and dynamic tariffs — the typology's incentive mapping, measured.",
		},
	}, nil
}
