// Command scserved runs the billing-as-a-service daemon: a long-lived
// HTTP/JSON server exposing bill computation (with an LRU cache of
// compiled contract engines), the survey dataset, and the renegotiation
// advisor. See internal/serve for the API.
//
// Usage:
//
//	scserved -addr :8080
//	scserved -addr :8080 -max-concurrent 8 -queue 128 -timeout 10s
//	scserved -addr :8080 -debug-addr 127.0.0.1:6060 -slow-request 250ms
//
// The daemon sheds load with 429 + Retry-After when its request queue
// fills, and drains in-flight bills on SIGINT/SIGTERM before exiting.
// Every request is logged as one structured line (JSON or logfmt-style
// text) carrying the request ID; requests slower than -slow-request log
// at warning level. With -debug-addr set, a second listener serves
// net/http/pprof — keep it on loopback or behind a firewall.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxConcurrent := flag.Int("max-concurrent", 0, "parallel bill evaluations (0 = all CPUs)")
	queueDepth := flag.Int("queue", 64, "requests allowed to wait for a slot before shedding with 429 (-1 = no queue)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline, queue wait included")
	cacheSize := flag.Int("cache", 128, "compiled contract engines kept in the LRU")
	monthWorkers := flag.Int("month-workers", 0, "worker pool per monthly request (0 = all CPUs)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight bills")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = disabled; use 127.0.0.1:6060)")
	slowRequest := flag.Duration("slow-request", time.Second, "log requests at or above this latency at warning level (negative = never)")
	logFormat := flag.String("log-format", "text", "request log format: text, json, or off")
	flag.Parse()

	logger, err := requestLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scserved:", err)
		os.Exit(2)
	}

	if err := run(*addr, *debugAddr, serve.Config{
		MaxConcurrent:   *maxConcurrent,
		QueueDepth:      *queueDepth,
		RequestTimeout:  *timeout,
		EngineCacheSize: *cacheSize,
		MonthWorkers:    *monthWorkers,
		Logger:          logger,
		SlowRequest:     *slowRequest,
	}, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "scserved:", err)
		os.Exit(1)
	}
}

// requestLogger builds the per-request slog.Logger from -log-format;
// "off" returns nil, which disables request logging in the service.
func requestLogger(format string) (*slog.Logger, error) {
	switch format {
	case "off", "none":
		return nil, nil
	case "text", "json":
		return obs.NewLogger(os.Stderr, format, slog.LevelInfo), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text, json, or off)", format)
	}
}

// debugMux is the pprof handler set, registered explicitly instead of
// importing net/http/pprof for its DefaultServeMux side effect — the
// profiler only exists when -debug-addr asks for it.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func run(addr, debugAddr string, cfg serve.Config, drainTimeout time.Duration) error {
	svc := serve.NewServer(cfg)
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	var debugSrv *http.Server
	if debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              debugAddr,
			Handler:           debugMux(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			log.Printf("scserved pprof on http://%s/debug/pprof/", debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("scserved: pprof listener: %v", err)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("scserved listening on %s", addr)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		return err
	case sig := <-stop:
		log.Printf("scserved: %s received, draining in-flight bills", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Refuse new work and wait for admitted bills first, then close the
	// listener and idle connections.
	if err := svc.Shutdown(ctx); err != nil {
		log.Printf("scserved: drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if debugSrv != nil {
		if err := debugSrv.Shutdown(ctx); err != nil {
			log.Printf("scserved: pprof shutdown: %v", err)
		}
	}
	log.Printf("scserved: drained, bye")
	return nil
}
