// Package pos holds ctxloop true positives shaped like optimizer
// candidate-evaluation loops: ctx-taking searches that re-read the
// sample stream every iteration without ever polling.
package pos

import (
	"context"

	"internal/timeseries"
)

// A search loop that prices every candidate by rescanning the samples
// but never consults ctx: the exact bug the analyzer exists to catch —
// a disconnected /v1/optimize client would keep this burning CPU for
// the full candidate budget.
func Search(ctx context.Context, load *timeseries.PowerSeries, candidates int) float64 {
	best := 0.0
	for k := 0; k < candidates; k++ { // want "loop reads PowerSeries samples but never polls ctx"
		var obj float64
		for i := 0; i < load.Len(); i++ {
			obj += load.At(i)
		}
		if obj > best {
			best = obj
		}
	}
	return best
}

// Evaluating candidates through the columnar block view carries the
// same obligation: blk.Samples is the sample stream.
func BlockSearch(ctx context.Context, load *timeseries.PowerSeries, candidates int) float64 {
	best := 0.0
	for k := 0; k < candidates; k++ { // want "loop reads PowerSeries samples but never polls ctx"
		var peak float64
		for _, blk := range load.Blocks() {
			for _, p := range blk.Samples {
				if p > peak {
					peak = p
				}
			}
		}
		if peak > best {
			best = peak
		}
	}
	return best
}

// A pre-loop ctx.Err() check is not a poll; the candidate loop itself
// never looks again.
func CheckedOnce(ctx context.Context, load *timeseries.PowerSeries, candidates int) float64 {
	if ctx.Err() != nil {
		return 0
	}
	var acc float64
	for k := 0; k < candidates; k++ { // want "loop reads PowerSeries samples but never polls ctx"
		acc += load.At(k % load.Len())
	}
	return acc
}
