package resilience

// Budget is a retry/hedge token budget in the SRE retry-budget style:
// every primary (first-attempt) request earns a fraction of a token,
// and every extra attempt — a failover retry or a speculative hedge —
// must spend a whole one. Under healthy traffic the bucket stays full
// and extra attempts are free; under a fleet-wide brownout the bucket
// drains and the fleet degrades to single-attempt behavior instead of
// multiplying offered load into a retry storm. With ratio r and burst
// b, attempted/offered can never exceed (1 + r) + b/offered — the
// bound the fleet chaos acceptance pins at 1.2×.
//
// The budget is deliberately clock-free: refill is driven by primary
// traffic, not time, so a quiet fleet does not bank an unbounded storm
// allowance and tests need no fake clock.

import "sync"

// BudgetConfig tunes a Budget. The zero value is usable.
type BudgetConfig struct {
	// Ratio is the fraction of a token earned per primary request;
	// <= 0 selects 0.1 (one extra attempt allowed per ten primaries).
	Ratio float64
	// Burst caps banked tokens and is also the initial balance, so a
	// cold start can absorb a short failure burst; <= 0 selects 10.
	Burst float64
}

func (c BudgetConfig) withDefaults() BudgetConfig {
	if c.Ratio <= 0 {
		c.Ratio = 0.1
	}
	if c.Burst <= 0 {
		c.Burst = 10
	}
	return c
}

// BudgetStats is a snapshot of the budget's counters.
type BudgetStats struct {
	Primaries uint64  // primary requests observed (each earns Ratio tokens)
	Granted   uint64  // extra attempts the budget paid for
	Denied    uint64  // extra attempts refused for lack of tokens
	Tokens    float64 // current balance
}

// Budget is a concurrency-safe retry/hedge token bucket. Construct
// with NewBudget; share one instance between every caller that can
// multiply load (failover retries and hedges draw from the same pool).
type Budget struct {
	cfg BudgetConfig

	mu     sync.Mutex
	tokens float64
	stats  BudgetStats
}

// NewBudget builds a budget with a full bucket.
func NewBudget(cfg BudgetConfig) *Budget {
	cfg = cfg.withDefaults()
	return &Budget{cfg: cfg, tokens: cfg.Burst}
}

// OnPrimary records one primary request, earning Ratio tokens up to
// the burst cap. Call it once per offered request, not per attempt.
func (b *Budget) OnPrimary() {
	b.mu.Lock()
	b.stats.Primaries++
	b.tokens += b.cfg.Ratio
	if b.tokens > b.cfg.Burst {
		b.tokens = b.cfg.Burst
	}
	b.mu.Unlock()
}

// TryAcquire spends one token for an extra attempt. It never blocks:
// false means the budget is exhausted and the caller must make do with
// the attempts it already has. The whole-token check tolerates float
// accumulation error (ten 0.1-refills must buy one token).
func (b *Budget) TryAcquire() bool {
	const eps = 1e-9
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1-eps {
		b.stats.Denied++
		return false
	}
	b.tokens--
	if b.tokens < 0 {
		b.tokens = 0
	}
	b.stats.Granted++
	return true
}

// Tokens returns the current balance.
func (b *Budget) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

// Stats returns a snapshot of the budget's counters.
func (b *Budget) Stats() BudgetStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.stats
	st.Tokens = b.tokens
	return st
}
