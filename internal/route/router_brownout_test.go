package route

// Gray-failure tests for the brownout-proof forward engine: per-try
// timeouts, hedged requests, retry budgets, deadline propagation, and
// the hop-by-hop header hygiene a buffering proxy owes RFC 9110.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestFailoverReplaysExactBody: the first-ranked backend consumes the
// request body and then fails; the failover retry must carry the exact
// same bytes even though the client's reader was consumed once.
func TestFailoverReplaysExactBody(t *testing.T) {
	body := specBody(t, "site-replay")
	var got atomic.Value
	sawFirst := make(chan struct{}, 4)

	fail := func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.ReadAll(r.Body) // consume, then die
		sawFirst <- struct{}{}
		w.WriteHeader(http.StatusBadGateway)
	}
	capture := func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		got.Store(string(b))
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, `{"ok":true}`)
	}

	stubs := []*stubBackend{newStubBackend(t), newStubBackend(t)}
	rt, front := newTestRouter(t, Config{FailureThreshold: 5}, stubs...)

	// Script whichever backend ranks first for this spec to fail and
	// the other to capture the replayed body.
	key, ok := routingKey(body)
	if !ok {
		t.Fatal("spec body must produce a routing key")
	}
	owner := Owner(rt.names, key)
	for _, sb := range stubs {
		if sb.ts.URL == owner {
			sb.setHandler(fail)
		} else {
			sb.setHandler(capture)
		}
	}

	resp, out := postJSON(t, front.URL+"/v1/bill", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover = %d %s, want 200 from the spare", resp.StatusCode, out)
	}
	select {
	case <-sawFirst:
	default:
		t.Fatal("the ranked owner never saw the request")
	}
	if got.Load() != string(body) {
		t.Fatalf("retry body = %q, want the exact buffered original %q", got.Load(), body)
	}
}

// TestHedgeLoserCanceledPromptly: the first-ranked backend hangs past
// the hedge delay, the hedge wins, and the loser's request context is
// canceled promptly — not left to dangle until the request deadline.
func TestHedgeLoserCanceledPromptly(t *testing.T) {
	body := specBody(t, "site-hedge")
	loserCanceled := make(chan time.Duration, 1)

	hang := func(w http.ResponseWriter, r *http.Request) {
		// Consume the body: the server only watches for client
		// disconnect (which cancels r.Context()) once the body hits EOF.
		_, _ = io.ReadAll(r.Body)
		start := time.Now()
		<-r.Context().Done()
		loserCanceled <- time.Since(start)
	}
	fast := func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, `{"ok":true}`)
	}

	stubs := []*stubBackend{newStubBackend(t), newStubBackend(t)}
	rt, front := newTestRouter(t, Config{
		FailureThreshold: 50,
		RequestTimeout:   10 * time.Second,
		HedgeDelayFloor:  20 * time.Millisecond,
	}, stubs...)

	key, _ := routingKey(body)
	owner := Owner(rt.names, key)
	for _, sb := range stubs {
		if sb.ts.URL == owner {
			sb.setHandler(hang)
		} else {
			sb.setHandler(fast)
		}
	}

	start := time.Now()
	resp, out := postJSON(t, front.URL+"/v1/bill", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged request = %d %s, want the hedge's 200", resp.StatusCode, out)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hedge took %s; must not wait out the hung owner", elapsed)
	}
	select {
	case d := <-loserCanceled:
		if d > 2*time.Second {
			t.Fatalf("loser context canceled after %s, want promptly after the win", d)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("loser context never canceled")
	}
	if rt.metrics.hedges.Load() == 0 || rt.metrics.hedgeWins.Load() == 0 {
		t.Errorf("hedges=%d hedgeWins=%d, want both > 0",
			rt.metrics.hedges.Load(), rt.metrics.hedgeWins.Load())
	}
}

// TestDeadlineShortCircuits: table-driven — a spent propagated deadline
// answers 504 without touching any backend; a generous one forwards and
// restamps a tightened budget downstream.
func TestDeadlineShortCircuits(t *testing.T) {
	cases := []struct {
		name        string
		deadlineMS  string
		wantCode    int
		wantHits    int64
		wantOrigin  string
		wantRestamp bool
	}{
		{"spent", "0", http.StatusGatewayTimeout, 0, OriginRouter, false},
		{"negative", "-40", http.StatusGatewayTimeout, 0, OriginRouter, false},
		{"generous", "5000", http.StatusOK, 1, "", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stamped atomic.Value
			sb := newStubBackend(t)
			sb.setHandler(func(w http.ResponseWriter, r *http.Request) {
				stamped.Store(r.Header.Get(DeadlineHeader))
				w.WriteHeader(http.StatusOK)
				fmt.Fprintln(w, `{"ok":true}`)
			})
			_, front := newTestRouter(t, Config{}, sb)

			req, err := http.NewRequest(http.MethodPost, front.URL+"/v1/bill",
				strings.NewReader(string(specBody(t, "site-deadline"))))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set(DeadlineHeader, tc.deadlineMS)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			out, _ := io.ReadAll(resp.Body)
			resp.Body.Close()

			if resp.StatusCode != tc.wantCode {
				t.Fatalf("deadline %s ms = %d %s, want %d", tc.deadlineMS, resp.StatusCode, out, tc.wantCode)
			}
			if got := sb.hits.Load(); got != tc.wantHits {
				t.Errorf("backend hits = %d, want %d (spent deadlines must not touch a backend)", got, tc.wantHits)
			}
			if got := resp.Header.Get(OriginHeader); got != tc.wantOrigin {
				t.Errorf("origin header = %q, want %q", got, tc.wantOrigin)
			}
			if tc.wantRestamp {
				v, _ := stamped.Load().(string)
				if v == "" {
					t.Fatal("forward missing the restamped deadline header")
				}
				var ms int
				fmt.Sscanf(v, "%d", &ms)
				if ms <= 0 || ms > 5000 {
					t.Errorf("restamped budget = %s ms, want in (0, 5000]", v)
				}
			}
		})
	}
}

// TestPerTryTimeoutEjectsHungBackend: a backend that accepts the
// connection and never answers trips the per-try timeout, counts as a
// breaker failure, and the request fails over — the gray failure the
// crash path alone cannot see.
func TestPerTryTimeoutEjectsHungBackend(t *testing.T) {
	body := specBody(t, "site-hung")
	hang := func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.ReadAll(r.Body) // EOF arms the server's disconnect watch
		<-r.Context().Done()
	}
	fast := func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, `{"ok":true}`)
	}

	stubs := []*stubBackend{newStubBackend(t), newStubBackend(t)}
	rt, front := newTestRouter(t, Config{
		FailureThreshold: 2,
		OpenTimeout:      time.Hour,
		RequestTimeout:   5 * time.Second,
		TryTimeoutFloor:  30 * time.Millisecond,
		TryTimeoutCeil:   60 * time.Millisecond,
		DisableHedge:     true, // isolate the per-try path from hedging
	}, stubs...)

	key, _ := routingKey(body)
	owner := Owner(rt.names, key)
	for _, sb := range stubs {
		if sb.ts.URL == owner {
			sb.setHandler(hang)
		} else {
			sb.setHandler(fast)
		}
	}

	for i := 0; i < 4; i++ {
		resp, out := postJSON(t, front.URL+"/v1/bill", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d through hung owner = %d %s, want failover 200", i, resp.StatusCode, out)
		}
	}
	if rt.metrics.tryTimeouts.Load() == 0 {
		t.Error("hung backend produced no per-try timeouts")
	}
	waitUntil(t, "the hung owner's breaker to open", func() bool {
		return rt.byName[owner].breaker.State().String() == "open"
	})
}

// TestBudgetGatesHedgesAndRetries: with a zero-burst-equivalent budget
// (tiny burst, tiny ratio) a storm of failing requests is not
// multiplied — the budget-exhausted counter rises and attempted stays
// close to offered.
func TestBudgetGatesHedgesAndRetries(t *testing.T) {
	sb := newStubBackend(t)
	sb.setHandler(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
	})
	spare := newStubBackend(t)
	spare.setHandler(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
	})
	rt, front := newTestRouter(t, Config{
		FailureThreshold: 1000,
		BudgetRatio:      0.1,
		BudgetBurst:      2,
		DisableHedge:     true,
	}, sb, spare)

	const offered = 40
	for i := 0; i < offered; i++ {
		resp, _ := postJSON(t, front.URL+"/v1/bill", specBody(t, "site-storm"))
		if resp.StatusCode != http.StatusBadGateway {
			t.Fatalf("storm request = %d, want relayed 502", resp.StatusCode)
		}
	}
	if rt.metrics.budgetExhausted.Load() == 0 {
		t.Error("storm never exhausted the retry budget")
	}
	attempted := sb.hits.Load() + spare.hits.Load()
	if maxAttempted := int64(offered + offered/10 + 2); attempted > maxAttempted {
		t.Errorf("attempted %d over %d offered exceeds the budget bound %d", attempted, offered, maxAttempted)
	}
	st := rt.budget.Stats()
	if st.Granted > uint64(offered/10+2) {
		t.Errorf("budget granted %d retries, bound is %d", st.Granted, offered/10+2)
	}
}

// TestCopyHeaderStripsHopByHop: table-driven — the RFC 9110 §7.6.1
// connection-level fields and any Connection-nominated header are
// consumed, end-to-end fields pass through.
func TestCopyHeaderStripsHopByHop(t *testing.T) {
	cases := []struct {
		name string
		key  string
		val  string
		want bool // survives the copy
	}{
		{"end-to-end content type", "Content-Type", "application/json", true},
		{"end-to-end custom", "X-Request-Id", "abc123", true},
		{"connection", "Connection", "keep-alive", false},
		{"keep-alive", "Keep-Alive", "timeout=5", false},
		{"transfer-encoding", "Transfer-Encoding", "chunked", false},
		{"te", "Te", "trailers", false},
		{"trailer", "Trailer", "Expires", false},
		{"upgrade", "Upgrade", "h2c", false},
		{"proxy-connection", "Proxy-Connection", "keep-alive", false},
		{"proxy-authorization", "Proxy-Authorization", "Basic Zm9v", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := http.Header{}
			src.Set(tc.key, tc.val)
			dst := http.Header{}
			copyHeader(dst, src)
			if got := dst.Get(tc.key) != ""; got != tc.want {
				t.Errorf("header %s survived=%v, want %v", tc.key, got, tc.want)
			}
		})
	}

	// Connection-nominated extension header is hop-by-hop by declaration.
	src := http.Header{}
	src.Set("Connection", "close, X-Internal-Token")
	src.Set("X-Internal-Token", "secret")
	src.Set("X-Request-Id", "keep-me")
	dst := http.Header{}
	copyHeader(dst, src)
	if dst.Get("X-Internal-Token") != "" {
		t.Error("Connection-nominated header must be stripped")
	}
	if dst.Get("X-Request-Id") != "keep-me" {
		t.Error("unrelated end-to-end header must survive")
	}
}

// TestProxyStripsHopByHopEndToEnd: a live round trip — the backend's
// hop-by-hop response headers never reach the client, and the client's
// never reach the backend.
func TestProxyStripsHopByHopEndToEnd(t *testing.T) {
	var sawKeepAlive atomic.Bool
	sb := newStubBackend(t)
	sb.setHandler(func(w http.ResponseWriter, r *http.Request) {
		sawKeepAlive.Store(r.Header.Get("Keep-Alive") != "")
		w.Header().Set("Keep-Alive", "timeout=60")
		w.Header().Set("X-Backend", "stub")
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, `{"ok":true}`)
	})
	_, front := newTestRouter(t, Config{}, sb)

	req, err := http.NewRequest(http.MethodPost, front.URL+"/v1/bill",
		strings.NewReader(string(specBody(t, "site-hop"))))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Keep-Alive", "timeout=5")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	if sawKeepAlive.Load() {
		t.Error("client's Keep-Alive forwarded upstream")
	}
	if resp.Header.Get("Keep-Alive") != "" {
		t.Error("backend's Keep-Alive relayed to the client")
	}
	if resp.Header.Get("X-Backend") != "stub" {
		t.Error("end-to-end response header lost in relay")
	}
}

// TestOriginHeaderTaxonomy: router-originated errors carry
// X-SCRoute-Origin: router; relayed upstream failures carry upstream.
func TestOriginHeaderTaxonomy(t *testing.T) {
	t.Run("router origin on dead fleet", func(t *testing.T) {
		sb := newStubBackend(t)
		_, front := newTestRouter(t, Config{FailureThreshold: 1, OpenTimeout: time.Hour}, sb)
		sb.ts.CloseClientConnections()
		sb.ts.Close()
		resp, _ := postJSON(t, front.URL+"/v1/bill", specBody(t, "site-origin"))
		if resp.StatusCode != http.StatusBadGateway {
			t.Fatalf("dead fleet = %d, want 502", resp.StatusCode)
		}
		if got := resp.Header.Get(OriginHeader); got != OriginRouter {
			t.Errorf("origin = %q, want %q", got, OriginRouter)
		}
	})
	t.Run("upstream origin on relayed 503", func(t *testing.T) {
		sb := newStubBackend(t)
		sb.setHandler(func(w http.ResponseWriter, _ *http.Request) {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":"draining"}`)
		})
		_, front := newTestRouter(t, Config{FailureThreshold: 10}, sb)
		resp, _ := postJSON(t, front.URL+"/v1/bill", specBody(t, "site-origin-up"))
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("relay = %d, want 503", resp.StatusCode)
		}
		if got := resp.Header.Get(OriginHeader); got != OriginUpstream {
			t.Errorf("origin = %q, want %q", got, OriginUpstream)
		}
	})
}

// TestPollJitterSpread: the jittered poll interval stays within ±10%
// and actually varies, so fleet probes cannot stay phase-locked.
func TestPollJitterSpread(t *testing.T) {
	rng := newPollRNG("http://backend-a:9101")
	base := time.Second
	seen := map[time.Duration]bool{}
	for i := 0; i < 64; i++ {
		d := jitteredInterval(base, rng)
		if d < 900*time.Millisecond || d > 1100*time.Millisecond {
			t.Fatalf("jittered interval %s outside ±10%% of %s", d, base)
		}
		seen[d] = true
	}
	if len(seen) < 32 {
		t.Errorf("only %d distinct intervals in 64 draws; jitter looks constant", len(seen))
	}
}

// TestPollLocalErrorDoesNotPenalize: a backend URL that cannot form a
// request (bad scheme) must not trip the breaker — a local
// construction error says nothing about backend health.
func TestPollLocalErrorDoesNotPenalize(t *testing.T) {
	rt, err := NewRouter(Config{
		Backends:         []string{"http://bad host"}, // space: NewRequest fails locally
		FailureThreshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := rt.byName["http://bad host"]
	for i := 0; i < 5; i++ {
		rt.pollOnce(context.Background(), b)
	}
	if st := b.breaker.State(); st.String() != "closed" {
		t.Fatalf("local construction error tripped the breaker (state %s)", st)
	}
	if st := b.breaker.Stats(); st.Failures != 0 {
		t.Fatalf("local construction error recorded %d breaker failures, want 0", st.Failures)
	}
}

// TestWaitDrainsLoserSettlement pins the goroleak fix in
// cancelAndDrain: the loser-settlement goroutine is registered on the
// router's WaitGroup, so Wait() holds shutdown open until every hedge
// loser's outcome has landed — and returns promptly once they have,
// because the losers' contexts were already canceled.
func TestWaitDrainsLoserSettlement(t *testing.T) {
	body := specBody(t, "site-wait")

	hang := func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.ReadAll(r.Body)
		<-r.Context().Done()
	}
	fast := func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, `{"ok":true}`)
	}

	stubs := []*stubBackend{newStubBackend(t), newStubBackend(t)}
	rt, front := newTestRouter(t, Config{
		FailureThreshold: 50,
		RequestTimeout:   10 * time.Second,
		HedgeDelayFloor:  20 * time.Millisecond,
	}, stubs...)

	key, _ := routingKey(body)
	owner := Owner(rt.names, key)
	for _, sb := range stubs {
		if sb.ts.URL == owner {
			sb.setHandler(hang)
		} else {
			sb.setHandler(fast)
		}
	}

	resp, out := postJSON(t, front.URL+"/v1/bill", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged request = %d %s, want the hedge's 200", resp.StatusCode, out)
	}
	if rt.metrics.hedges.Load() == 0 {
		t.Fatal("no hedge fired; the settle goroutine was never exercised")
	}

	done := make(chan struct{})
	go func() {
		rt.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("Wait did not return; loser settlement never drained")
	}
}
