package units

import (
	"math"
	"testing"
)

// FuzzParsePower checks the quantity parser never panics and that
// accepted values are finite.
func FuzzParsePower(f *testing.F) {
	for _, seed := range []string{
		"12.5 MW", "950kW", "-3 W", "1e3 kW", "", "MW", "12.5",
		"NaN kW", "Inf MW", "1 gw", "  42   kw  ", "1.2.3 MW",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		p, err := ParsePower(input)
		if err != nil {
			return
		}
		// strconv accepts "NaN"/"Inf"; reject only a panic here, but
		// assert that ordinary numeric inputs stay numeric.
		_ = math.IsNaN(float64(p))
	})
}

// FuzzParseEnergy mirrors FuzzParsePower for energies.
func FuzzParseEnergy(f *testing.F) {
	for _, seed := range []string{"1.2 GWh", "42 kWh", "x Wh", "", "9e99 MWh"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if _, err := ParseEnergy(input); err != nil {
			return
		}
	})
}
