// Package timerstop ensures timers and tickers in the fleet path are
// released on every exit path.
//
// Invariant guarded: the route→serve fleet path arms a timer per
// request attempt (hedge delay, per-try timeout, poll interval,
// injected latency). A time.Timer that is never Stopped holds its
// runtime entry — and, for AfterFunc, a pending callback that can fire
// into torn-down state — until it expires; at fleet request rates that
// is an unbounded leak and a spurious-cancel source. Three rules:
//
//  1. A variable bound to time.NewTimer / time.NewTicker /
//     time.AfterFunc must have Stop called on every path out of the
//     function (a deferred Stop, including inside a deferred literal,
//     covers all exits from that point on).
//  2. time.After inside a loop is reported: each iteration arms a
//     timer that survives until it fires even when the select moved
//     on. Use one NewTimer and Stop/Reset it.
//  3. time.Tick is reported anywhere in scope: the ticker it returns
//     can never be stopped.
//  4. A creation whose result is discarded (expression statement or
//     assignment to _) is reported: nothing can ever Stop it.
//
// Blessed escapes: handing the timer away transfers the obligation —
// returning it, passing it to a call, sending it on a channel, or
// storing it anywhere that is not a simple local variable stops the
// tracking (the new owner is accountable). t.Reset and <-t.C keep the
// obligation on t. A true fire-and-release one-shot can be blessed
// with //lint:scvet-ignore timerstop <reason>.
//
// The dataflow (branch copies, union joins, terminating branches) is
// the shared internal/analysis/flow walk also used by lockheld.
package timerstop

import (
	"go/ast"
	"go/token"

	"repro/internal/analysis"
	"repro/internal/analysis/flow"
)

var Analyzer = &analysis.Analyzer{
	Name: "timerstop",
	Doc: "require time.NewTimer/NewTicker/AfterFunc results to be Stopped on all " +
		"exit paths in the fleet packages; forbid time.After in loops and time.Tick",
	Run: run,
}

// scopes are the fleet-path packages where per-request timers churn.
var scopes = []string{
	"internal/route",
	"internal/serve",
	"internal/feed",
	"internal/chaos",
	"internal/loadgen",
	"internal/resilience",
}

func run(pass *analysis.Pass) error {
	if !analysis.InScope(pass.Pkg, scopes...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBody(pass, n.Body)
				}
			case *ast.FuncLit:
				// Literals run in a context of their own; each body is
				// checked as its own function.
				checkBody(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// checkBody runs the stop-on-all-paths dataflow plus the loop-local
// time.After / time.Tick scan over one function body.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	c := &checker{
		pass:     pass,
		created:  map[string]creation{},
		reported: map[token.Pos]bool{},
	}
	flow.Walk(body, flow.State{}, flow.Hooks{
		Stmt:     c.stmt,
		Expr:     c.uses,
		Exit:     c.exit,
		WalkComm: true,
	})
	checkLoops(pass, body, false)
}

// creation remembers where and how a tracked timer was made, for the
// report.
type creation struct {
	pos  token.Pos
	kind string // "time.NewTimer", "time.NewTicker", "time.AfterFunc"
}

type checker struct {
	pass     *analysis.Pass
	created  map[string]creation
	reported map[token.Pos]bool // one report per creation site
}

// timerCall reports whether the call is a tracked creation, and which.
func (c *checker) timerCall(e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	fn := analysis.CalleeFunc(c.pass.TypesInfo, call)
	switch {
	case analysis.FuncIs(fn, "time", "NewTimer"):
		return "time.NewTimer", true
	case analysis.FuncIs(fn, "time", "NewTicker"):
		return "time.NewTicker", true
	case analysis.FuncIs(fn, "time", "AfterFunc"):
		return "time.AfterFunc", true
	}
	return "", false
}

// stopCall returns the tracked variable a t.Stop() call releases, if
// the call is one.
func stopCall(e ast.Expr, st flow.State) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Stop" {
		return "", false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || !st[id.Name] {
		return "", false
	}
	return id.Name, true
}

func (c *checker) stmt(s ast.Stmt, st flow.State) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		// Scan the right-hand sides for uses of already-tracked timers
		// first (t2 := t is a handoff), then begin tracking simple
		// `t := time.NewTimer(...)` bindings.
		for _, r := range s.Rhs {
			c.uses(r, st)
		}
		if len(s.Lhs) == len(s.Rhs) {
			for i, r := range s.Rhs {
				kind, ok := c.timerCall(r)
				if !ok {
					continue
				}
				id, isIdent := s.Lhs[i].(*ast.Ident)
				if isIdent && id.Name == "_" {
					c.discarded(r.Pos(), kind)
					continue
				}
				if !isIdent {
					continue // stored away: the new owner is accountable
				}
				st[id.Name] = true
				c.created[id.Name] = creation{pos: r.Pos(), kind: kind}
			}
		}
		for _, l := range s.Lhs {
			if _, ok := l.(*ast.Ident); !ok {
				c.uses(l, st) // index/field targets may consume a timer
			}
		}
		return true
	case *ast.ExprStmt:
		if name, ok := stopCall(s.X, st); ok {
			delete(st, name)
			return true
		}
		if kind, ok := c.timerCall(s.X); ok {
			c.discarded(s.X.Pos(), kind)
			return true
		}
	case *ast.DeferStmt:
		// A deferred Stop (directly or inside a deferred literal)
		// releases on every exit from here on; any other deferred use
		// of a tracked timer is a handoff.
		c.uses(s.Call.Fun, st)
		for _, a := range s.Call.Args {
			c.uses(a, st)
		}
		return true
	}
	return false
}

// uses scans an expression subtree for uses of tracked timers:
// t.Stop discharges the obligation, t.Reset and t.C keep it, and any
// other appearance of t hands the timer (and the obligation) away.
func (c *checker) uses(e ast.Expr, st flow.State) {
	if e == nil || len(st) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			id, ok := ast.Unparen(n.X).(*ast.Ident)
			if !ok || !st[id.Name] {
				return true
			}
			switch n.Sel.Name {
			case "Stop":
				delete(st, id.Name)
			case "Reset", "C":
				// still ours, still owed a Stop
			default:
				delete(st, id.Name)
			}
			return false
		case *ast.Ident:
			if st[n.Name] {
				delete(st, n.Name) // bare use: escape / ownership transfer
			}
		}
		return true
	})
}

// discarded reports a timer creation whose result is thrown away:
// nothing can ever Stop it. A deliberate fire-and-release one-shot is
// blessed with a reasoned scvet-ignore directive.
func (c *checker) discarded(pos token.Pos, kind string) {
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos,
		"%s result is discarded, so nothing can Stop it; keep the handle, or bless a true one-shot with //lint:scvet-ignore timerstop <reason>",
		kind)
}

// exit reports every timer still owed a Stop at a point where control
// leaves the function.
func (c *checker) exit(pos token.Pos, st flow.State) {
	for name := range st {
		cr, ok := c.created[name]
		if !ok || c.reported[cr.pos] {
			continue
		}
		c.reported[cr.pos] = true
		c.pass.Reportf(cr.pos,
			"%s result %s is not Stopped on every exit path; leak per call at fleet rates — defer %s.Stop() or Stop before returning",
			cr.kind, name, name)
	}
}

// checkLoops reports time.After used inside a loop and time.Tick used
// anywhere, walking nested loops but not function literals (each
// literal body gets its own pass).
func checkLoops(pass *analysis.Pass, n ast.Node, inLoop bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false // literal bodies get their own pass
		case *ast.ForStmt:
			checkLoops(pass, m.Body, true)
			if m.Init != nil {
				checkLoops(pass, m.Init, true)
			}
			if m.Cond != nil {
				checkLoops(pass, m.Cond, true)
			}
			if m.Post != nil {
				checkLoops(pass, m.Post, true)
			}
			return false
		case *ast.RangeStmt:
			checkLoops(pass, m.Body, true)
			return false
		case *ast.CallExpr:
			fn := analysis.CalleeFunc(pass.TypesInfo, m)
			switch {
			case analysis.FuncIs(fn, "time", "Tick"):
				pass.Reportf(m.Pos(), "time.Tick leaks its ticker (no way to Stop it); use time.NewTicker and defer Stop")
			case inLoop && analysis.FuncIs(fn, "time", "After"):
				pass.Reportf(m.Pos(), "time.After in a loop arms a new timer per iteration that lives until it fires; hoist a time.NewTimer and Stop/Reset it")
			}
		}
		return true
	})
}
