package optimize_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/optimize"
)

// TestSurveySweepShort runs the acceptance sweep with a reduced search
// so the suite stays fast; the full 2000-candidate table is pinned by
// make optimize-accept against ACCEPTANCE_optimize.md. Even the short
// sweep must satisfy the acceptance criterion: strictly cheaper on
// every demand-charge/powerband contract.
func TestSurveySweepShort(t *testing.T) {
	flex := optimize.Flexibility{DeferrableFraction: 0.10, PartialFraction: 0.20}
	opts := optimize.Options{Seed: 1, Candidates: 200}
	outcomes, err := optimize.SurveySweep(context.Background(), flex, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 10 {
		t.Fatalf("sites = %d, want 10", len(outcomes))
	}
	if err := optimize.CheckSweep(outcomes); err != nil {
		t.Fatal(err)
	}
	demandSide := 0
	for _, o := range outcomes {
		if o.DemandSide {
			demandSide++
		}
		if o.OptimizedTotal > o.BaselineTotal {
			t.Errorf("site %d: optimized %.2f above baseline %.2f", o.Site, o.OptimizedTotal, o.BaselineTotal)
		}
	}
	if demandSide != 8 {
		t.Errorf("demand-side sites = %d, want 8 (all but sites 8 and 10)", demandSide)
	}

	table := optimize.RenderSurveyTable(outcomes, flex, opts)
	for _, want := range []string{"| Site |", "| 1 | DC+Fix+ToU |", "| 10 | Fix |", "seed 1, 200 candidates"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}
