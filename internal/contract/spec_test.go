package contract

import (
	"strings"
	"testing"
	"time"

	"repro/internal/timeseries"
	"repro/internal/units"
)

func fullSpec() *Spec {
	return &Spec{
		Name: "site-x",
		Tariffs: []TariffSpec{
			{Type: "fixed", Rate: 0.08},
			{Type: "tou", DayRate: 0.20, NightRate: 0.05, DayFrom: 7, DayTo: 21},
		},
		DemandCharges: []DemandChargeSpec{{PricePerKW: 12}},
		Powerbands:    []PowerbandSpec{{LowerKW: 1000, UpperKW: 9000, UnderPenalty: 0.5, OverPenalty: 1}},
		Emergencies:   []EmergencySpec{{Name: "grid-emergency", CapKW: 5000, NoticeMinutes: 30, Penalty: 2}},
		Fees:          []FeeSpec{{Name: "metering", Amount: 500}},
	}
}

func TestSpecBuildFull(t *testing.T) {
	c, err := fullSpec().Build(BuildContext{})
	if err != nil {
		t.Fatal(err)
	}
	p := Classify(c)
	if !p.FixedTariff || !p.TOUTariff || !p.DemandCharge || !p.Powerband || !p.EmergencyDR {
		t.Errorf("profile = %+v", p)
	}
	if c.Emergencies[0].Notice != 30*time.Minute {
		t.Errorf("notice = %v", c.Emergencies[0].Notice)
	}
	if c.Fees[0].Amount != units.CurrencyUnits(500) {
		t.Errorf("fee = %v", c.Fees[0].Amount)
	}
}

func TestSpecBuildDynamic(t *testing.T) {
	feed := timeseries.ConstantPrice(t0, time.Hour, 24, 0.10)
	s := &Spec{
		Name:    "dyn",
		Tariffs: []TariffSpec{{Type: "dynamic", Multiplier: 1.2, Adder: 0.01}},
	}
	c, err := s.Build(BuildContext{Feed: feed})
	if err != nil {
		t.Fatal(err)
	}
	if !Classify(c).DynamicTariff {
		t.Error("should classify dynamic")
	}
	// Default multiplier.
	s2 := &Spec{Name: "dyn2", Tariffs: []TariffSpec{{Type: "dynamic"}}}
	c2, err := s2.Build(BuildContext{Feed: feed})
	if err != nil {
		t.Fatal(err)
	}
	got := c2.Tariffs[0].PriceAt(t0)
	if got != 0.10 {
		t.Errorf("default multiplier price = %v", got)
	}
}

func TestSpecBuildSeasonalTOU(t *testing.T) {
	s := &Spec{
		Name: "seasonal",
		Tariffs: []TariffSpec{
			{Type: "tou", DayRate: 0.18, NightRate: 0.06, SummerDayRate: 0.25},
		},
	}
	c, err := s.Build(BuildContext{})
	if err != nil {
		t.Fatal(err)
	}
	// July weekday noon should price at the summer rate (default 8-20 band).
	july := time.Date(2016, time.July, 5, 12, 0, 0, 0, time.UTC)
	if got := c.Tariffs[0].PriceAt(july); got != 0.25 {
		t.Errorf("summer day price = %v", got)
	}
}

func TestSpecBuildErrors(t *testing.T) {
	cases := []*Spec{
		{},          // no name
		{Name: "x"}, // no tariffs
		{Name: "x", Tariffs: []TariffSpec{{Type: "bogus"}}},
		{Name: "x", Tariffs: []TariffSpec{{Type: "dynamic"}}}, // no feed
		{Name: "x", Tariffs: []TariffSpec{{Type: "fixed", Rate: -1}}},
		{Name: "x", Tariffs: []TariffSpec{{Type: "fixed", Rate: 0.1}},
			DemandCharges: []DemandChargeSpec{{PricePerKW: 10, Method: "bogus"}}},
		{Name: "x", Tariffs: []TariffSpec{{Type: "fixed", Rate: 0.1}},
			Powerbands: []PowerbandSpec{{UpperKW: -5}}},
		{Name: "x", Tariffs: []TariffSpec{{Type: "fixed", Rate: 0.1}},
			Emergencies: []EmergencySpec{{CapKW: -1}}},
	}
	for i, s := range cases {
		if _, err := s.Build(BuildContext{}); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestSpecBuildCPP(t *testing.T) {
	s := &Spec{
		Name: "cpp-site",
		Tariffs: []TariffSpec{
			{Type: "cpp", Rate: 0.08, CriticalRate: 1.2, MaxCriticalEvents: 10},
		},
	}
	c, err := s.Build(BuildContext{})
	if err != nil {
		t.Fatal(err)
	}
	// CPP classifies as dynamic.
	if !Classify(c).DynamicTariff {
		t.Error("CPP should classify dynamic")
	}
	// Invalid CPP parameters fail.
	bad := &Spec{Name: "x", Tariffs: []TariffSpec{{Type: "cpp", Rate: 0.08, CriticalRate: 0}}}
	if _, err := bad.Build(BuildContext{}); err == nil {
		t.Error("zero critical rate should fail")
	}
	badBase := &Spec{Name: "x", Tariffs: []TariffSpec{{Type: "cpp", Rate: -1, CriticalRate: 1}}}
	if _, err := badBase.Build(BuildContext{}); err == nil {
		t.Error("negative base rate should fail")
	}
}

func TestSpecDemandChargeMethods(t *testing.T) {
	for _, m := range []string{"", "n-peak-average", "single-peak", "ratchet"} {
		spec := DemandChargeSpec{PricePerKW: 10, Method: m, NPeaks: 3, RatchetFraction: 0.8}
		if _, err := spec.build(); err != nil {
			t.Errorf("method %q: %v", m, err)
		}
	}
}

func TestSpecPowerbandUpperOnly(t *testing.T) {
	pb, err := (PowerbandSpec{UpperKW: 9000, OverPenalty: 1}).build()
	if err != nil {
		t.Fatal(err)
	}
	if pb.HasLower {
		t.Error("upper-only band should not have a lower limit")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	data, err := EncodeSpec(fullSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "site-x") {
		t.Error("encoded JSON should carry name")
	}
	back, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "site-x" || len(back.Tariffs) != 2 || len(back.Emergencies) != 1 {
		t.Errorf("round trip = %+v", back)
	}
	if _, err := ParseSpec([]byte("{bad json")); err == nil {
		t.Error("bad JSON should fail")
	}
}
