// Package units is a fixture stub of the repo's money types: just
// enough surface for the moneyfloat fixtures to type-check.
package units

type Money int64

type EnergyPrice float64

type DemandPrice float64

func MoneyFromFloat(v float64) Money { return Money(v * 1e6) }

func Cents(c int64) Money { return Money(c * 10_000) }

func CurrencyUnits(u int64) Money { return Money(u * 1_000_000) }

func (m Money) Float() float64 { return float64(m) / 1e6 }
