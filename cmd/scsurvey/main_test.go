package main

import "testing"

func TestRunModes(t *testing.T) {
	cases := []struct {
		name          string
		table, figure int
		exp           string
		all           bool
		format        format
		err           bool
	}{
		{name: "table1", table: 1},
		{name: "table2", table: 2},
		{name: "table2-md", table: 2, format: formatMarkdown},
		{name: "table2-csv", table: 2, format: formatCSV},
		{name: "figure1", figure: 1},
		{name: "exp", exp: "E3"},
		{name: "exp-md", exp: "E3", format: formatMarkdown},
		{name: "exp-csv", exp: "E3", format: formatCSV},
		{name: "figure-exp-md", exp: "F1", format: formatMarkdown},
		{name: "bad exp", exp: "E99", err: true},
		{name: "nothing", err: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := run(c.table, c.figure, c.exp, c.all, c.format)
			if (err != nil) != c.err {
				t.Errorf("run(%+v) error = %v", c, err)
			}
		})
	}
}
