// Package sweep is outside the ctxloop scopes: experiment sweeps and
// CLIs may iterate series without a cancellation protocol.
package sweep

import (
	"context"

	"internal/timeseries"
)

func Total(ctx context.Context, load *timeseries.PowerSeries) float64 {
	var kwh float64
	for i := 0; i < load.Len(); i++ {
		kwh += load.At(i)
	}
	return kwh
}
