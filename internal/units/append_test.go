package units

import (
	"math"
	"testing"
)

// appendSweep is the shared value sweep for the byte-identity tests:
// every SI bucket, both signs, bucket edges, sub-unit values and
// specials.
var appendSweep = []float64{
	0, 0.001, 0.04, 0.5, 0.999, 0.9999,
	1, 1.005, 2.675, 40, 999.994, 999.995, 999.999,
	1000, 1234.5, 999_999.4, 999_999.5,
	1e6, 1.23456e6, 4.2e7,
	-0.3, -1, -40.25, -999.996, -1000, -12_500, -1e6, -3.7e6,
	12_000, 12_345.678, 58_000, 700, 0.7,
	math.SmallestNonzeroFloat64, math.MaxFloat64,
	math.Inf(1), math.Inf(-1), math.NaN(),
	math.Copysign(0, -1),
}

func TestAppendPowerMatchesString(t *testing.T) {
	var buf [40]byte
	for _, v := range appendSweep {
		p := Power(v)
		want := p.String()
		got := string(AppendPower(buf[:0], p))
		if got != want {
			t.Errorf("AppendPower(%v) = %q, String() = %q", v, got, want)
		}
	}
}

func TestAppendEnergyMatchesString(t *testing.T) {
	var buf [40]byte
	for _, v := range appendSweep {
		e := Energy(v)
		want := e.String()
		got := string(AppendEnergy(buf[:0], e))
		if got != want {
			t.Errorf("AppendEnergy(%v) = %q, String() = %q", v, got, want)
		}
	}
}

func TestAppendPowerMatchesStringDense(t *testing.T) {
	// Dense sweep across the kW/MW range actual bills land in.
	var buf [40]byte
	for i := -200_000; i < 200_000; i += 37 {
		p := Power(float64(i) * 0.13)
		if got, want := string(AppendPower(buf[:0], p)), p.String(); got != want {
			t.Fatalf("AppendPower(%v) = %q, String() = %q", float64(p), got, want)
		}
	}
}

func TestAppendZeroAlloc(t *testing.T) {
	buf := make([]byte, 0, 40)
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendPower(buf[:0], 12_345.6)
		buf = AppendEnergy(buf[:0], 8_400_000)
	})
	if allocs != 0 {
		t.Fatalf("append helpers allocated %.1f times per run, want 0", allocs)
	}
}
