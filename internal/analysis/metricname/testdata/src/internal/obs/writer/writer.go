// Package writer sits under internal/obs, the one package allowed to
// write the _bucket/_sum/_count series by hand — it IS the histogram
// exposition implementation. Name-pattern rules still apply here.
package writer

import (
	"fmt"
	"io"
)

func expose(w io.Writer) {
	fmt.Fprintf(w, "scserved_request_seconds_bucket{le=\"+Inf\"} 9\n")
	fmt.Fprintf(w, "scserved_request_seconds_sum 1.25\n")
	fmt.Fprintf(w, "scserved_request_seconds_count 9\n")
	fmt.Fprintf(w, "scserved_Bad_sum 0\n") // want `metric name "scserved_Bad_sum" does not match`
}
