package serve

// POST /v1/bill/batch: one load profile × N contract specs, or N load
// profiles × one contract spec, billed as a single admitted request.
// Each distinct input is parsed once (loads materialized up front,
// specs parsed and content-hashed once, engines compiled once through
// the LRU) and evaluation fans across the contract batch pool. Every
// item's body is byte-identical to what a sequential /v1/bill call
// with the same inputs would have returned — the envelope is assembled
// by hand so rendered bills embed verbatim, never re-marshalled — and
// degraded feed resolutions mark only the items they affected.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/contract"
	"repro/internal/obs"
	"repro/internal/timeseries"
)

// maxBatchItems bounds one batch request: enough for a year of monthly
// re-bids or a healthy candidate sweep, small enough that a single
// request cannot monopolize the service.
const maxBatchItems = 64

// BatchRequest is the POST /v1/bill/batch body. Exactly one of
// Contract/Contracts and exactly one of Load/Loads must be set, and at
// most one side may be plural.
type BatchRequest struct {
	Contract  json.RawMessage   `json:"contract,omitempty"`
	Contracts []json.RawMessage `json:"contracts,omitempty"`
	Load      *LoadSpec         `json:"load,omitempty"`
	Loads     []LoadSpec        `json:"loads,omitempty"`
	Input     *InputSpec        `json:"input,omitempty"`
	Feed      *FeedSpec         `json:"feed,omitempty"`
}

// shape validates the request and returns the spec and load lists.
func (req *BatchRequest) shape() (specs []json.RawMessage, loads []LoadSpec, err error) {
	switch {
	case len(req.Contract) > 0 && len(req.Contracts) > 0:
		return nil, nil, errors.New("batch: set contract or contracts, not both")
	case len(req.Contract) > 0:
		specs = []json.RawMessage{req.Contract}
	case len(req.Contracts) > 0:
		specs = req.Contracts
	default:
		return nil, nil, errors.New("batch: missing contract or contracts")
	}
	switch {
	case req.Load != nil && len(req.Loads) > 0:
		return nil, nil, errors.New("batch: set load or loads, not both")
	case req.Load != nil:
		loads = []LoadSpec{*req.Load}
	case len(req.Loads) > 0:
		loads = req.Loads
	default:
		return nil, nil, errors.New("batch: missing load or loads")
	}
	if len(specs) > 1 && len(loads) > 1 {
		return nil, nil, errors.New("batch: one load x N contracts or N loads x one contract, not N x M")
	}
	if n := max(len(specs), len(loads)); n > maxBatchItems {
		return nil, nil, fmt.Errorf("batch: %d items exceeds the limit of %d", n, maxBatchItems)
	}
	return specs, loads, nil
}

// batchItemResult is one item's rendered outcome.
type batchItemResult struct {
	status   int
	degraded bool
	body     []byte
}

func batchErrorBody(msg string) []byte {
	data, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{msg})
	return data
}

// batchEvalStatus maps a per-item evaluation error onto the status and
// body a sequential /v1/bill call would have produced (writeEvalError).
func batchEvalStatus(err error) (int, []byte) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return http.StatusGatewayTimeout, batchErrorBody("evaluation exceeded the request deadline")
	}
	return http.StatusBadRequest, batchErrorBody(err.Error())
}

func (s *Server) handleBillBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	specs, loadSpecs, err := req.shape()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	n := max(len(specs), len(loadSpecs))
	monthly := r.URL.Query().Get("monthly") == "1"
	s.metrics.batchRequests.Add(1)
	s.metrics.batchItems.Add(uint64(n))

	// Materialize every distinct load once.
	loads := make([]*timeseries.PowerSeries, len(loadSpecs))
	loadErrs := make([]error, len(loadSpecs))
	for i := range loadSpecs {
		loads[i], loadErrs[i] = resolveLoad(loadSpecs[i])
	}
	// Parse every distinct spec once (repeated raw bytes share a parse).
	parsed := make([]parsedSpec, len(specs))
	specErrs := make([]error, len(specs))
	seen := make(map[string]int, len(specs))
	for i, raw := range specs {
		if j, ok := seen[string(raw)]; ok {
			parsed[i], specErrs[i] = parsed[j], specErrs[j]
			continue
		}
		parsed[i], specErrs[i] = parseSpecRaw(raw)
		seen[string(raw)] = i
	}

	// Per-item engine resolution. The LRU makes repeated (spec, feed)
	// pairs compile once; the flat-feed key depends on the load span, so
	// resolution is per item even in one-contract mode.
	results := make([]batchItemResult, n)
	items := make([]contract.BatchItem, n)
	frs := make([]feedResolution, n)
	var worst feedResolution
	for i := 0; i < n; i++ {
		si, li := 0, 0
		if len(specs) > 1 {
			si = i
		}
		if len(loadSpecs) > 1 {
			li = i
		}
		switch {
		case specErrs[si] != nil:
			results[i] = batchItemResult{status: http.StatusBadRequest, body: batchErrorBody(specErrs[si].Error())}
		case loadErrs[li] != nil:
			results[i] = batchItemResult{status: http.StatusBadRequest, body: batchErrorBody(loadErrs[li].Error())}
		default:
			eng, fr, err := s.engineForSpec(r.Context(), parsed[si], req.Feed, loads[li])
			if err != nil {
				results[i] = batchItemResult{status: http.StatusBadRequest, body: batchErrorBody(err.Error())}
				continue
			}
			frs[i] = fr
			worst = worst.worse(fr)
			items[i] = contract.BatchItem{Engine: eng, Load: loads[li]}
		}
	}

	if hook := s.billHook; hook != nil {
		hook(r.Context())
	}

	// Evaluate the resolvable items across the batch pool.
	endEval := obs.Span(r.Context(), stageBatchEvaluate)
	outcomes := contract.BillBatch(r.Context(), items, resolveInput(req.Input), contract.BatchOptions{
		Monthly:      monthly,
		Workers:      s.cfg.MaxConcurrent,
		MonthWorkers: s.cfg.MonthWorkers,
	})
	endEval()

	// Encode per item: exactly the bytes a sequential /v1/bill response
	// would carry (markDegraded splice included).
	for i := range results {
		if results[i].status != 0 {
			continue
		}
		endEncode := obs.Span(r.Context(), stageBatchEncode)
		results[i] = s.encodeBatchItem(items[i].Engine, outcomes[i], frs[i], monthly)
		endEncode()
	}

	s.noteFeed(w, worst)
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(renderBatchEnvelope(results))
}

// encodeBatchItem renders one evaluated item.
func (s *Server) encodeBatchItem(eng *contract.Engine, out contract.BatchOutcome, fr feedResolution, monthly bool) batchItemResult {
	if out.Err != nil {
		status, body := batchEvalStatus(out.Err)
		return batchItemResult{status: status, body: body}
	}
	if monthly {
		body, err := monthlyBillBody(eng, out.Months, fr)
		if err != nil {
			return batchItemResult{status: http.StatusInternalServerError, body: batchErrorBody(err.Error())}
		}
		return batchItemResult{status: http.StatusOK, degraded: fr.degraded(), body: body}
	}
	body, err := out.Bill.JSON()
	if err != nil {
		return batchItemResult{status: http.StatusInternalServerError, body: batchErrorBody(err.Error())}
	}
	if fr.degraded() {
		body = markDegraded(body, fr.reason)
	}
	return batchItemResult{status: http.StatusOK, degraded: fr.degraded(), body: body}
}

// renderBatchEnvelope assembles the response by hand so item bodies
// embed verbatim — encoding/json would re-indent the nested documents
// and break per-item byte identity with sequential responses.
func renderBatchEnvelope(results []batchItemResult) []byte {
	var buf bytes.Buffer
	total := 0
	for _, it := range results {
		total += len(it.body)
	}
	buf.Grow(total + 64*len(results) + 64)
	buf.WriteString("{\n  \"count\": ")
	buf.WriteString(strconv.Itoa(len(results)))
	buf.WriteString(",\n  \"items\": [")
	for i, it := range results {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteString("\n    {\"status\": ")
		buf.WriteString(strconv.Itoa(it.status))
		if it.degraded {
			buf.WriteString(", \"degraded\": true")
		}
		buf.WriteString(", \"body\": ")
		buf.Write(it.body)
		buf.WriteByte('}')
	}
	buf.WriteString("\n  ]\n}\n")
	return buf.Bytes()
}
