package contingency

// JSON-serializable contingency-plan specifications, so plans can live
// in version control next to the contracts they protect and be executed
// by cmd/scplan.

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/dr"
	"repro/internal/storage"
	"repro/internal/units"
)

// PlanSpec is the serializable form of a Plan.
type PlanSpec struct {
	Name   string      `json:"name"`
	Levels []LevelSpec `json:"levels"`
}

// LevelSpec configures one escalation level.
type LevelSpec struct {
	Name string `json:"name"`
	// Trigger is "price-above", "grid-stress", "emergency-declared" or
	// "own-load-above".
	Trigger string `json:"trigger"`
	// PriceThreshold applies to price-above (currency/kWh).
	PriceThreshold float64 `json:"price_threshold,omitempty"`
	// PowerBudgetKW applies to own-load-above.
	PowerBudgetKW float64 `json:"power_budget_kw,omitempty"`
	// Strategy configures the response.
	Strategy StrategySpec `json:"strategy"`
}

// StrategySpec configures a dr.Strategy. Type selects the variant:
// "cap" (CapKW), "shed" (Fraction), "shift" (Fraction, RecoveryMinutes),
// "gen" (CapacityKW, FuelCost), or "storage" (CapacityKWh, MaxChargeKW,
// MaxDischargeKW, Efficiency, CycleCost).
type StrategySpec struct {
	Type string `json:"type"`
	// Common knobs.
	OpCost float64 `json:"op_cost,omitempty"`
	// cap
	CapKW float64 `json:"cap_kw,omitempty"`
	// shed / shift
	Fraction        float64 `json:"fraction,omitempty"`
	RecoveryMinutes int     `json:"recovery_minutes,omitempty"`
	// gen
	CapacityKW float64 `json:"capacity_kw,omitempty"`
	FuelCost   float64 `json:"fuel_cost,omitempty"`
	// storage
	CapacityKWh    float64 `json:"capacity_kwh,omitempty"`
	MaxChargeKW    float64 `json:"max_charge_kw,omitempty"`
	MaxDischargeKW float64 `json:"max_discharge_kw,omitempty"`
	Efficiency     float64 `json:"efficiency,omitempty"`
	CycleCost      float64 `json:"cycle_cost,omitempty"`
}

// Build turns the spec into an executable strategy.
func (s StrategySpec) Build() (dr.Strategy, error) {
	switch s.Type {
	case "cap":
		return &dr.CapStrategy{
			Cap: units.Power(s.CapKW), OpCostPerKWh: units.EnergyPrice(s.OpCost)}, nil
	case "shed":
		return &dr.ShedStrategy{
			Fraction: s.Fraction, OpCostPerKWh: units.EnergyPrice(s.OpCost)}, nil
	case "shift":
		rec := s.RecoveryMinutes
		if rec == 0 {
			rec = 240
		}
		return &dr.ShiftStrategy{
			Fraction: s.Fraction, RecoverySpan: time.Duration(rec) * time.Minute,
			OpCostPerKWh: units.EnergyPrice(s.OpCost)}, nil
	case "gen":
		return &dr.GenStrategy{
			Capacity: units.Power(s.CapacityKW), FuelCostPerKWh: units.EnergyPrice(s.FuelCost)}, nil
	case "storage":
		eff := s.Efficiency
		if eff == 0 {
			eff = 0.9
		}
		return &dr.StorageStrategy{
			Battery: &storage.Battery{
				Capacity:            units.Energy(s.CapacityKWh),
				MaxCharge:           units.Power(s.MaxChargeKW),
				MaxDischarge:        units.Power(s.MaxDischargeKW),
				RoundTripEfficiency: eff,
				InitialSoC:          1,
			},
			CycleCostPerKWh: units.EnergyPrice(s.CycleCost),
		}, nil
	default:
		return nil, fmt.Errorf("contingency: unknown strategy type %q", s.Type)
	}
}

// Build turns the spec into an executable plan.
func (ps *PlanSpec) Build() (*Plan, error) {
	if ps.Name == "" {
		return nil, errors.New("contingency: plan spec needs a name")
	}
	plan := &Plan{Name: ps.Name}
	for i, ls := range ps.Levels {
		trigger := Trigger{}
		switch ls.Trigger {
		case "price-above":
			trigger.Kind = PriceAbove
			trigger.PriceThreshold = units.EnergyPrice(ls.PriceThreshold)
		case "grid-stress":
			trigger.Kind = GridStress
		case "emergency-declared":
			trigger.Kind = EmergencyDeclared
		case "own-load-above":
			trigger.Kind = OwnLoadAbove
			trigger.PowerBudget = units.Power(ls.PowerBudgetKW)
		default:
			return nil, fmt.Errorf("contingency: level %d: unknown trigger %q", i, ls.Trigger)
		}
		strategy, err := ls.Strategy.Build()
		if err != nil {
			return nil, fmt.Errorf("contingency: level %d: %w", i, err)
		}
		plan.Levels = append(plan.Levels, Level{
			Name: ls.Name, Trigger: trigger, Strategy: strategy,
		})
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}

// ParsePlanSpec decodes a JSON plan spec.
func ParsePlanSpec(data []byte) (*PlanSpec, error) {
	var ps PlanSpec
	if err := json.Unmarshal(data, &ps); err != nil {
		return nil, fmt.Errorf("contingency: bad plan JSON: %w", err)
	}
	return &ps, nil
}

// EncodePlanSpec encodes a spec as indented JSON.
func EncodePlanSpec(ps *PlanSpec) ([]byte, error) {
	return json.MarshalIndent(ps, "", "  ")
}
