package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestRunAgainstServe drives a real scserved instance and checks the
// report's books balance: every sent request is classified exactly
// once and the NDJSON stream has one line per sent request.
func TestRunAgainstServe(t *testing.T) {
	s := serve.NewServer(serve.Config{MaxConcurrent: 2, QueueDepth: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var nd bytes.Buffer
	rep, err := Run(context.Background(), Config{
		Target:        ts.URL,
		RPS:           400,
		Duration:      300 * time.Millisecond,
		Seed:          7,
		Specs:         4,
		BatchFraction: 0.2,
		BatchItems:    4,
		NDJSON:        &nd,
	})
	if err != nil {
		t.Fatal(err)
	}

	sent, ok, shed, serverErr, clientErr, transport := rep.Totals()
	if sent == 0 || ok == 0 {
		t.Fatalf("no traffic admitted: sent=%d ok=%d", sent, ok)
	}
	if serverErr != 0 || transport != 0 || clientErr != 0 {
		t.Errorf("unexpected failures: 5xx=%d transport=%d 4xx=%d", serverErr, transport, clientErr)
	}
	if got := ok + shed + serverErr + clientErr + transport; got != sent {
		t.Errorf("outcome classes sum to %d, sent %d", got, sent)
	}

	lines := 0
	sc := bufio.NewScanner(&nd)
	for sc.Scan() {
		lines++
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad NDJSON line: %v", err)
		}
	}
	if uint64(lines) != sent {
		t.Errorf("NDJSON lines = %d, sent = %d", lines, sent)
	}

	var sum strings.Builder
	rep.WriteSummary(&sum)
	for _, want := range []string{"| endpoint |", "/v1/bill", "seed: 7"} {
		if !strings.Contains(sum.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, sum.String())
		}
	}
}

// TestSeededSequenceDeterministic: two runs with one seed issue the
// same (seq, endpoint, spec, profile) descriptors; a different seed
// issues a different sequence.
func TestSeededSequenceDeterministic(t *testing.T) {
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer stub.Close()

	run := func(seed int64) []string {
		var nd bytes.Buffer
		_, err := Run(context.Background(), Config{
			Target:        stub.URL,
			RPS:           2000,
			Duration:      100 * time.Millisecond,
			Seed:          seed,
			Specs:         8,
			BatchFraction: 0.3,
			Profiles:      []string{"quickstart-month", "peaky-month"},
			NDJSON:        &nd,
		})
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		sc := bufio.NewScanner(&nd)
		for sc.Scan() {
			var rec struct {
				Seq      int    `json:"seq"`
				Endpoint string `json:"endpoint"`
				Spec     int    `json:"spec"`
				Profile  string `json:"profile"`
			}
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				t.Fatal(err)
			}
			b, _ := json.Marshal(rec)
			out = append(out, string(b))
		}
		sort.Strings(out)
		return out
	}

	a, b := run(42), run(42)
	if len(a) == 0 {
		t.Fatal("no requests recorded")
	}
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Error("same seed produced different descriptor sequences")
	}
	if c := run(43); strings.Join(a, "\n") == strings.Join(c, "\n") {
		t.Error("different seeds produced identical descriptor sequences")
	}
}

// TestSpecBodiesDistinct: every synthetic spec must hash to its own
// engine-cache key, or the working-set knob lies.
func TestSpecBodiesDistinct(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 64; i++ {
		raw, err := SpecBody(i)
		if err != nil {
			t.Fatal(err)
		}
		if seen[string(raw)] {
			t.Fatalf("spec %d duplicates an earlier spec", i)
		}
		seen[string(raw)] = true
	}
}

// TestPacingHonorsSchedule pins the timerstop fix: the arrival loop
// runs off one hoisted, Reset pacing timer instead of a fresh
// time.After per iteration. A Reset/drain bug shows up here as either
// an instant burst (elapsed far below the schedule) or a stall.
func TestPacingHonorsSchedule(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	start := time.Now()
	rep, err := Run(context.Background(), Config{
		Target:   ts.URL,
		RPS:      20,
		Duration: 250 * time.Millisecond,
		Seed:     3,
		Specs:    2,
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	sent, _, _, _, _, _ := rep.Totals()
	if sent != 5 {
		t.Fatalf("sent = %d arrivals, want the full 5-slot schedule", sent)
	}
	// Five arrivals at 50 ms spacing: the last is due at t=200 ms. An
	// instant burst (broken pacing) finishes in single-digit ms.
	if elapsed < 150*time.Millisecond {
		t.Fatalf("run finished in %s; arrivals were not paced", elapsed)
	}
}

// TestCancelMidRunReturnsPromptly: canceling the run context while the
// generator is parked on the pacing timer must return the partial
// report without blocking on the timer drain.
func TestCancelMidRunReturnsPromptly(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(120 * time.Millisecond)
		cancel()
	}()

	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := Run(ctx, Config{
			Target:   ts.URL,
			RPS:      2, // 500 ms spacing: cancellation lands mid-wait
			Duration: 30 * time.Second,
			Seed:     5,
			Specs:    2,
		})
		done <- err
	}()

	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("Run took %s to notice the cancel", elapsed)
	}
}
