// Package grid simulates the electricity-service-provider side of the
// relationship: regional system demand, renewable generation with its
// intermittency and variable output, the resulting net load on
// dispatchable generation, and the grid-stress events that trigger
// emergency demand response.
//
// The models are deliberately simple, standard shapes — diurnal/weekly
// demand cycles, a solar bell curve with cloud noise, an autoregressive
// wind process — because the paper's claims depend only on the
// qualitative structure: peaks are expensive (capacity is sized to peak,
// §1), renewables add volatility, and scarcity hours are when flexible
// consumers matter.
package grid

import (
	"errors"
	"math"
	"math/rand"
	"time"

	"repro/internal/timeseries"
	"repro/internal/units"
)

// RegionConfig parameterizes a synthetic regional system-load profile.
type RegionConfig struct {
	// Start, Span, Interval delimit the generated series.
	Start    time.Time
	Span     time.Duration
	Interval time.Duration
	// BaseLoad is the average regional demand.
	BaseLoad units.Power
	// DiurnalSwing is the relative day/night amplitude (e.g. 0.25).
	DiurnalSwing float64
	// WeekendDip is the relative demand reduction on weekends.
	WeekendDip float64
	// SeasonalSwing is the relative winter/summer amplitude.
	SeasonalSwing float64
	// NoiseSigma is the relative sample noise.
	NoiseSigma float64
	// Seed drives the deterministic generator.
	Seed int64
}

// DefaultRegion returns a mid-size balancing area (≈5 GW average) for
// one simulated month at 15-minute resolution.
func DefaultRegion(start time.Time) RegionConfig {
	return RegionConfig{
		Start: start, Span: 30 * 24 * time.Hour, Interval: 15 * time.Minute,
		BaseLoad: 5 * units.Gigawatt, DiurnalSwing: 0.22, WeekendDip: 0.10,
		SeasonalSwing: 0.10, NoiseSigma: 0.01, Seed: 1,
	}
}

// SystemLoad generates the regional demand profile.
func SystemLoad(cfg RegionConfig) (*timeseries.PowerSeries, error) {
	if cfg.Span <= 0 || cfg.Interval <= 0 {
		return nil, errors.New("grid: span and interval must be positive")
	}
	if cfg.BaseLoad <= 0 {
		return nil, errors.New("grid: base load must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := int(cfg.Span / cfg.Interval)
	if n <= 0 {
		return nil, errors.New("grid: span shorter than interval")
	}
	samples := make([]units.Power, n)
	base := float64(cfg.BaseLoad)
	for i := range samples {
		ts := cfg.Start.Add(time.Duration(i) * cfg.Interval)
		v := base
		// Diurnal: trough ~04:00, peak ~18:00.
		hour := float64(ts.Hour()) + float64(ts.Minute())/60
		v += base * cfg.DiurnalSwing * math.Sin((hour-10)/24*2*math.Pi)
		// Weekly.
		if wd := ts.Weekday(); wd == time.Saturday || wd == time.Sunday {
			v -= base * cfg.WeekendDip
		}
		// Seasonal: peak mid-winter (northern heating-dominated region).
		doy := float64(ts.YearDay())
		v += base * cfg.SeasonalSwing * math.Cos(doy/365*2*math.Pi)
		// Noise.
		if cfg.NoiseSigma > 0 {
			v += base * cfg.NoiseSigma * rng.NormFloat64()
		}
		if v < 0 {
			v = 0
		}
		samples[i] = units.Power(v)
	}
	return timeseries.NewPower(cfg.Start, cfg.Interval, samples)
}

// SolarConfig parameterizes a solar fleet.
type SolarConfig struct {
	// Capacity is the fleet nameplate.
	Capacity units.Power
	// CloudNoise is the relative variability from passing clouds.
	CloudNoise float64
	// Seed drives the deterministic generator.
	Seed int64
}

// Solar generates fleet output aligned with a template series (same
// start/interval/length): a daylight bell curve scaled by capacity with
// multiplicative cloud noise.
func Solar(template *timeseries.PowerSeries, cfg SolarConfig) (*timeseries.PowerSeries, error) {
	if template == nil || template.Len() == 0 {
		return nil, errors.New("grid: solar needs a template series")
	}
	if cfg.Capacity < 0 || cfg.CloudNoise < 0 {
		return nil, errors.New("grid: solar capacity and noise must be non-negative")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	samples := make([]units.Power, template.Len())
	for i := range samples {
		ts := template.TimeAt(i)
		hour := float64(ts.Hour()) + float64(ts.Minute())/60
		// Daylight bell between 6 and 18, peaking at noon.
		var f float64
		if hour > 6 && hour < 18 {
			f = math.Sin((hour - 6) / 12 * math.Pi)
		}
		if f > 0 && cfg.CloudNoise > 0 {
			f *= 1 - cfg.CloudNoise*rng.Float64()
		}
		samples[i] = units.Power(float64(cfg.Capacity) * f)
	}
	return timeseries.NewPower(template.Start(), template.Interval(), samples)
}

// WindConfig parameterizes a wind fleet.
type WindConfig struct {
	// Capacity is the fleet nameplate.
	Capacity units.Power
	// MeanCF is the long-run capacity factor (e.g. 0.35).
	MeanCF float64
	// Persistence in (0,1) is the AR(1) coefficient of the capacity-
	// factor process; higher = smoother.
	Persistence float64
	// Sigma is the innovation scale of the AR process.
	Sigma float64
	// Seed drives the deterministic generator.
	Seed int64
}

// Wind generates fleet output aligned with a template series using a
// clamped AR(1) capacity-factor process.
func Wind(template *timeseries.PowerSeries, cfg WindConfig) (*timeseries.PowerSeries, error) {
	if template == nil || template.Len() == 0 {
		return nil, errors.New("grid: wind needs a template series")
	}
	if cfg.Capacity < 0 {
		return nil, errors.New("grid: wind capacity must be non-negative")
	}
	if cfg.MeanCF < 0 || cfg.MeanCF > 1 {
		return nil, errors.New("grid: mean capacity factor must be in [0,1]")
	}
	if cfg.Persistence <= 0 || cfg.Persistence >= 1 {
		return nil, errors.New("grid: persistence must be in (0,1)")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	samples := make([]units.Power, template.Len())
	cf := cfg.MeanCF
	for i := range samples {
		cf = cfg.MeanCF + cfg.Persistence*(cf-cfg.MeanCF) + cfg.Sigma*rng.NormFloat64()
		if cf < 0 {
			cf = 0
		}
		if cf > 1 {
			cf = 1
		}
		samples[i] = units.Power(float64(cfg.Capacity) * cf)
	}
	return timeseries.NewPower(template.Start(), template.Interval(), samples)
}

// NetLoad returns demand minus renewable generation, floored at zero
// (surplus renewable hours clamp; curtailment is outside scope).
func NetLoad(demand *timeseries.PowerSeries, renewables ...*timeseries.PowerSeries) (*timeseries.PowerSeries, error) {
	net := demand
	var err error
	for _, r := range renewables {
		net, err = net.Sub(r)
		if err != nil {
			return nil, err
		}
	}
	return net.Map(func(p units.Power) units.Power {
		if p < 0 {
			return 0
		}
		return p
	}), nil
}

// StressEvent is a contiguous run where net load exceeds a capacity
// threshold — the condition under which ESPs dispatch emergency DR.
type StressEvent struct {
	Start    time.Time
	Duration time.Duration
	// PeakNetLoad is the highest net load during the event.
	PeakNetLoad units.Power
	// Shortfall is the integrated energy above the threshold.
	Shortfall units.Energy
}

// DetectStress scans a net-load profile against a dispatch threshold and
// returns the stress events (minimum one interval long).
func DetectStress(netLoad *timeseries.PowerSeries, threshold units.Power) ([]StressEvent, error) {
	if threshold <= 0 {
		return nil, errors.New("grid: stress threshold must be positive")
	}
	var out []StressEvent
	var cur *StressEvent
	h := netLoad.Interval().Hours()
	flush := func() {
		if cur != nil {
			out = append(out, *cur)
			cur = nil
		}
	}
	for i := 0; i < netLoad.Len(); i++ {
		p := netLoad.At(i)
		if p <= threshold {
			flush()
			continue
		}
		if cur == nil {
			cur = &StressEvent{Start: netLoad.TimeAt(i)}
		}
		cur.Duration += netLoad.Interval()
		if p > cur.PeakNetLoad {
			cur.PeakNetLoad = p
		}
		cur.Shortfall += units.Energy(float64(p-threshold) * h)
	}
	flush()
	return out, nil
}

// PeakReduction quantifies how much a demand-side intervention lowered
// the regional peak: it compares the peaks of two net-load profiles and
// returns the absolute and relative reduction. This is the quantity
// behind FERC's "DR programs throughout the United States have the
// potential to reduce peak load by 6.6%" estimate cited in §1.
func PeakReduction(before, after *timeseries.PowerSeries) (units.Power, float64, error) {
	pb, _, err := before.Peak()
	if err != nil {
		return 0, 0, err
	}
	pa, _, err := after.Peak()
	if err != nil {
		return 0, 0, err
	}
	abs := pb - pa
	rel := 0.0
	if pb > 0 {
		rel = float64(abs) / float64(pb)
	}
	return abs, rel, nil
}
