package contract

// This file defines a JSON-serializable contract specification so that
// contracts can be stored on disk, shipped to the cmd tools, and compared
// across sites. A Spec is deliberately less general than a Contract (it
// covers the configurations the survey actually observed: fixed rates,
// day/night or seasonal TOU, market-indexed dynamic rates); Build turns a
// Spec into an executable Contract.

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/calendar"
	"repro/internal/demand"
	"repro/internal/tariff"
	"repro/internal/timeseries"
	"repro/internal/units"
)

// Spec is the serializable form of a contract.
type Spec struct {
	Name    string       `json:"name"`
	Tariffs []TariffSpec `json:"tariffs"`
	// DemandCharges configures the kW branch.
	DemandCharges []DemandChargeSpec `json:"demand_charges,omitempty"`
	Powerbands    []PowerbandSpec    `json:"powerbands,omitempty"`
	Emergencies   []EmergencySpec    `json:"emergencies,omitempty"`
	Fees          []FeeSpec          `json:"fees,omitempty"`
}

// TariffSpec configures one tariff component. Type selects the variant:
// "fixed" (Rate), "tou" (DayRate/NightRate/DayFrom/DayTo, optionally
// seasonal with SummerDayRate), or "dynamic" (Multiplier/Adder over the
// feed supplied at Build time).
type TariffSpec struct {
	Type string `json:"type"`
	// Rate is the fixed price (fixed type).
	Rate float64 `json:"rate,omitempty"`
	// TOU configuration.
	DayRate       float64 `json:"day_rate,omitempty"`
	NightRate     float64 `json:"night_rate,omitempty"`
	SummerDayRate float64 `json:"summer_day_rate,omitempty"`
	DayFrom       int     `json:"day_from,omitempty"`
	DayTo         int     `json:"day_to,omitempty"`
	// Dynamic configuration: effective price = feed × Multiplier + Adder.
	Multiplier float64 `json:"multiplier,omitempty"`
	Adder      float64 `json:"adder,omitempty"`
	// FallbackRate is the fixed backstop price a dynamic tariff bills at
	// when the market feed is unavailable past its staleness budget —
	// the contractual "if the index is not published, the price of the
	// last schedule applies" clause. 0 means the biller's default.
	FallbackRate float64 `json:"fallback_rate,omitempty"`
	// CPP configuration ("cpp" type): a fixed base at Rate with
	// CriticalRate during declared events, at most MaxCriticalEvents
	// per period (0 = unlimited). Events are declared at runtime on the
	// built *tariff.CPPTariff.
	CriticalRate      float64 `json:"critical_rate,omitempty"`
	MaxCriticalEvents int     `json:"max_critical_events,omitempty"`
}

// DemandChargeSpec configures one demand charge.
type DemandChargeSpec struct {
	// PricePerKW is the demand price in currency/kW/period.
	PricePerKW float64 `json:"price_per_kw"`
	// Method is "single-peak", "n-peak-average" (default) or "ratchet".
	Method string `json:"method,omitempty"`
	NPeaks int    `json:"n_peaks,omitempty"`
	// RatchetFraction applies to the ratchet method.
	RatchetFraction float64 `json:"ratchet_fraction,omitempty"`
}

// PowerbandSpec configures one powerband. Limits are in kW; a zero or
// omitted LowerKW yields an upper-only band.
type PowerbandSpec struct {
	LowerKW      float64 `json:"lower_kw,omitempty"`
	UpperKW      float64 `json:"upper_kw"`
	UnderPenalty float64 `json:"under_penalty,omitempty"`
	OverPenalty  float64 `json:"over_penalty"`
}

// EmergencySpec configures one emergency-DR obligation.
type EmergencySpec struct {
	Name          string  `json:"name,omitempty"`
	CapKW         float64 `json:"cap_kw"`
	NoticeMinutes int     `json:"notice_minutes,omitempty"`
	Penalty       float64 `json:"penalty"`
}

// FeeSpec configures one flat fee.
type FeeSpec struct {
	Name   string  `json:"name"`
	Amount float64 `json:"amount"`
}

// BuildContext supplies runtime inputs a Spec may need — currently the
// price feed behind dynamic tariffs and an optional holiday calendar.
type BuildContext struct {
	Feed     *timeseries.PriceSeries
	Holidays *calendar.HolidayCalendar
}

// Build turns the spec into an executable Contract.
func (s *Spec) Build(ctx BuildContext) (*Contract, error) {
	if s.Name == "" {
		return nil, errors.New("contract: spec needs a name")
	}
	c := &Contract{Name: s.Name}
	for i, ts := range s.Tariffs {
		t, err := ts.build(ctx)
		if err != nil {
			return nil, fmt.Errorf("contract %q tariff %d: %w", s.Name, i, err)
		}
		c.Tariffs = append(c.Tariffs, t)
	}
	for i, ds := range s.DemandCharges {
		dc, err := ds.build()
		if err != nil {
			return nil, fmt.Errorf("contract %q demand charge %d: %w", s.Name, i, err)
		}
		c.DemandCharges = append(c.DemandCharges, dc)
	}
	for i, ps := range s.Powerbands {
		pb, err := ps.build()
		if err != nil {
			return nil, fmt.Errorf("contract %q powerband %d: %w", s.Name, i, err)
		}
		c.Powerbands = append(c.Powerbands, pb)
	}
	for _, es := range s.Emergencies {
		o := &EmergencyObligation{
			Name:    es.Name,
			Cap:     units.Power(es.CapKW),
			Notice:  time.Duration(es.NoticeMinutes) * time.Minute,
			Penalty: units.EnergyPrice(es.Penalty),
		}
		if err := o.Validate(); err != nil {
			return nil, fmt.Errorf("contract %q: %w", s.Name, err)
		}
		c.Emergencies = append(c.Emergencies, o)
	}
	for _, fs := range s.Fees {
		c.Fees = append(c.Fees, FixedFee{Name: fs.Name, Amount: units.MoneyFromFloat(fs.Amount)})
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// FallbackSpec returns a copy of the spec with every dynamic tariff
// replaced by a fixed tariff at its declared FallbackRate (or
// defaultRate when the spec declares none). This is the degraded-mode
// contract: when the price feed is down past its staleness budget the
// bill is computed against the fixed backstop instead of market data.
// Specs without dynamic tariffs are returned unchanged.
func (s *Spec) FallbackSpec(defaultRate float64) *Spec {
	changed := false
	out := *s
	out.Tariffs = make([]TariffSpec, len(s.Tariffs))
	copy(out.Tariffs, s.Tariffs)
	for i, ts := range out.Tariffs {
		if ts.Type != "dynamic" {
			continue
		}
		rate := ts.FallbackRate
		if rate == 0 {
			rate = defaultRate
		}
		out.Tariffs[i] = TariffSpec{Type: "fixed", Rate: rate}
		changed = true
	}
	if !changed {
		return s
	}
	return &out
}

func (ts TariffSpec) build(ctx BuildContext) (tariff.Tariff, error) {
	switch ts.Type {
	case "fixed":
		return tariff.NewFixed(units.EnergyPrice(ts.Rate))
	case "tou":
		from, to := ts.DayFrom, ts.DayTo
		if from == 0 && to == 0 {
			from, to = 8, 20
		}
		if ts.SummerDayRate > 0 {
			sched := calendar.SeasonalDayNight(from, to, ctx.Holidays)
			return tariff.NewTOU(sched, map[string]units.EnergyPrice{
				"summer-peak": units.EnergyPrice(ts.SummerDayRate),
				"peak":        units.EnergyPrice(ts.DayRate),
				"offpeak":     units.EnergyPrice(ts.NightRate),
			})
		}
		sched := calendar.DayNight(from, to, ctx.Holidays)
		return tariff.NewTOU(sched, map[string]units.EnergyPrice{
			"peak":    units.EnergyPrice(ts.DayRate),
			"offpeak": units.EnergyPrice(ts.NightRate),
		})
	case "dynamic":
		if ctx.Feed == nil {
			return nil, errors.New("dynamic tariff requires a price feed in the build context")
		}
		mult := ts.Multiplier
		if mult == 0 {
			mult = 1
		}
		return tariff.NewDynamic(ctx.Feed, mult, units.EnergyPrice(ts.Adder))
	case "cpp":
		base, err := tariff.NewFixed(units.EnergyPrice(ts.Rate))
		if err != nil {
			return nil, err
		}
		return tariff.NewCPP(base, units.EnergyPrice(ts.CriticalRate), ts.MaxCriticalEvents)
	default:
		return nil, fmt.Errorf("unknown tariff type %q", ts.Type)
	}
}

func (ds DemandChargeSpec) build() (*demand.Charge, error) {
	method := demand.NPeakAverage
	n := ds.NPeaks
	switch ds.Method {
	case "", "n-peak-average":
		if n == 0 {
			n = 3
		}
	case "single-peak":
		method = demand.SinglePeak
	case "ratchet":
		method = demand.Ratchet
	default:
		return nil, fmt.Errorf("unknown demand-charge method %q", ds.Method)
	}
	return demand.NewCharge(units.DemandPrice(ds.PricePerKW), method, n, ds.RatchetFraction)
}

func (ps PowerbandSpec) build() (*demand.Powerband, error) {
	if ps.LowerKW > 0 {
		return demand.NewPowerband(
			units.Power(ps.LowerKW), units.Power(ps.UpperKW),
			units.EnergyPrice(ps.UnderPenalty), units.EnergyPrice(ps.OverPenalty))
	}
	return demand.NewUpperPowerband(units.Power(ps.UpperKW), units.EnergyPrice(ps.OverPenalty))
}

// ParseSpec decodes a JSON contract spec.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("contract: bad spec JSON: %w", err)
	}
	return &s, nil
}

// EncodeSpec encodes a spec as indented JSON.
func EncodeSpec(s *Spec) ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
