package feed

// Cached is the resilience wrapper every real provider is served
// through: it remembers the last good series and answers in one of
// three explicit states. Fresh — the cached series covers the window
// and is within its TTL (or was just fetched). Stale — the upstream
// fetch failed but the cached series is younger than the staleness
// budget, so billing proceeds on slightly old prices (the paper's
// dynamic-tariff sites bill day-ahead prices; an hour-old curve is a
// rounding error next to refusing service). Degraded — the feed has
// been down past the budget (or never succeeded), and the caller
// should fall back to the contract's declared fixed backstop, exactly
// the fixed-price fallback most surveyed sites keep.
//
// Synchronous fetches take one attempt through the circuit breaker —
// an open breaker fails fast into stale/degraded instead of stacking
// request latency onto a dead upstream. The retry/backoff loop lives
// in a single background refresh goroutine kicked on failure, so at
// most one retry storm exists per cache regardless of request volume.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/resilience"
	"repro/internal/timeseries"
)

// State classifies a cache answer.
type State int

// Cache answer states.
const (
	Fresh State = iota
	Stale
	Degraded
)

// String returns the lowercase state name used in headers and metrics.
func (s State) String() string {
	switch s {
	case Fresh:
		return "fresh"
	case Stale:
		return "stale"
	case Degraded:
		return "degraded"
	default:
		return "unknown"
	}
}

// Result is one cache answer. Series is nil exactly when State is
// Degraded; Version identifies the underlying fetch generation so
// engine caches can key compiled artifacts on it.
type Result struct {
	Series  *timeseries.PriceSeries
	State   State
	Age     time.Duration // how old the served series is (0 when just fetched)
	Reason  string        // why the answer is stale or degraded
	Version uint64
}

// CachedConfig tunes a Cached provider. The zero value is usable.
type CachedConfig struct {
	// TTL is how long a fetched series stays fresh; <= 0 selects 5 m.
	TTL time.Duration
	// StalenessBudget is the maximum age at which a cached series may
	// still be served while the upstream is failing; <= 0 selects 1 h.
	// Ages beyond the budget degrade.
	StalenessBudget time.Duration
	// Retry drives the background refresh loop.
	Retry resilience.Retry
	// Breaker guards every upstream fetch; nil builds one with
	// defaults.
	Breaker *resilience.BreakerConfig
	// Now is the clock (tests inject a fake); nil selects time.Now.
	Now func() time.Time
}

func (c CachedConfig) withDefaults() CachedConfig {
	if c.TTL <= 0 {
		c.TTL = 5 * time.Minute
	}
	if c.StalenessBudget <= 0 {
		c.StalenessBudget = time.Hour
	}
	if c.StalenessBudget < c.TTL {
		c.StalenessBudget = c.TTL
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Cached wraps a provider with the TTL/stale/degraded state machine.
// Construct with NewCached; Close stops the background refresh.
type Cached struct {
	provider PriceProvider
	cfg      CachedConfig
	breaker  *resilience.Breaker

	refreshCtx  context.Context
	stopRefresh context.CancelFunc
	wg          sync.WaitGroup

	mu         sync.Mutex
	series     *timeseries.PriceSeries
	fetchedAt  time.Time
	version    uint64
	lastErr    error
	refreshing bool

	stats CacheStats
}

// CacheStats counts cache outcomes.
type CacheStats struct {
	Fresh, Stale, Degraded uint64
	Refreshes              uint64 // successful upstream fetches
	RefreshFailures        uint64 // failed upstream fetch attempts
}

// NewCached wraps provider with the given configuration.
func NewCached(provider PriceProvider, cfg CachedConfig) *Cached {
	cfg = cfg.withDefaults()
	bcfg := resilience.BreakerConfig{}
	if cfg.Breaker != nil {
		bcfg = *cfg.Breaker
	}
	if bcfg.Now == nil {
		bcfg.Now = cfg.Now
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Cached{
		provider:    provider,
		cfg:         cfg,
		breaker:     resilience.NewBreaker(bcfg),
		refreshCtx:  ctx,
		stopRefresh: cancel,
	}
}

// Close stops the background refresh loop and waits for it to exit.
func (c *Cached) Close() {
	c.stopRefresh()
	c.wg.Wait()
}

// Breaker exposes the breaker guarding upstream fetches, for metrics.
func (c *Cached) Breaker() *resilience.Breaker { return c.breaker }

// Describe returns the wrapped provider's description.
func (c *Cached) Describe() string { return c.provider.Describe() }

// Stats returns a snapshot of the cache counters.
func (c *Cached) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Age returns how old the cached series is, and false when nothing has
// ever been fetched.
func (c *Cached) Age() (time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.series == nil {
		return 0, false
	}
	return c.cfg.Now().Sub(c.fetchedAt), true
}

// covers reports whether the cached series spans [start, end).
func covers(s *timeseries.PriceSeries, start, end time.Time) bool {
	return s != nil && !s.Start().After(start) && !s.End().Before(end)
}

// fetchOnce takes one guarded attempt at the upstream and validates
// the result. It does not touch the cache.
func (c *Cached) fetchOnce(ctx context.Context, start, end time.Time) (*timeseries.PriceSeries, error) {
	var series *timeseries.PriceSeries
	err := c.breaker.Do(ctx, func(ctx context.Context) error {
		s, err := c.provider.Fetch(ctx, start, end)
		if err != nil {
			return err
		}
		if err := Validate(s); err != nil {
			return err
		}
		series = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	return series, nil
}

// store records a successful fetch.
func (c *Cached) store(s *timeseries.PriceSeries) {
	c.mu.Lock()
	c.series = s
	c.fetchedAt = c.cfg.Now()
	c.version++
	c.lastErr = nil
	c.stats.Refreshes++
	c.mu.Unlock()
}

// Prices answers a price request for [start, end) with the cache's
// three-state semantics. It never returns an error: a dead feed is a
// Degraded result, and deciding what that means (fall back, refuse,
// alert) is the biller's call.
func (c *Cached) Prices(ctx context.Context, start, end time.Time) Result {
	c.mu.Lock()
	if covers(c.series, start, end) && c.cfg.Now().Sub(c.fetchedAt) <= c.cfg.TTL {
		res := Result{Series: c.series, State: Fresh,
			Age: c.cfg.Now().Sub(c.fetchedAt), Version: c.version}
		c.stats.Fresh++
		c.mu.Unlock()
		return res
	}
	c.mu.Unlock()

	// Cache cold, stale, or not covering: one synchronous guarded
	// attempt. An open breaker rejects instantly and we fall through
	// to the stale/degraded answer.
	series, err := c.fetchOnce(ctx, start, end)
	if err == nil {
		c.store(series)
		c.mu.Lock()
		res := Result{Series: series, State: Fresh, Version: c.version}
		c.stats.Fresh++
		c.mu.Unlock()
		return res
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.RefreshFailures++
	c.lastErr = err
	c.kickRefreshLocked(start, end)

	age := c.cfg.Now().Sub(c.fetchedAt)
	if c.series != nil && age <= c.cfg.StalenessBudget && covers(c.series, start, end) {
		c.stats.Stale++
		return Result{Series: c.series, State: Stale, Age: age, Version: c.version,
			Reason: fmt.Sprintf("feed fetch failed (%v); serving %s-old prices within the %s budget",
				err, age.Round(time.Second), c.cfg.StalenessBudget)}
	}

	c.stats.Degraded++
	reason := fmt.Sprintf("feed unavailable (%v) and no usable cached prices", err)
	if c.series != nil && age > c.cfg.StalenessBudget {
		reason = fmt.Sprintf("feed unavailable (%v); cached prices are %s old, past the %s staleness budget",
			err, age.Round(time.Second), c.cfg.StalenessBudget)
	}
	return Result{State: Degraded, Age: age, Reason: reason, Version: c.version}
}

// kickRefreshLocked starts the background refresh goroutine unless one
// is already running. Callers hold c.mu.
func (c *Cached) kickRefreshLocked(start, end time.Time) {
	if c.refreshing || c.refreshCtx.Err() != nil {
		return
	}
	c.refreshing = true
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		err := c.cfg.Retry.Do(c.refreshCtx, func(ctx context.Context) error {
			s, ferr := c.fetchOnce(ctx, start, end)
			if ferr != nil {
				c.mu.Lock()
				c.stats.RefreshFailures++
				c.mu.Unlock()
				return ferr
			}
			c.store(s)
			return nil
		})
		c.mu.Lock()
		c.refreshing = false
		if err != nil {
			c.lastErr = err
		}
		c.mu.Unlock()
	}()
}

// LastError returns the most recent fetch error, nil after a
// successful fetch.
func (c *Cached) LastError() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastErr
}

// Version returns the current fetch generation (0 before any success).
func (c *Cached) Version() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version
}
