// Package neg holds metricname near-misses that must stay silent: the
// compliant exposition shapes the production /metrics page uses.
package neg

import (
	"fmt"
	"io"
)

type snapshot struct{}

func (snapshot) WriteProm(w io.Writer, name, labels string) {}

func emit(w io.Writer, s snapshot) {
	fmt.Fprintf(w, "# TYPE scserved_requests_total counter\n")
	fmt.Fprintf(w, "scserved_requests_total{code=%q} %d\n", "200", 7)
	fmt.Fprintf(w, "# TYPE scserved_in_flight gauge\n")
	fmt.Fprintf(w, "scserved_in_flight 2\n")
	fmt.Fprintf(w, "# TYPE scserved_feed_age_seconds gauge\n")
	fmt.Fprintf(w, "# TYPE scserved_request_seconds histogram\n")
	s.WriteProm(w, "scserved_request_seconds", "")
	s.WriteProm(w, "scserved_payload_bytes", "")
	// Non-scserved names are someone else's namespace.
	fmt.Fprintf(w, "# TYPE go_goroutines gauge\n")
}
