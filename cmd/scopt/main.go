// Command scopt optimizes a facility load profile against a contract
// under a flexibility envelope: how much of the bill is recoverable by
// deferring deferrable energy and shedding the partial-execution slice,
// without violating ramp or immovable-load constraints.
//
// Usage:
//
//	scopt -survey                           # ten-site acceptance sweep
//	scopt -survey -check -out ACCEPT.md     # sweep, enforce savings, write table
//	scopt -site 3 -defer 0.10 -partial 0.20 # one survey site's contract
//	scopt -contract site.json -load meter.csv
//	scopt -site 1 -json                     # machine-readable result
//	scopt -site 1 -series-out optimized.csv # export the reshaped schedule
//
// With -survey the year-in-life load (12 MW facility, 15-minute
// metering, calendar year 2016) is optimized against every survey
// site's synthetic contract and the outcome table is rendered as
// markdown; -check additionally fails the exit code unless every
// demand-charge/powerband contract came out strictly cheaper. The run
// is a deterministic function of the seed, so the committed
// ACCEPTANCE_optimize.md reproduces bit for bit (make optimize-accept).
//
// Single-contract mode takes either -site N (survey site's synthetic
// contract) or -contract spec.json, optimizes the load against it, and
// prints the baseline/optimized summary, per-component savings, binding
// constraints, and search statistics.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/contract"
	"repro/internal/hpc"
	"repro/internal/optimize"
	"repro/internal/report"
	"repro/internal/survey"
	"repro/internal/timeseries"
	"repro/internal/units"
)

// cliConfig carries every flag so run stays testable without a real
// command line.
type cliConfig struct {
	surveyMode bool
	check      bool
	outPath    string
	site       int
	contract   string
	loadPath   string
	baseMW     float64
	peakRatio  float64
	days       int
	loadSeed   int64
	flex       optimize.Flexibility
	opts       optimize.Options
	jsonOut    bool
	seriesOut  string
}

func main() {
	var cfg cliConfig
	flag.BoolVar(&cfg.surveyMode, "survey", false, "run the ten-site acceptance sweep and render the markdown table")
	flag.BoolVar(&cfg.check, "check", false, "with -survey: fail unless every demand-side contract is strictly cheaper")
	flag.StringVar(&cfg.outPath, "out", "", "write the table or result to FILE instead of stdout")
	flag.IntVar(&cfg.site, "site", 0, "optimize against survey site N's synthetic contract")
	flag.StringVar(&cfg.contract, "contract", "", "path to a JSON contract spec")
	flag.StringVar(&cfg.loadPath, "load", "", "path to a timestamp,kw CSV load profile")
	flag.Float64Var(&cfg.baseMW, "base-mw", 12, "synthetic load: base facility power in MW")
	flag.Float64Var(&cfg.peakRatio, "peak-ratio", 1.6, "synthetic load: peak-to-average ratio")
	flag.IntVar(&cfg.days, "days", 90, "synthetic load: span in days")
	flag.Int64Var(&cfg.loadSeed, "load-seed", 7, "synthetic load: random seed")
	flag.Float64Var(&cfg.flex.DeferrableFraction, "defer", 0.10, "fraction of baseline energy that may be moved in time")
	flag.Float64Var(&cfg.flex.PartialFraction, "partial", 0.20, "fraction of baseline energy that may be dropped (partial execution)")
	flag.Float64Var(&cfg.flex.MaxRampKW, "ramp", 0, "max schedule change between steps in kW (0 = unconstrained)")
	flag.Float64Var(&cfg.flex.FloorKW, "floor", 0, "immovable-load floor in kW")
	flag.Int64Var(&cfg.opts.Seed, "seed", 1, "search RNG seed (runs are deterministic per seed)")
	flag.IntVar(&cfg.opts.Candidates, "candidates", optimize.DefaultCandidates, "number of search candidates")
	flag.BoolVar(&cfg.jsonOut, "json", false, "emit the result as JSON instead of a rendered summary")
	flag.StringVar(&cfg.seriesOut, "series-out", "", "write the optimized schedule as a timestamp,kw CSV to FILE")
	flag.Parse()

	if err := run(context.Background(), cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scopt:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, cfg cliConfig, stdout io.Writer) error {
	if cfg.surveyMode {
		return runSurvey(ctx, cfg, stdout)
	}
	return runSingle(ctx, cfg, stdout)
}

// runSurvey is the acceptance sweep: the committed table is exactly this
// output, so nothing here may depend on the clock or the machine.
func runSurvey(ctx context.Context, cfg cliConfig, stdout io.Writer) error {
	if cfg.site != 0 || cfg.contract != "" || cfg.loadPath != "" {
		return fmt.Errorf("-survey uses the built-in year-in-life load; -site/-contract/-load do not apply")
	}
	outcomes, err := optimize.SurveySweep(ctx, cfg.flex, cfg.opts)
	if err != nil {
		return err
	}
	var out string
	if cfg.jsonOut {
		data, err := json.MarshalIndent(outcomes, "", "  ")
		if err != nil {
			return err
		}
		out = string(data) + "\n"
	} else {
		out = optimize.RenderSurveyTable(outcomes, cfg.flex, cfg.opts)
	}
	if err := emit(cfg.outPath, out, stdout); err != nil {
		return err
	}
	if cfg.check {
		return optimize.CheckSweep(outcomes)
	}
	return nil
}

func runSingle(ctx context.Context, cfg cliConfig, stdout io.Writer) error {
	if (cfg.site != 0) == (cfg.contract != "") {
		return fmt.Errorf("exactly one of -site or -contract is required (or -survey)")
	}
	load, err := loadProfile(cfg)
	if err != nil {
		return err
	}
	eng, err := buildEngine(cfg, load)
	if err != nil {
		return err
	}
	res, err := optimize.Optimize(ctx, eng, load, contract.BillingInput{}, cfg.flex, cfg.opts)
	if err != nil {
		return err
	}

	if cfg.seriesOut != "" {
		f, err := os.Create(cfg.seriesOut)
		if err != nil {
			return err
		}
		werr := timeseries.WritePowerCSV(f, res.Series)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("series-out %s: %w", cfg.seriesOut, werr)
		}
	}

	var out string
	if cfg.jsonOut {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		out = string(data) + "\n"
	} else {
		out = renderResult(res)
	}
	return emit(cfg.outPath, out, stdout)
}

// buildEngine compiles the target contract: a survey site's synthetic
// one, or a JSON spec built against a flat reference feed over the load
// span (the same fallback scbill uses without -feed).
func buildEngine(cfg cliConfig, load *timeseries.PowerSeries) (*contract.Engine, error) {
	var c *contract.Contract
	if cfg.site != 0 {
		var site *survey.SiteRecord
		for _, rec := range survey.Records() {
			if rec.ID == cfg.site {
				r := rec
				site = &r
				break
			}
		}
		if site == nil {
			return nil, fmt.Errorf("no survey site %d (sites are 1-10)", cfg.site)
		}
		var err error
		c, err = survey.BuildContract(*site, survey.DefaultBuildContext(load.Start()))
		if err != nil {
			return nil, err
		}
	} else {
		data, err := os.ReadFile(cfg.contract)
		if err != nil {
			return nil, err
		}
		spec, err := contract.ParseSpec(data)
		if err != nil {
			return nil, err
		}
		feed := timeseries.ConstantPrice(load.Start(), time.Hour,
			int(load.End().Sub(load.Start())/time.Hour)+1, 0.045)
		c, err = spec.Build(contract.BuildContext{Feed: feed})
		if err != nil {
			return nil, err
		}
	}
	return contract.NewEngine(c)
}

func loadProfile(cfg cliConfig) (*timeseries.PowerSeries, error) {
	if cfg.loadPath != "" {
		f, err := os.Open(cfg.loadPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		s, err := timeseries.ReadPowerCSV(f)
		if err != nil {
			return nil, fmt.Errorf("load profile %s: %w", cfg.loadPath, err)
		}
		return s, nil
	}
	return hpc.SyntheticFacilityLoad(hpc.LoadProfileConfig{
		Start:         time.Date(2016, time.January, 1, 0, 0, 0, 0, time.UTC),
		Span:          time.Duration(cfg.days) * 24 * time.Hour,
		Interval:      15 * time.Minute,
		Base:          units.Power(cfg.baseMW) * units.Megawatt,
		PeakToAverage: cfg.peakRatio,
		NoiseSigma:    0.02,
		Seed:          cfg.loadSeed,
	})
}

// renderResult prints the human-readable optimization summary: headline
// savings, schedule shape before/after, component deltas, and how the
// search spent its candidates.
func renderResult(res *optimize.Result) string {
	out := report.KV([][2]string{
		{"Contract", res.Contract},
		{"Baseline bill", fmt.Sprintf("%.2f", res.BaselineTotal)},
		{"Optimized bill", fmt.Sprintf("%.2f", res.OptimizedTotal)},
		{"Savings", fmt.Sprintf("%.2f (%.2f%%)", res.Savings, res.SavingsFraction*100)},
		{"Peak kW", fmt.Sprintf("%.0f -> %.0f", res.Baseline.PeakKW, res.Optimized.PeakKW)},
		{"Load factor", fmt.Sprintf("%.3f -> %.3f", res.Baseline.LoadFactor, res.Optimized.LoadFactor)},
		{"Moved energy", fmt.Sprintf("%.1f of %.1f kWh deferrable", res.MovedKWh, res.DeferBudgetKWh)},
		{"Dropped energy", fmt.Sprintf("%.1f of %.1f kWh partial", res.DroppedKWh, res.PartialBudgetKWh)},
		{"Binding constraints", joinOrDash(res.Binding)},
		{"Search", fmt.Sprintf("seed %d, %d candidates, %d evaluated, %d improved, converged %v",
			res.Seed, res.Stats.Candidates, res.Stats.Evaluated, res.Stats.Improved, res.Stats.Converged)},
		{"Months re-billed", fmt.Sprintf("%d incremental", res.Stats.MonthsReevaluated)},
	})

	tbl := report.NewTable("Per-component savings", "Component", "Baseline", "Optimized", "Saving")
	for _, c := range res.Components {
		tbl.AddRow(c.Component, fmt.Sprintf("%.2f", c.Baseline),
			fmt.Sprintf("%.2f", c.Optimized), fmt.Sprintf("%.2f", c.Saving))
	}
	return out + "\n" + tbl.Render()
}

func joinOrDash(parts []string) string {
	if len(parts) == 0 {
		return "none"
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out += ", " + p
	}
	return out
}

// emit writes out to path, or to stdout when path is empty.
func emit(path, out string, stdout io.Writer) error {
	if path == "" {
		_, err := io.WriteString(stdout, out)
		return err
	}
	return os.WriteFile(path, []byte(out), 0o644)
}
