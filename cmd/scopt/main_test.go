package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/optimize"
)

// shortCfg keeps CLI tests fast: a two-week load and a small search.
func shortCfg() cliConfig {
	return cliConfig{
		baseMW: 10, peakRatio: 1.6, days: 14, loadSeed: 7,
		flex: optimize.Flexibility{DeferrableFraction: 0.10, PartialFraction: 0.20},
		opts: optimize.Options{Seed: 1, Candidates: 120},
	}
}

func TestRunSiteMode(t *testing.T) {
	var out strings.Builder
	cfg := shortCfg()
	cfg.site = 1
	if err := run(context.Background(), cfg, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Baseline bill", "Per-component savings", "demand-charge", "Search"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunJSONAndSeriesExport(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	cfg := shortCfg()
	cfg.site = 2
	cfg.jsonOut = true
	cfg.seriesOut = filepath.Join(dir, "opt.csv")
	if err := run(context.Background(), cfg, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"savings_fraction"`) {
		t.Errorf("JSON output missing savings_fraction:\n%s", out.String())
	}
	csv, err := os.ReadFile(cfg.seriesOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "timestamp,kw") {
		t.Errorf("series CSV missing header: %q", string(csv[:40]))
	}
}

func TestRunSurveyToFile(t *testing.T) {
	dir := t.TempDir()
	cfg := cliConfig{
		surveyMode: true, check: true,
		outPath: filepath.Join(dir, "table.md"),
		flex:    optimize.Flexibility{DeferrableFraction: 0.10, PartialFraction: 0.20},
		opts:    optimize.Options{Seed: 1, Candidates: 150},
	}
	var out strings.Builder
	if err := run(context.Background(), cfg, &out); err != nil {
		t.Fatal(err)
	}
	table, err := os.ReadFile(cfg.outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(table), "| Site |") {
		t.Errorf("table file malformed:\n%s", table)
	}
	if out.Len() != 0 {
		t.Errorf("-out should suppress stdout, got %q", out.String())
	}
}

func TestRunRejectsBadFlagCombos(t *testing.T) {
	cases := []cliConfig{
		{},                              // neither -site nor -contract
		{site: 1, contract: "x.json"},   // both
		{site: 99},                      // unknown site
		{surveyMode: true, site: 3},     // -survey with -site
		{contract: "/nonexistent.json"}, // unreadable spec
	}
	for i, cfg := range cases {
		if cfg.opts.Candidates == 0 {
			cfg.opts = optimize.Options{Seed: 1, Candidates: 10}
			cfg.days = 7
			cfg.baseMW = 10
			cfg.peakRatio = 1.5
		}
		var out strings.Builder
		if err := run(context.Background(), cfg, &out); err == nil {
			t.Errorf("case %d: expected error, got none", i)
		}
	}
}
