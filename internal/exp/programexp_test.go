package exp

import (
	"strings"
	"testing"
)

func TestE22ProductEconomics(t *testing.T) {
	points, err := RunE22([]int{1, 5, 20, 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	for i, p := range points {
		// Emergency scales linearly with dispatches; regulation is flat.
		if i > 0 {
			prev := points[i-1]
			if p.EmergencyNet <= prev.EmergencyNet {
				t.Error("emergency revenue must grow with dispatch frequency")
			}
			if p.RegulationNet != prev.RegulationNet {
				t.Error("regulation revenue is dispatch-independent")
			}
			if p.CapacityNet <= prev.CapacityNet {
				t.Error("capacity revenue grows (energy part) with dispatches")
			}
		}
		// At every frequency in the sweep, availability-style products
		// beat pure emergency DR at low frequencies.
		if p.EventsPerYear <= 5 && p.EmergencyNet >= p.CapacityNet {
			t.Errorf("at %d dispatches/yr emergency %v should trail capacity %v",
				p.EventsPerYear, p.EmergencyNet, p.CapacityNet)
		}
	}
	// Rare-event regime: even regulation (the smallest standing payment
	// here) beats emergency DR.
	if points[0].EmergencyNet >= points[0].RegulationNet {
		t.Errorf("1 dispatch/yr: emergency %v should trail regulation %v",
			points[0].EmergencyNet, points[0].RegulationNet)
	}
}

func TestE22Exhibit(t *testing.T) {
	e, err := Run("E22")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Emergency DR", "Capacity bidding", "Regulation"} {
		if !strings.Contains(e.Render(), want) {
			t.Errorf("E22 missing %q", want)
		}
	}
}
