package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/serve"
)

func TestRunBadAddr(t *testing.T) {
	err := run("256.256.256.256:99999", "", serve.Config{}, time.Second)
	if err == nil {
		t.Fatal("expected listen error")
	}
}

// TestRunDrainsOnSignal boots the daemon on a free port and delivers
// SIGTERM: run must drain and return nil.
func TestRunDrainsOnSignal(t *testing.T) {
	done := make(chan error, 1)
	go func() { done <- run("127.0.0.1:0", "", serve.Config{}, time.Second) }()

	// Give the listener a moment, then ask the process to stop.
	time.Sleep(50 * time.Millisecond)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil && !strings.Contains(err.Error(), "http shutdown") {
			t.Fatalf("run after SIGTERM: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not return after SIGTERM")
	}
}

// TestDebugListenerServesPprof: with -debug-addr set, the profiler index
// answers on the second listener, isolated from the service mux.
func TestDebugListenerServesPprof(t *testing.T) {
	// Reserve a free port for the debug listener.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	debugAddr := l.Addr().String()
	l.Close()

	done := make(chan error, 1)
	go func() { done <- run("127.0.0.1:0", debugAddr, serve.Config{}, time.Second) }()
	defer func() {
		_ = syscall.Kill(syscall.Getpid(), syscall.SIGTERM)
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("run did not return after SIGTERM")
		}
	}()

	url := fmt.Sprintf("http://%s/debug/pprof/", debugAddr)
	var resp *http.Response
	deadline := time.Now().Add(3 * time.Second)
	for {
		resp, err = http.Get(url)
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("pprof index unreachable: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index: %d %.100s", resp.StatusCode, body)
	}
}

func TestRequestLogger(t *testing.T) {
	if lg, err := requestLogger("off"); err != nil || lg != nil {
		t.Errorf("off: %v %v", lg, err)
	}
	for _, f := range []string{"text", "json"} {
		if lg, err := requestLogger(f); err != nil || lg == nil {
			t.Errorf("%s: %v %v", f, lg, err)
		}
	}
	if _, err := requestLogger("yaml"); err == nil {
		t.Error("unknown format must error")
	}
}
