// Package feed abstracts where market prices come from. The paper's
// dynamic-tariff sites bill against "real-time communication between
// the consumer and the provider" — in practice a day-ahead or
// real-time price feed, which is exactly the kind of flaky external
// dependency the billing service must survive. A PriceProvider is any
// source of a price series (an in-memory constant, a file a scheduler
// drops hourly, an HTTP endpoint at the utility); the Cached wrapper
// in cache.go adds the resilience layer: TTL caching, stale service
// within a staleness budget, background refresh behind a circuit
// breaker, and an explicit degraded verdict once the budget is blown.
package feed

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/timeseries"
	"repro/internal/units"
)

// PriceProvider supplies market prices. Fetch returns a price series
// intended to cover [start, end); providers backed by an external
// source (file, HTTP) return whatever the source currently holds, and
// the caller decides whether the coverage is acceptable. Fetch must
// honor ctx and must return series that pass Validate.
type PriceProvider interface {
	Fetch(ctx context.Context, start, end time.Time) (*timeseries.PriceSeries, error)
	// Describe returns a one-line human-readable description of the
	// source, for logs and error messages.
	Describe() string
}

// Validate rejects price series no biller should ever see: empty
// series and non-finite samples. Parsers reject these with positional
// errors already; Validate is the defense at the provider boundary,
// where a misbehaving upstream (or the chaos injector) can hand back
// garbage that parsed fine structurally.
func Validate(s *timeseries.PriceSeries) error {
	if s == nil || s.Len() == 0 {
		return errors.New("feed: provider returned an empty price series")
	}
	for i := 0; i < s.Len(); i++ {
		if !isFinite(float64(s.At(i))) {
			return fmt.Errorf("feed: price sample %d (%s) is not finite",
				i, s.TimeAt(i).Format(time.RFC3339))
		}
	}
	return nil
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// Static serves a fixed in-memory series — the provider form of "the
// operator handed us this year's prices up front".
type Static struct {
	Series *timeseries.PriceSeries
}

// NewStatic wraps a series as a provider.
func NewStatic(s *timeseries.PriceSeries) *Static { return &Static{Series: s} }

// Fetch returns the wrapped series regardless of window (PriceAt
// clamps at the edges downstream).
func (p *Static) Fetch(_ context.Context, _, _ time.Time) (*timeseries.PriceSeries, error) {
	if err := Validate(p.Series); err != nil {
		return nil, err
	}
	return p.Series, nil
}

// Describe returns a one-line description.
func (p *Static) Describe() string {
	if p.Series == nil {
		return "static feed (empty)"
	}
	return fmt.Sprintf("static feed (%d samples from %s)",
		p.Series.Len(), p.Series.Start().Format(time.RFC3339))
}

// Flat synthesizes a constant price covering any requested window —
// the resilient-stack equivalent of the flat reference feed the CLIs
// use when no market data is supplied.
type Flat struct {
	Rate units.EnergyPrice
	// Interval is the synthesized sample spacing; <= 0 selects 1 h.
	Interval time.Duration
}

// Fetch returns a constant series covering [start, end).
func (p *Flat) Fetch(_ context.Context, start, end time.Time) (*timeseries.PriceSeries, error) {
	iv := p.Interval
	if iv <= 0 {
		iv = time.Hour
	}
	if !end.After(start) {
		return nil, fmt.Errorf("feed: flat window [%s, %s) is empty", start, end)
	}
	n := int(end.Sub(start)/iv) + 1
	return timeseries.ConstantPrice(start, iv, n, p.Rate), nil
}

// Describe returns a one-line description.
func (p *Flat) Describe() string {
	return fmt.Sprintf("flat feed @ %g/kWh", float64(p.Rate))
}

// File reads prices from a CSV ("timestamp,price_per_kwh") or JSON
// file on every Fetch, so an external process can refresh the file in
// place. The format is chosen by extension: .json selects JSON,
// anything else CSV.
type File struct {
	Path string
}

// Fetch re-reads and parses the file.
func (p *File) Fetch(_ context.Context, _, _ time.Time) (*timeseries.PriceSeries, error) {
	f, err := os.Open(p.Path)
	if err != nil {
		return nil, fmt.Errorf("feed: %w", err)
	}
	defer f.Close()
	s, err := parseByFormat(f, strings.EqualFold(filepath.Ext(p.Path), ".json"))
	if err != nil {
		return nil, fmt.Errorf("feed: %s: %w", p.Path, err)
	}
	return s, nil
}

// Describe returns a one-line description.
func (p *File) Describe() string { return fmt.Sprintf("file feed %s", p.Path) }

// maxFeedBody bounds an HTTP feed response (a year of hourly prices in
// CSV is well under 1 MB).
const maxFeedBody = 8 << 20

// HTTP fetches prices from a URL — the day-ahead/real-time market
// endpoint shape. The response body is CSV unless the Content-Type
// says JSON.
type HTTP struct {
	URL string
	// Client is the HTTP client; nil selects one with a 10 s timeout.
	Client *http.Client
}

func (p *HTTP) client() *http.Client {
	if p.Client != nil {
		return p.Client
	}
	return &http.Client{Timeout: 10 * time.Second}
}

// Fetch GETs the URL with the caller's context and parses the body.
func (p *HTTP) Fetch(ctx context.Context, _, _ time.Time) (*timeseries.PriceSeries, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.URL, nil)
	if err != nil {
		return nil, fmt.Errorf("feed: %w", err)
	}
	resp, err := p.client().Do(req)
	if err != nil {
		return nil, fmt.Errorf("feed: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Drain a little so the connection can be reused, then reject.
		_, _ = io.CopyN(io.Discard, resp.Body, 512)
		return nil, fmt.Errorf("feed: %s returned %s", p.URL, resp.Status)
	}
	isJSON := strings.Contains(resp.Header.Get("Content-Type"), "json")
	s, err := parseByFormat(io.LimitReader(resp.Body, maxFeedBody), isJSON)
	if err != nil {
		return nil, fmt.Errorf("feed: %s: %w", p.URL, err)
	}
	return s, nil
}

// Describe returns a one-line description.
func (p *HTTP) Describe() string { return fmt.Sprintf("http feed %s", p.URL) }

func parseByFormat(r io.Reader, isJSON bool) (*timeseries.PriceSeries, error) {
	if isJSON {
		return ParseJSON(r)
	}
	return ParseCSV(r)
}

var (
	_ PriceProvider = (*Static)(nil)
	_ PriceProvider = (*Flat)(nil)
	_ PriceProvider = (*File)(nil)
	_ PriceProvider = (*HTTP)(nil)
)
