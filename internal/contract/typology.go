package contract

// This file models the paper's Figure 1, "Overview of contract typology",
// as a data structure so the figure can be regenerated (and extended)
// programmatically.

// TypologyNode is one node of the typology tree.
type TypologyNode struct {
	// Title is the node label as it appears in Figure 1.
	Title string
	// Detail is the paper's characterization of the node.
	Detail string
	// Component is the typology leaf this node corresponds to, or -1
	// for structural nodes (root and branches).
	Component Component
	// Encourages names the consumption behaviour the element rewards.
	Encourages string
	// Children are the sub-nodes.
	Children []*TypologyNode
}

// IsLeaf reports whether the node is a typology leaf.
func (n *TypologyNode) IsLeaf() bool { return len(n.Children) == 0 }

// Walk visits the tree depth-first, pre-order, calling fn with each node
// and its depth.
func (n *TypologyNode) Walk(fn func(node *TypologyNode, depth int)) {
	var rec func(node *TypologyNode, depth int)
	rec = func(node *TypologyNode, depth int) {
		fn(node, depth)
		for _, c := range node.Children {
			rec(c, depth+1)
		}
	}
	rec(n, 0)
}

// Leaves returns the leaf nodes in pre-order.
func (n *TypologyNode) Leaves() []*TypologyNode {
	var out []*TypologyNode
	n.Walk(func(node *TypologyNode, _ int) {
		if node.IsLeaf() {
			out = append(out, node)
		}
	})
	return out
}

// Find returns the first node with the given title, or nil.
func (n *TypologyNode) Find(title string) *TypologyNode {
	var found *TypologyNode
	n.Walk(func(node *TypologyNode, _ int) {
		if found == nil && node.Title == title {
			found = node
		}
	})
	return found
}

// Typology returns the paper's Figure 1 as a tree: three branches
// (tariffs mapped to kWh, demand charges mapped to kW, other) with the
// six leaves that form the columns of Table 2.
func Typology() *TypologyNode {
	return &TypologyNode{
		Title:     "SC electricity service contract",
		Detail:    "constituent parts of SC electricity service contracts (location-specific service fees and taxes excluded)",
		Component: -1,
		Children: []*TypologyNode{
			{
				Title:     "Tariffs (energy mapped to kWh)",
				Detail:    "price per kWh of consumption",
				Component: -1,
				Children: []*TypologyNode{
					{
						Title:      "Fixed",
						Detail:     "price fixed throughout a contractual period",
						Component:  CompFixedTariff,
						Encourages: "energy efficiency (no demand-side management incentive)",
					},
					{
						Title:      "Time-of-use",
						Detail:     "price varies across a known, contractually defined time period (seasonal, day/night)",
						Component:  CompTOUTariff,
						Encourages: "static demand-side management",
					},
					{
						Title:      "Dynamically variable",
						Detail:     "price subject to real-time communication between consumer and provider",
						Component:  CompDynamicTariff,
						Encourages: "demand response",
					},
				},
			},
			{
				Title:     "Demand charges (power mapped to kW)",
				Detail:    "price determined by magnitude of peak power consumption",
				Component: -1,
				Children: []*TypologyNode{
					{
						Title:      "Demand charges",
						Detail:     "billed on peak consumption across a billing period (e.g. three 15 MW peaks)",
						Component:  CompDemandCharge,
						Encourages: "demand-side management (not real-time DR)",
					},
					{
						Title:      "Powerband",
						Detail:     "upper (and optionally lower) consumption boundaries with continuous sampling; outside-band consumption carries high additional cost",
						Component:  CompPowerband,
						Encourages: "demand-side management (not real-time DR)",
					},
				},
			},
			{
				Title:     "Other",
				Detail:    "components mapped to neither kWh nor kW",
				Component: -1,
				Children: []*TypologyNode{
					{
						Title:      "Emergency DR",
						Detail:     "mandatory incentive-based program imposing consumption reduction or a cap to preserve grid reliability",
						Component:  CompEmergencyDR,
						Encourages: "emergency curtailment (mandatory, imposed on the SC)",
					},
				},
			},
		},
	}
}
