// Package optimize searches for the feasible reshaping of a facility
// load profile that minimizes its bill under a compiled contract — the
// demand-charge optimization workload the paper's analysis motivates:
// demand charges, ratchets and powerband violations (not energy rates)
// dominate supercomputing-center bills, and Xu & Li's partial-execution
// result shows that structure is exploitable.
//
// The model is deliberately schedule-free: instead of job-level
// placement it reshapes the metered kW series directly under a
// flexibility envelope (how much energy may be time-shifted, how much
// may be dropped via partial execution, how fast the facility may ramp,
// and an immovable-load floor). The search is deterministic seeded
// simulated annealing over month-scoped perturbations:
//
//   - peak shaving with in-month valley filling (attacks demand
//     charges and ratchets, conserves energy),
//   - partial-execution shaving (drops energy against its own budget,
//     à la Xu & Li),
//   - block deferral between months (attacks ratchets and powerband
//     excursions).
//
// The objective is the real billing engine: every candidate is priced
// through contract.Engine's incremental month evaluator, re-billing
// only the months the perturbation touched. Same seed + same inputs →
// byte-identical result (pinned by property tests); every emitted
// schedule is feasible and energy-conserving within the partial budget
// (pinned by fuzz tests and a final CheckFeasible pass).
package optimize

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/contract"
	"repro/internal/obs"
	"repro/internal/timeseries"
	"repro/internal/units"
)

// Span names recorded when the optimizing context carries an
// obs.Registry: the whole search loop, and each candidate's objective
// evaluation (the incremental re-bill).
const (
	SpanSearch   = "optimize_search"
	SpanEvaluate = "optimize_evaluate"
)

// Errors returned by Optimize.
var (
	ErrEmptyBaseline = errors.New("optimize: baseline load is empty")
	ErrInfeasible    = errors.New("optimize: candidate violates the flexibility envelope")
)

// Flexibility is the load-reshaping envelope: what the facility
// operator has declared the workload can tolerate.
type Flexibility struct {
	// DeferrableFraction is the fraction of baseline energy that may be
	// moved in time (peak shaving, valley filling, block deferral). The
	// deferrable budget in kWh is this fraction of baseline energy.
	DeferrableFraction float64 `json:"deferrable_fraction"`
	// PartialFraction is the fraction of baseline energy that may be
	// dropped outright — Xu & Li's partial execution, where a slice of
	// the workload runs at reduced fidelity or not at all.
	PartialFraction float64 `json:"partial_fraction,omitempty"`
	// MaxRampKW caps how fast a reshaped schedule may change between
	// consecutive metering intervals, in kW per step. Steps where the
	// baseline itself ramps faster are allowed at the baseline's rate
	// (the envelope never declares the as-metered load infeasible).
	// Zero or negative means unconstrained.
	MaxRampKW float64 `json:"max_ramp_kw_per_step,omitempty"`
	// FloorKW is the immovable load: the reshaped schedule never drops
	// below this level, except where the baseline already does.
	FloorKW float64 `json:"floor_kw,omitempty"`
}

// Validate checks the envelope's parameters.
func (f Flexibility) Validate() error {
	if f.DeferrableFraction < 0 || f.DeferrableFraction > 1 {
		return errors.New("optimize: deferrable fraction must be in [0, 1]")
	}
	if f.PartialFraction < 0 || f.PartialFraction > 1 {
		return errors.New("optimize: partial-execution fraction must be in [0, 1]")
	}
	if f.FloorKW < 0 {
		return errors.New("optimize: load floor must be non-negative")
	}
	if math.IsNaN(f.DeferrableFraction) || math.IsNaN(f.PartialFraction) ||
		math.IsNaN(f.MaxRampKW) || math.IsNaN(f.FloorKW) {
		return errors.New("optimize: flexibility parameters must not be NaN")
	}
	return nil
}

// Options tunes the search.
type Options struct {
	// Seed seeds the search's RNG; the whole run is a deterministic
	// function of (engine, baseline, input, flexibility, options).
	// Zero selects seed 1.
	Seed int64 `json:"seed,omitempty"`
	// Candidates is the number of perturbations attempted (default
	// 2000).
	Candidates int `json:"candidates,omitempty"`
	// InitialTempFrac / FinalTempFrac set the annealing temperature
	// schedule as fractions of the baseline bill (defaults 1e-4 and
	// 1e-7): the temperature decays geometrically from the first
	// candidate to the last.
	InitialTempFrac float64 `json:"initial_temp_frac,omitempty"`
	FinalTempFrac   float64 `json:"final_temp_frac,omitempty"`
}

// DefaultCandidates is the default search length.
const DefaultCandidates = 2000

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Candidates <= 0 {
		o.Candidates = DefaultCandidates
	}
	if o.InitialTempFrac <= 0 {
		o.InitialTempFrac = 1e-4
	}
	if o.FinalTempFrac <= 0 {
		o.FinalTempFrac = 1e-7
	}
	return o
}

// SeriesSummary describes one load profile for reports.
type SeriesSummary struct {
	Samples    int     `json:"samples"`
	EnergyKWh  float64 `json:"energy_kwh"`
	PeakKW     float64 `json:"peak_kw"`
	MeanKW     float64 `json:"mean_kw"`
	LoadFactor float64 `json:"load_factor"`
	MaxRampKW  float64 `json:"max_ramp_kw_per_step"`
}

func summarize(s *timeseries.PowerSeries) SeriesSummary {
	peak, _, _ := s.Peak()
	var maxStep float64
	for i := 0; i+1 < s.Len(); i++ {
		if d := math.Abs(float64(s.At(i+1) - s.At(i))); d > maxStep {
			maxStep = d
		}
	}
	return SeriesSummary{
		Samples:    s.Len(),
		EnergyKWh:  float64(s.Energy()),
		PeakKW:     float64(peak),
		MeanKW:     float64(s.Mean()),
		LoadFactor: s.LoadFactor(),
		MaxRampKW:  maxStep,
	}
}

// ComponentSaving is the per-typology-component bill delta.
type ComponentSaving struct {
	Component string  `json:"component"`
	Baseline  float64 `json:"baseline"`
	Optimized float64 `json:"optimized"`
	Saving    float64 `json:"saving"`
}

// Stats reports how the search went.
type Stats struct {
	// Candidates is the number of perturbations requested; Evaluated
	// counts those that produced a well-formed move and were priced.
	Candidates int `json:"candidates"`
	Evaluated  int `json:"evaluated"`
	// Accepted counts accepted moves (including uphill annealing
	// acceptances); Improved counts new best schedules.
	Accepted int `json:"accepted"`
	Improved int `json:"improved"`
	// RampRejected counts moves discarded for violating the ramp
	// envelope before pricing.
	RampRejected int `json:"ramp_rejected"`
	// MonthsReevaluated is how many single-month re-bills the
	// incremental objective performed during the search (the full
	// initial pass excluded) — the measure of the fast path's win over
	// re-billing every month per candidate.
	MonthsReevaluated int `json:"months_reevaluated"`
	// LastImprovement is the candidate index of the final best-schedule
	// improvement (-1 when the baseline was never beaten).
	LastImprovement int `json:"last_improvement"`
	// Converged reports that the tail of the search ran without finding
	// a better schedule.
	Converged bool `json:"converged"`
}

// Result is one optimization outcome. Money amounts are in currency
// units (micro-unit exact, like bill JSON).
type Result struct {
	Contract        string            `json:"contract"`
	Seed            int64             `json:"seed"`
	BaselineTotal   float64           `json:"baseline_total"`
	OptimizedTotal  float64           `json:"optimized_total"`
	Savings         float64           `json:"savings"`
	SavingsFraction float64           `json:"savings_fraction"`
	Baseline        SeriesSummary     `json:"baseline"`
	Optimized       SeriesSummary     `json:"optimized"`
	Components      []ComponentSaving `json:"components"`
	// Binding names the envelope constraints the search pressed against
	// ("deferrable-budget", "partial-budget", "ramp-limit",
	// "load-floor").
	Binding []string `json:"binding_constraints"`
	// MovedKWh / DroppedKWh are the flexibility actually consumed by
	// the returned schedule; the budgets are what was available.
	MovedKWh         float64     `json:"moved_kwh"`
	DroppedKWh       float64     `json:"dropped_kwh"`
	DeferBudgetKWh   float64     `json:"defer_budget_kwh"`
	PartialBudgetKWh float64     `json:"partial_budget_kwh"`
	Flexibility      Flexibility `json:"flexibility"`
	Stats            Stats       `json:"stats"`

	// Series is the optimized schedule itself (not serialized; the CLI
	// exports it as CSV on request).
	Series *timeseries.PowerSeries `json:"-"`

	baselineMoney  units.Money
	optimizedMoney units.Money
}

// BaselineMoney / OptimizedMoney return the exact totals.
func (r *Result) BaselineMoney() units.Money  { return r.baselineMoney }
func (r *Result) OptimizedMoney() units.Money { return r.optimizedMoney }

// ctxPollStride is how many candidates the search loop processes
// between explicit context polls (the objective evaluation also polls
// on its own sample strides).
const ctxPollStride = 64

// Optimize searches for the cheapest feasible reshaping of baseline
// under eng's contract. It never returns a schedule worse than the
// baseline, never returns an infeasible or energy-non-conserving one,
// and is a deterministic function of its arguments.
func Optimize(ctx context.Context, eng *contract.Engine, baseline *timeseries.PowerSeries, in contract.BillingInput, flex Flexibility, opts Options) (*Result, error) {
	if baseline == nil || baseline.Len() == 0 {
		return nil, ErrEmptyBaseline
	}
	if err := flex.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()

	s := newSearchState(baseline, flex, opts.Seed)
	cand := baseline.WithSamples(s.buf)
	s.blocks = cand.Blocks()

	im, err := eng.Incremental(ctx, cand, in)
	if err != nil {
		return nil, err
	}
	initialEvals := im.Evaluations()
	baseTotal := im.Total()

	// Best-so-far starts at the baseline: the search can only improve.
	bestBuf := baseline.AppendSamples(nil)
	bestTotal := baseTotal
	bestMoved, bestDropped := 0.0, 0.0

	stats := Stats{Candidates: opts.Candidates, LastImprovement: -1}
	curTotal := baseTotal
	t0 := opts.InitialTempFrac * math.Abs(baseTotal.Float())
	cooling := 1.0
	if opts.Candidates > 1 {
		cooling = math.Pow(opts.FinalTempFrac/opts.InitialTempFrac, 1/float64(opts.Candidates-1))
	}

	endSearch := obs.Span(ctx, SpanSearch)
	defer endSearch()
	done := ctx.Done()
	temp := t0
	for k := 0; k < opts.Candidates; k++ {
		if done != nil && k%ctxPollStride == 0 {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		if k > 0 {
			temp *= cooling
		}

		movedDelta, droppedDelta, ok := s.propose()
		if !ok {
			continue
		}
		endEval := obs.Span(ctx, SpanEvaluate)
		candTotal, err := im.Stage(ctx, s.touched)
		endEval()
		if err != nil {
			return nil, err
		}
		stats.Evaluated++

		delta := candTotal - curTotal
		accept := delta < 0
		if !accept && temp > 0 {
			if s.rng.Float64() < math.Exp(-delta.Float()/temp) {
				accept = true
			}
		}
		if !accept {
			im.Discard()
			s.revert()
			continue
		}
		im.Commit()
		s.commit()
		curTotal = candTotal
		s.moved += movedDelta
		s.dropped += droppedDelta
		stats.Accepted++
		if curTotal < bestTotal {
			bestTotal = curTotal
			copy(bestBuf, s.buf)
			bestMoved, bestDropped = s.moved, s.dropped
			stats.Improved++
			stats.LastImprovement = k
		}
	}
	stats.RampRejected = s.rampRejected
	stats.MonthsReevaluated = im.Evaluations() - initialEvals
	window := opts.Candidates / 4
	if window > 500 {
		window = 500
	}
	if window < 1 {
		window = 1
	}
	stats.Converged = opts.Candidates-1-stats.LastImprovement >= window

	optimized := baseline.WithSamples(bestBuf)
	if err := CheckFeasible(baseline, optimized, flex, bestDropped); err != nil {
		// Belt and braces: the move set maintains feasibility by
		// construction, so this is an internal invariant failure, not a
		// user error.
		return nil, fmt.Errorf("%w: %v", ErrInfeasible, err)
	}

	res := &Result{
		Contract:         eng.Contract().Name,
		Seed:             opts.Seed,
		BaselineTotal:    baseTotal.Float(),
		OptimizedTotal:   bestTotal.Float(),
		Savings:          (baseTotal - bestTotal).Float(),
		Baseline:         summarize(baseline),
		Optimized:        summarize(optimized),
		MovedKWh:         round6(bestMoved),
		DroppedKWh:       round6(bestDropped),
		DeferBudgetKWh:   round6(s.deferBudget),
		PartialBudgetKWh: round6(s.partialBudget),
		Flexibility:      flex,
		Stats:            stats,
		Series:           optimized,
		baselineMoney:    baseTotal,
		optimizedMoney:   bestTotal,
	}
	if baseTotal != 0 {
		res.SavingsFraction = (baseTotal - bestTotal).Float() / baseTotal.Float()
	}
	res.Binding = s.binding(bestMoved, bestDropped, opts.Candidates)
	if err := res.fillComponents(ctx, eng, baseline, optimized, in, bestTotal); err != nil {
		return nil, err
	}
	return res, nil
}

// round6 rounds kWh quantities to micro-kWh so reported energy figures
// are stable across platforms' float formatting of accumulated sums.
func round6(v float64) float64 { return math.Round(v*1e6) / 1e6 }

// fillComponents re-bills both schedules in full and attributes the
// saving to typology components.
func (r *Result) fillComponents(ctx context.Context, eng *contract.Engine, baseline, optimized *timeseries.PowerSeries, in contract.BillingInput, wantTotal units.Money) error {
	baseBills, err := eng.BillMonthsCtx(ctx, baseline, in, 0)
	if err != nil {
		return err
	}
	optBills, err := eng.BillMonthsCtx(ctx, optimized, in, 0)
	if err != nil {
		return err
	}
	var check units.Money
	for _, b := range optBills {
		check += b.Total
	}
	if check != wantTotal {
		return fmt.Errorf("optimize: incremental objective diverged from full re-bill (%v vs %v)", wantTotal, check)
	}
	sum := func(bills []*contract.Bill) map[contract.Component]units.Money {
		m := make(map[contract.Component]units.Money)
		for _, b := range bills {
			for _, l := range b.Lines {
				m[l.Component] += l.Amount
			}
		}
		return m
	}
	baseBy, optBy := sum(baseBills), sum(optBills)
	order := append(contract.AllComponents(), contract.CompFlatFee)
	for _, c := range order {
		b, o := baseBy[c], optBy[c]
		if b == 0 && o == 0 {
			continue
		}
		r.Components = append(r.Components, ComponentSaving{
			Component: c.String(),
			Baseline:  b.Float(),
			Optimized: o.Float(),
			Saving:    (b - o).Float(),
		})
	}
	return nil
}

// binding names the envelope constraints the search pressed against, in
// a fixed deterministic order.
func (s *searchState) binding(moved, dropped float64, candidates int) []string {
	var out []string
	if s.deferBudget > 0 && moved >= 0.95*s.deferBudget {
		out = append(out, "deferrable-budget")
	}
	if s.partialBudget > 0 && dropped >= 0.95*s.partialBudget {
		out = append(out, "partial-budget")
	}
	if s.rampRejected*20 >= candidates {
		out = append(out, "ramp-limit")
	}
	if s.floorLimited*20 >= candidates {
		out = append(out, "load-floor")
	}
	return out
}
