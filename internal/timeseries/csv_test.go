package timeseries

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/units"
)

func TestPowerCSVRoundTrip(t *testing.T) {
	s := MustNewPower(t0, 15*time.Minute, []units.Power{1000, 2000.5, 0, 3000})
	var buf bytes.Buffer
	if err := WritePowerCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPowerCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Start().Equal(s.Start()) || back.Interval() != s.Interval() || back.Len() != s.Len() {
		t.Fatalf("shape mismatch: %v vs %v", back, s)
	}
	for i := 0; i < s.Len(); i++ {
		if back.At(i) != s.At(i) {
			t.Errorf("sample %d: %v vs %v", i, back.At(i), s.At(i))
		}
	}
}

func TestReadPowerCSVErrors(t *testing.T) {
	cases := map[string]string{
		"too short":     "timestamp,kw\n2016-01-01T00:00:00Z,1\n",
		"bad timestamp": "timestamp,kw\nnope,1\n2016-01-01T00:15:00Z,2\n2016-01-01T00:30:00Z,3\n",
		"bad value":     "timestamp,kw\n2016-01-01T00:00:00Z,x\n2016-01-01T00:15:00Z,2\n2016-01-01T00:30:00Z,3\n",
		"out of order":  "timestamp,kw\n2016-01-01T01:00:00Z,1\n2016-01-01T00:00:00Z,2\n2016-01-01T02:00:00Z,3\n",
		"off grid":      "timestamp,kw\n2016-01-01T00:00:00Z,1\n2016-01-01T00:15:00Z,2\n2016-01-01T00:31:00Z,3\n",
		"wrong fields":  "timestamp,kw\n2016-01-01T00:00:00Z\n",
	}
	for name, in := range cases {
		if _, err := ReadPowerCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestReadPowerCSVHeaderOptional accepts meter exports without a header
// row and reads the same series either way.
func TestReadPowerCSVHeaderOptional(t *testing.T) {
	body := "2016-01-01T00:00:00Z,1000\n2016-01-01T00:15:00Z,2000.5\n2016-01-01T00:30:00Z,0\n"
	bare, err := ReadPowerCSV(strings.NewReader(body))
	if err != nil {
		t.Fatalf("headerless CSV rejected: %v", err)
	}
	withHeader, err := ReadPowerCSV(strings.NewReader("timestamp,kw\n" + body))
	if err != nil {
		t.Fatal(err)
	}
	if bare.Len() != 3 || withHeader.Len() != 3 {
		t.Fatalf("lengths %d / %d, want 3", bare.Len(), withHeader.Len())
	}
	for i := 0; i < 3; i++ {
		if bare.At(i) != withHeader.At(i) {
			t.Errorf("sample %d: %v vs %v", i, bare.At(i), withHeader.At(i))
		}
	}
}

// TestReadPowerCSVErrorsNameLineAndField pins the friendliness contract:
// parse errors point at the file line and say which field is broken.
func TestReadPowerCSVErrorsNameLineAndField(t *testing.T) {
	cases := []struct {
		name, in string
		want     []string
	}{
		{
			"bad value with header",
			"timestamp,kw\n2016-01-01T00:00:00Z,1\n2016-01-01T00:15:00Z,twelve\n2016-01-01T00:30:00Z,3\n",
			[]string{"line 3", "kw field", `"twelve"`},
		},
		{
			"bad timestamp mid-file",
			"2016-01-01T00:00:00Z,1\n2016-01-01T00:15:00Z,2\n01/01/2016 00:30,3\n",
			[]string{"line 3", "timestamp field", "RFC 3339"},
		},
		{
			"off grid names line",
			"timestamp,kw\n2016-01-01T00:00:00Z,1\n2016-01-01T00:15:00Z,2\n2016-01-01T00:31:00Z,3\n",
			[]string{"line 4", "grid"},
		},
		{
			"out of order names both lines",
			"2016-01-01T01:00:00Z,1\n2016-01-01T00:00:00Z,2\n2016-01-01T02:00:00Z,3\n",
			[]string{"line 2", "line 1", "in order"},
		},
	}
	for _, tc := range cases {
		_, err := ReadPowerCSV(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		for _, frag := range tc.want {
			if !strings.Contains(err.Error(), frag) {
				t.Errorf("%s: error %q missing %q", tc.name, err, frag)
			}
		}
	}
}

func TestReadPowerCSVBadSecondTimestamp(t *testing.T) {
	in := "timestamp,kw\n2016-01-01T00:00:00Z,1\nbad,2\n2016-01-01T00:30:00Z,3\n"
	if _, err := ReadPowerCSV(strings.NewReader(in)); err == nil {
		t.Error("bad second timestamp should fail")
	}
}
