// Package procurement models the public-tender process the paper's CSCS
// case study describes (§4): the Swiss National Supercomputing Centre put
// its electricity procurement through a public procurement process,
// using external experts to design a power-contract model that (a)
// removed demand charges from the existing contract, (b) required an
// energy supply mix with 80 % renewable generation, and (c) defined a
// formula for calculating the electricity price in which four variables
// were left to the bidding ESPs — the bid is the chosen variable values.
//
// The package implements that mechanism generically: a Tender fixes the
// compliance rules and the price formula's variable ranges; ESP Bids fill
// in the variables; evaluation prices the buyer's reference load profile
// under each compliant bid and ranks them. A deterministic bid generator
// supports simulation studies of how much such a tender saves against a
// status-quo contract.
package procurement

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/contract"
	"repro/internal/demand"
	"repro/internal/tariff"
	"repro/internal/timeseries"
	"repro/internal/units"
)

// Variable is one price-formula component left to the bidders. The
// effective energy price of a bid is the sum of its variable values, so
// each variable is expressed in currency per kWh.
type Variable struct {
	// Name identifies the component ("base-energy", "balancing", ...).
	Name string
	// Min and Max bound credible offers; bids outside are non-compliant.
	Min, Max units.EnergyPrice
}

// Tender is the buyer's published contract model.
type Tender struct {
	// Name of the tender.
	Name string
	// Variables are the formula components bidders must quote.
	// CSCS left four variables to the ESPs; any count ≥ 1 works.
	Variables []Variable
	// RenewableShareMin is the minimum renewable fraction of the supply
	// mix (CSCS: 0.80).
	RenewableShareMin float64
	// DisallowDemandCharges rejects bids that include a demand charge
	// (CSCS removed demand charges from their contract model).
	DisallowDemandCharges bool
	// ReferenceLoad is the buyer's expected consumption profile used to
	// price bids.
	ReferenceLoad *timeseries.PowerSeries
}

// Validate checks the tender.
func (t *Tender) Validate() error {
	if len(t.Variables) == 0 {
		return errors.New("procurement: tender needs at least one formula variable")
	}
	seen := map[string]bool{}
	for _, v := range t.Variables {
		if v.Name == "" {
			return errors.New("procurement: variable needs a name")
		}
		if seen[v.Name] {
			return fmt.Errorf("procurement: duplicate variable %q", v.Name)
		}
		seen[v.Name] = true
		if v.Min < 0 || v.Max < v.Min {
			return fmt.Errorf("procurement: variable %q has invalid range", v.Name)
		}
	}
	if t.RenewableShareMin < 0 || t.RenewableShareMin > 1 {
		return errors.New("procurement: renewable share must be in [0,1]")
	}
	if t.ReferenceLoad == nil || t.ReferenceLoad.Len() == 0 {
		return errors.New("procurement: tender needs a reference load profile")
	}
	return nil
}

// CSCSVariables returns the four-variable formula used throughout the
// reproduction: base energy, green premium, balancing services and
// supplier margin, each bounded to a plausible range.
func CSCSVariables() []Variable {
	return []Variable{
		{Name: "base-energy", Min: 0.020, Max: 0.080},
		{Name: "green-premium", Min: 0.000, Max: 0.020},
		{Name: "balancing", Min: 0.002, Max: 0.015},
		{Name: "margin", Min: 0.001, Max: 0.010},
	}
}

// Bid is one ESP's offer.
type Bid struct {
	// Bidder names the ESP.
	Bidder string
	// Values assigns each formula variable.
	Values map[string]units.EnergyPrice
	// RenewableShare is the offered supply-mix fraction.
	RenewableShare float64
	// DemandCharge, if non-nil, is a demand-charge rider the bidder
	// insists on (non-compliant when the tender disallows them).
	DemandCharge *demand.Charge
}

// EffectiveRate sums the variable values: the bid's energy price.
func (b *Bid) EffectiveRate() units.EnergyPrice {
	var sum units.EnergyPrice
	for _, v := range b.Values {
		sum += v
	}
	return sum
}

// ComplianceError explains why a bid fails a tender's rules.
type ComplianceError struct {
	Bidder string
	Reason string
}

// Error implements error.
func (e *ComplianceError) Error() string {
	return fmt.Sprintf("procurement: bid from %s non-compliant: %s", e.Bidder, e.Reason)
}

// CheckCompliance verifies a bid against the tender.
func (t *Tender) CheckCompliance(b *Bid) error {
	for _, v := range t.Variables {
		val, ok := b.Values[v.Name]
		if !ok {
			return &ComplianceError{Bidder: b.Bidder, Reason: fmt.Sprintf("missing variable %q", v.Name)}
		}
		if val < v.Min || val > v.Max {
			return &ComplianceError{Bidder: b.Bidder, Reason: fmt.Sprintf("variable %q out of range", v.Name)}
		}
	}
	if len(b.Values) != len(t.Variables) {
		return &ComplianceError{Bidder: b.Bidder, Reason: "bid quotes variables outside the formula"}
	}
	if b.RenewableShare < t.RenewableShareMin {
		return &ComplianceError{Bidder: b.Bidder, Reason: fmt.Sprintf("renewable share %.0f%% below required %.0f%%",
			b.RenewableShare*100, t.RenewableShareMin*100)}
	}
	if t.DisallowDemandCharges && b.DemandCharge != nil {
		return &ComplianceError{Bidder: b.Bidder, Reason: "demand charges are disallowed by the contract model"}
	}
	return nil
}

// PriceBid returns the annual cost of the reference load under the bid.
func (t *Tender) PriceBid(b *Bid) (units.Money, error) {
	if err := t.CheckCompliance(b); err != nil {
		return 0, err
	}
	cost := b.EffectiveRate().Cost(t.ReferenceLoad.Energy())
	if b.DemandCharge != nil {
		cost += b.DemandCharge.Cost(t.ReferenceLoad, 0)
	}
	return cost, nil
}

// ScoredBid is one evaluated offer.
type ScoredBid struct {
	Bid        *Bid
	AnnualCost units.Money
	Compliant  bool
	// Reason is set for non-compliant bids.
	Reason string
}

// Outcome is the tender result.
type Outcome struct {
	// Ranked lists compliant bids by ascending annual cost, followed by
	// non-compliant bids.
	Ranked []ScoredBid
	// Winner is the cheapest compliant bid (nil if none).
	Winner *ScoredBid
}

// Run evaluates all bids and returns the outcome.
func (t *Tender) Run(bids []*Bid) (*Outcome, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if len(bids) == 0 {
		return nil, errors.New("procurement: no bids received")
	}
	var compliant, rejected []ScoredBid
	for _, b := range bids {
		cost, err := t.PriceBid(b)
		if err != nil {
			var ce *ComplianceError
			if errors.As(err, &ce) {
				rejected = append(rejected, ScoredBid{Bid: b, Reason: ce.Reason})
				continue
			}
			return nil, err
		}
		compliant = append(compliant, ScoredBid{Bid: b, AnnualCost: cost, Compliant: true})
	}
	sort.SliceStable(compliant, func(a, b int) bool {
		return compliant[a].AnnualCost < compliant[b].AnnualCost
	})
	out := &Outcome{Ranked: append(compliant, rejected...)}
	if len(compliant) > 0 {
		out.Winner = &out.Ranked[0]
	}
	return out, nil
}

// WinnerContract converts the winning bid into an executable contract:
// a fixed tariff at the bid's effective rate (plus the bid's demand
// charge if the tender allowed one).
func (o *Outcome) WinnerContract(name string) (*contract.Contract, error) {
	if o.Winner == nil {
		return nil, errors.New("procurement: tender produced no winner")
	}
	ft, err := tariff.NewFixed(o.Winner.Bid.EffectiveRate())
	if err != nil {
		return nil, err
	}
	c := &contract.Contract{Name: name, Tariffs: []tariff.Tariff{ft}}
	if o.Winner.Bid.DemandCharge != nil {
		c.DemandCharges = append(c.DemandCharges, o.Winner.Bid.DemandCharge)
	}
	return c, nil
}

// Savings compares the tender outcome against a status-quo contract on
// the tender's reference load: returns (statusQuoCost, winnerCost,
// absolute savings).
func (t *Tender) Savings(o *Outcome, statusQuo *contract.Contract) (units.Money, units.Money, units.Money, error) {
	if o.Winner == nil {
		return 0, 0, 0, errors.New("procurement: no winner to compare")
	}
	baseBill, err := contract.ComputeBill(statusQuo, t.ReferenceLoad, contract.BillingInput{})
	if err != nil {
		return 0, 0, 0, err
	}
	return baseBill.Total, o.Winner.AnnualCost, baseBill.Total - o.Winner.AnnualCost, nil
}

// BidGenConfig parameterizes the synthetic bid generator.
type BidGenConfig struct {
	// N is the number of bids to generate.
	N int
	// CompliantFraction of bids meet all rules; the rest violate the
	// renewable floor or sneak in a demand charge.
	CompliantFraction float64
	// Seed drives the deterministic generator.
	Seed int64
}

// GenerateBids draws synthetic ESP offers for the tender: variable
// values uniform within their ranges, renewable shares clustered just
// above (or for non-compliant bids below) the floor.
func GenerateBids(t *Tender, cfg BidGenConfig) ([]*Bid, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if cfg.N <= 0 {
		return nil, errors.New("procurement: need N >= 1 bids")
	}
	if cfg.CompliantFraction < 0 || cfg.CompliantFraction > 1 {
		return nil, errors.New("procurement: compliant fraction must be in [0,1]")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	bids := make([]*Bid, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		b := &Bid{
			Bidder: fmt.Sprintf("ESP-%02d", i+1),
			Values: make(map[string]units.EnergyPrice, len(t.Variables)),
		}
		for _, v := range t.Variables {
			span := float64(v.Max - v.Min)
			b.Values[v.Name] = v.Min + units.EnergyPrice(span*rng.Float64())
		}
		if rng.Float64() < cfg.CompliantFraction {
			b.RenewableShare = t.RenewableShareMin + (1-t.RenewableShareMin)*rng.Float64()
		} else if rng.Float64() < 0.5 && t.DisallowDemandCharges {
			// Non-compliant via a demand-charge rider.
			b.RenewableShare = t.RenewableShareMin + (1-t.RenewableShareMin)*rng.Float64()
			b.DemandCharge = demand.SimpleCharge(10)
		} else {
			// Non-compliant via a weak supply mix.
			b.RenewableShare = t.RenewableShareMin * rng.Float64()
		}
		bids = append(bids, b)
	}
	return bids, nil
}
