// Command scchaos runs a fleet of listener-level chaos proxies between
// scroute and its scserved backends, with an HTTP admin API for
// switching faults mid-run. It is the fault-injection half of the
// fleet chaos harness (make fleetchaos): scload drives traffic through
// the router while scenario scripts flip proxies into blackhole,
// reset, latency, trickle, or cut mode and assert on the client-
// visible outcome.
//
// Usage:
//
//	scchaos -admin :9300 \
//	    -proxy p1=127.0.0.1:9201@127.0.0.1:9101 \
//	    -proxy p2=127.0.0.1:9202@127.0.0.1:9102
//
// Each -proxy is name=listen@target. The admin API:
//
//	GET  /v1/proxies   current proxies and their faults
//	POST /v1/fault     {"proxy":"p1","mode":"latency","latency_ms":400,"jitter_ms":100}
//	GET  /healthz      liveness
//
// Setting a fault severs that proxy's live connections, so keep-alive
// pools warmed under the old fault re-dial through the new one.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/chaos"
)

// proxyFlags collects repeated -proxy name=listen@target specs.
type proxyFlags []string

func (p *proxyFlags) String() string     { return strings.Join(*p, ",") }
func (p *proxyFlags) Set(v string) error { *p = append(*p, v); return nil }

func main() {
	var specs proxyFlags
	flag.Var(&specs, "proxy", "proxy spec name=listen@target (repeatable)")
	admin := flag.String("admin", ":9300", "admin API listen address")
	seed := flag.Int64("seed", 1, "jitter PRNG seed (per-proxy seeds derive from it)")
	flag.Parse()

	if len(specs) == 0 {
		fmt.Fprintln(os.Stderr, "scchaos: at least one -proxy name=listen@target is required")
		os.Exit(2)
	}
	proxies := make(map[string]*chaos.Proxy, len(specs))
	for i, spec := range specs {
		name, listen, target, err := parseProxySpec(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scchaos:", err)
			os.Exit(2)
		}
		if _, dup := proxies[name]; dup {
			fmt.Fprintf(os.Stderr, "scchaos: duplicate proxy name %q\n", name)
			os.Exit(2)
		}
		p, err := chaos.NewProxy(chaos.ProxyConfig{
			Name:   name,
			Listen: listen,
			Target: target,
			Seed:   *seed + int64(i),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "scchaos:", err)
			os.Exit(2)
		}
		defer p.Close()
		proxies[name] = p
		log.Printf("scchaos: proxy %s listening on %s -> %s", name, p.Addr(), target)
	}

	if err := run(*admin, proxies); err != nil {
		fmt.Fprintln(os.Stderr, "scchaos:", err)
		os.Exit(1)
	}
}

// parseProxySpec splits name=listen@target.
func parseProxySpec(spec string) (name, listen, target string, err error) {
	name, rest, ok := strings.Cut(spec, "=")
	if !ok {
		return "", "", "", fmt.Errorf("bad -proxy %q (want name=listen@target)", spec)
	}
	listen, target, ok = strings.Cut(rest, "@")
	if !ok || name == "" || listen == "" || target == "" {
		return "", "", "", fmt.Errorf("bad -proxy %q (want name=listen@target)", spec)
	}
	return name, listen, target, nil
}

// proxyStatus is one row of GET /v1/proxies.
type proxyStatus struct {
	Name   string      `json:"name"`
	Listen string      `json:"listen"`
	Target string      `json:"target"`
	Fault  chaos.Fault `json:"fault"`
}

// faultRequest is the POST /v1/fault body. Durations arrive in
// integer milliseconds so scenario scripts can speak plain JSON.
type faultRequest struct {
	Proxy         string `json:"proxy"`
	Mode          string `json:"mode"`
	LatencyMS     int64  `json:"latency_ms"`
	JitterMS      int64  `json:"jitter_ms"`
	BytesPerSec   int    `json:"bytes_per_sec"`
	CutAfterBytes int64  `json:"cut_after_bytes"`
}

func adminHandler(proxies map[string]*chaos.Proxy) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/proxies", func(w http.ResponseWriter, _ *http.Request) {
		out := make([]proxyStatus, 0, len(proxies))
		for _, p := range proxies {
			out = append(out, proxyStatus{Name: p.Name(), Listen: p.Addr(), Target: p.Target(), Fault: p.Fault()})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("POST /v1/fault", func(w http.ResponseWriter, r *http.Request) {
		var req faultRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad fault body: %v", err))
			return
		}
		p, ok := proxies[req.Proxy]
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Sprintf("no proxy %q", req.Proxy))
			return
		}
		fault := chaos.Fault{
			Mode:          req.Mode,
			Latency:       time.Duration(req.LatencyMS) * time.Millisecond,
			Jitter:        time.Duration(req.JitterMS) * time.Millisecond,
			BytesPerSec:   req.BytesPerSec,
			CutAfterBytes: req.CutAfterBytes,
		}
		if err := p.SetFault(fault); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		log.Printf("scchaos: proxy %s fault -> %s", req.Proxy, p.Fault().Mode)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(proxyStatus{Name: p.Name(), Listen: p.Addr(), Target: p.Target(), Fault: p.Fault()})
	})
	return mux
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{msg})
}

func run(addr string, proxies map[string]*chaos.Proxy) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           adminHandler(proxies),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("scchaos admin listening on %s (%d proxies)", addr, len(proxies))
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-stop:
		log.Printf("scchaos: %s received, shutting down", sig)
	}
	return srv.Close()
}
