package optimize_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/contract"
	"repro/internal/demand"
	"repro/internal/hpc"
	"repro/internal/optimize"
	"repro/internal/tariff"
	"repro/internal/timeseries"
	"repro/internal/units"
)

var optStart = time.Date(2016, time.January, 1, 0, 0, 0, 0, time.UTC)

// testLoad is a deterministic three-month facility profile with real
// diurnal peaks — enough months for cross-month moves without year-long
// test runtimes.
func testLoad(t testing.TB) *timeseries.PowerSeries {
	t.Helper()
	load, err := hpc.SyntheticFacilityLoad(hpc.LoadProfileConfig{
		Start: optStart, Span: 90 * 24 * time.Hour, Interval: time.Hour,
		Base: 10 * units.Megawatt, PeakToAverage: 1.6, NoiseSigma: 0.02, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return load
}

// demandEngine compiles a fixed-tariff + 3-peak demand-charge contract:
// the canonical peak-shaving target.
func demandEngine(t testing.TB) *contract.Engine {
	t.Helper()
	eng, err := contract.NewEngine(&contract.Contract{
		Name:          "opt-demand",
		Tariffs:       []tariff.Tariff{tariff.MustNewFixed(0.06)},
		DemandCharges: []*demand.Charge{demand.SimpleCharge(15)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// ratchetEngine adds a ratchet demand charge and an upper powerband, so
// the incremental objective exercises its cross-month path.
func ratchetEngine(t testing.TB) *contract.Engine {
	t.Helper()
	band, err := demand.NewUpperPowerband(15*units.Megawatt, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := contract.NewEngine(&contract.Contract{
		Name:          "opt-ratchet",
		Tariffs:       []tariff.Tariff{tariff.MustNewFixed(0.06)},
		DemandCharges: []*demand.Charge{demand.MustNewCharge(12, demand.Ratchet, 0, 0.8)},
		Powerbands:    []*demand.Powerband{band},
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

var tenPercent = optimize.Flexibility{DeferrableFraction: 0.10, PartialFraction: 0.20}

func TestOptimizeBeatsBaselineOnDemandCharge(t *testing.T) {
	load := testLoad(t)
	for name, eng := range map[string]*contract.Engine{
		"demand":  demandEngine(t),
		"ratchet": ratchetEngine(t),
	} {
		t.Run(name, func(t *testing.T) {
			res, err := optimize.Optimize(context.Background(), eng, load,
				contract.BillingInput{}, tenPercent, optimize.Options{Seed: 7, Candidates: 600})
			if err != nil {
				t.Fatal(err)
			}
			if res.OptimizedMoney() >= res.BaselineMoney() {
				t.Fatalf("no savings: baseline %v, optimized %v", res.BaselineMoney(), res.OptimizedMoney())
			}
			if res.Savings <= 0 || res.SavingsFraction <= 0 {
				t.Fatalf("savings fields not positive: %+v", res)
			}
			if err := optimize.CheckFeasible(load, res.Series, tenPercent, res.DroppedKWh); err != nil {
				t.Fatalf("returned schedule infeasible: %v", err)
			}
			if res.Optimized.PeakKW >= res.Baseline.PeakKW {
				t.Errorf("peak did not drop: %v -> %v", res.Baseline.PeakKW, res.Optimized.PeakKW)
			}
			// The saving must come out of the kW branch, not arithmetic
			// drift in the energy branch.
			var demandSaving float64
			for _, c := range res.Components {
				if c.Component == "demand-charge" || c.Component == "powerband" {
					demandSaving += c.Saving
				}
			}
			if demandSaving <= 0 {
				t.Errorf("no demand-side saving in components: %+v", res.Components)
			}
			if res.Stats.Evaluated == 0 || res.Stats.Improved == 0 {
				t.Errorf("search stats empty: %+v", res.Stats)
			}
			// The incremental fast path must have re-billed far fewer
			// months than candidates × months.
			if max := res.Stats.Evaluated * 3; res.Stats.MonthsReevaluated > max {
				t.Errorf("months reevaluated %d exceeds %d", res.Stats.MonthsReevaluated, max)
			}
		})
	}
}

func TestOptimizeDeterministicAcrossRuns(t *testing.T) {
	load := testLoad(t)
	eng := ratchetEngine(t)
	run := func() []byte {
		res, err := optimize.Optimize(context.Background(), eng, load,
			contract.BillingInput{HistoricalPeak: 14000}, tenPercent,
			optimize.Options{Seed: 42, Candidates: 400})
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		// The optimized samples must be identical too, not only the
		// summary: marshal them alongside.
		samples, err := json.Marshal(res.Series.Samples())
		if err != nil {
			t.Fatal(err)
		}
		return append(data, samples...)
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different results:\n%s\n---\n%s", a, b)
	}
}

func TestOptimizeZeroFlexibilityReturnsBaseline(t *testing.T) {
	load := testLoad(t)
	eng := demandEngine(t)
	res, err := optimize.Optimize(context.Background(), eng, load,
		contract.BillingInput{}, optimize.Flexibility{}, optimize.Options{Seed: 1, Candidates: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Savings != 0 || res.OptimizedMoney() != res.BaselineMoney() {
		t.Fatalf("zero flexibility produced savings: %+v", res)
	}
	for i := 0; i < load.Len(); i++ {
		if res.Series.At(i) != load.At(i) {
			t.Fatalf("sample %d changed under zero flexibility", i)
		}
	}
}

func TestOptimizeValidation(t *testing.T) {
	eng := demandEngine(t)
	load := testLoad(t)
	if _, err := optimize.Optimize(context.Background(), eng, nil,
		contract.BillingInput{}, tenPercent, optimize.Options{}); err == nil {
		t.Error("nil baseline accepted")
	}
	bad := optimize.Flexibility{DeferrableFraction: 1.5}
	if _, err := optimize.Optimize(context.Background(), eng, load,
		contract.BillingInput{}, bad, optimize.Options{}); err == nil {
		t.Error("out-of-range flexibility accepted")
	}
}

func TestOptimizeHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := optimize.Optimize(ctx, demandEngine(t), testLoad(t),
		contract.BillingInput{}, tenPercent, optimize.Options{Seed: 1, Candidates: 2000})
	if err == nil {
		t.Fatal("cancelled optimize returned no error")
	}
}

func TestCheckFeasibleRejectsViolations(t *testing.T) {
	base := timeseries.MustNewPower(optStart, time.Hour, []units.Power{5000, 5000, 5000, 5000})
	flex := optimize.Flexibility{DeferrableFraction: 0.5, FloorKW: 4000, MaxRampKW: 100}

	below := timeseries.MustNewPower(optStart, time.Hour, []units.Power{5000, 3000, 5000, 7000})
	if err := optimize.CheckFeasible(base, below, flex, 0); err == nil {
		t.Error("floor violation accepted")
	}
	rampy := timeseries.MustNewPower(optStart, time.Hour, []units.Power{4500, 5500, 4500, 5500})
	if err := optimize.CheckFeasible(base, rampy, flex, 0); err == nil {
		t.Error("ramp violation accepted")
	}
	leaky := timeseries.MustNewPower(optStart, time.Hour, []units.Power{4990, 4990, 4990, 4990})
	if err := optimize.CheckFeasible(base, leaky, flex, 0); err == nil {
		t.Error("energy loss without declared drop accepted")
	}
	same := timeseries.MustNewPower(optStart, time.Hour, []units.Power{5000, 5000, 5000, 5000})
	if err := optimize.CheckFeasible(base, same, flex, 0); err != nil {
		t.Errorf("identity schedule rejected: %v", err)
	}
}
