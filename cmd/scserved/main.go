// Command scserved runs the billing-as-a-service daemon: a long-lived
// HTTP/JSON server exposing bill computation (with an LRU cache of
// compiled contract engines), the survey dataset, and the renegotiation
// advisor. See internal/serve for the API.
//
// Usage:
//
//	scserved -addr :8080
//	scserved -addr :8080 -max-concurrent 8 -queue 128 -timeout 10s
//
// The daemon sheds load with 429 + Retry-After when its request queue
// fills, and drains in-flight bills on SIGINT/SIGTERM before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxConcurrent := flag.Int("max-concurrent", 0, "parallel bill evaluations (0 = all CPUs)")
	queueDepth := flag.Int("queue", 64, "requests allowed to wait for a slot before shedding with 429 (-1 = no queue)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline, queue wait included")
	cacheSize := flag.Int("cache", 128, "compiled contract engines kept in the LRU")
	monthWorkers := flag.Int("month-workers", 0, "worker pool per monthly request (0 = all CPUs)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight bills")
	flag.Parse()

	if err := run(*addr, serve.Config{
		MaxConcurrent:   *maxConcurrent,
		QueueDepth:      *queueDepth,
		RequestTimeout:  *timeout,
		EngineCacheSize: *cacheSize,
		MonthWorkers:    *monthWorkers,
	}, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "scserved:", err)
		os.Exit(1)
	}
}

func run(addr string, cfg serve.Config, drainTimeout time.Duration) error {
	svc := serve.NewServer(cfg)
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("scserved listening on %s", addr)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		return err
	case sig := <-stop:
		log.Printf("scserved: %s received, draining in-flight bills", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Refuse new work and wait for admitted bills first, then close the
	// listener and idle connections.
	if err := svc.Shutdown(ctx); err != nil {
		log.Printf("scserved: drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	log.Printf("scserved: drained, bye")
	return nil
}
