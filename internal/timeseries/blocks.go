package timeseries

// Columnar month-block view of a PowerSeries. The billing engine's hot
// path wants contiguous per-calendar-month sample slices it can scan
// without per-sample method dispatch and without the defensive copy the
// Samples() contract makes. MonthBlock is that view: it shares the
// series' storage deliberately (the one sanctioned zero-copy window
// into a PowerSeries) and is read-only by convention — mutating a
// block's samples corrupts the series it views.
//
// The partition is exactly SplitMonths': a sample belongs to the
// calendar month containing its interval start, in the series'
// location. The boundaries are computed with O(months) wall-clock
// arithmetic rather than a per-sample month lookup, which is what makes
// the ratchet peak prescan allocation-free.

import (
	"time"

	"repro/internal/units"
)

// MonthBlock is one calendar month of a PowerSeries as a contiguous
// sample slice. Samples aliases the parent series' storage: treat it as
// read-only.
type MonthBlock struct {
	// Start is the start instant of the block's first sample interval.
	Start time.Time
	// Offset is the index of the block's first sample in the parent
	// series.
	Offset int
	// Samples are the block's samples, sharing the parent's storage.
	Samples []units.Power
}

// Peak returns the block's maximum sample (0 for an empty block;
// AppendBlocks never produces one).
func (b MonthBlock) Peak() units.Power {
	if len(b.Samples) == 0 {
		return 0
	}
	peak := b.Samples[0]
	for _, p := range b.Samples[1:] {
		if p > peak {
			peak = p
		}
	}
	return peak
}

// Blocks returns the series' calendar-month blocks in chronological
// order. Equivalent to AppendBlocks(nil).
func (s *PowerSeries) Blocks() []MonthBlock {
	return s.AppendBlocks(nil)
}

// AppendBlocks appends the series' calendar-month blocks to dst
// (truncated first) and returns the extended slice. Passing a scratch
// slice with sufficient capacity makes the call allocation-free, which
// the billing engine's prescan relies on. The partition is identical to
// SplitMonths: each sample belongs to the month containing its interval
// start, partial edge months included as-is.
func (s *PowerSeries) AppendBlocks(dst []MonthBlock) []MonthBlock {
	dst = dst[:0]
	n := len(s.samples)
	cur := 0
	for cur < n {
		t := s.TimeAt(cur)
		y, m, _ := t.Date()
		nextMonth := time.Date(y, m+1, 1, 0, 0, 0, 0, t.Location())
		// First sample index at or past the next month's start.
		end := cur + 1 + int((nextMonth.Sub(t)-1)/s.interval)
		if end > n {
			end = n
		}
		if end <= cur {
			end = cur + 1 // defensive: blocks always advance
		}
		dst = append(dst, MonthBlock{Start: t, Offset: cur, Samples: s.samples[cur:end:end]})
		cur = end
	}
	return dst
}

// Months returns the calendar-month sub-series as a single value slab
// (one backing array for all months, each sharing the parent's sample
// storage like Window does). It is the low-allocation counterpart of
// SplitMonths for callers that iterate months by index.
func (s *PowerSeries) Months() []PowerSeries {
	if len(s.samples) == 0 {
		return nil
	}
	blocks := s.AppendBlocks(nil)
	out := make([]PowerSeries, len(blocks))
	for i, b := range blocks {
		out[i] = PowerSeries{start: b.Start, interval: s.interval, samples: b.Samples}
	}
	return out
}
