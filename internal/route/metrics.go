package route

// Router-side metrics in the same hand-rolled Prometheus text
// exposition style as internal/serve, under the scroute_ namespace:
// per-path/code request counts, per-backend forward outcomes, breaker
// ejections, retries, and an upstream latency histogram.

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/resilience"
)

type metrics struct {
	mu              sync.Mutex
	requests        map[string]uint64 // "path|code" -> count, as relayed to the client
	backendRequests map[string]uint64 // "backend|code" -> count; code "error" = transport failure
	ejections       map[string]uint64 // backend -> breaker trips into open

	retries         atomic.Uint64 // forwards re-sent to a lower-ranked backend
	noBackend       atomic.Uint64 // requests that exhausted every backend
	hedges          atomic.Uint64 // speculative second attempts launched
	hedgeWins       atomic.Uint64 // hedges whose response was relayed
	budgetExhausted atomic.Uint64 // retries/hedges refused by the token budget
	tryTimeouts     atomic.Uint64 // forwards killed by the per-try timeout
	deadlineExpired atomic.Uint64 // requests arriving with a spent deadline budget

	upstream *obs.Histogram // seconds per successful forward
}

func newMetrics() *metrics {
	return &metrics{
		requests:        make(map[string]uint64),
		backendRequests: make(map[string]uint64),
		ejections:       make(map[string]uint64),
		upstream:        obs.NewHistogram(),
	}
}

func (m *metrics) observeRequest(path string, code int) {
	m.mu.Lock()
	m.requests[fmt.Sprintf("%s|%d", path, code)]++
	m.mu.Unlock()
}

// observeBackend records one forward outcome; code <= 0 means the
// request never produced a response (transport error).
func (m *metrics) observeBackend(backend string, code int) {
	label := "error"
	if code > 0 {
		label = fmt.Sprintf("%d", code)
	}
	m.mu.Lock()
	m.backendRequests[backend+"|"+label]++
	m.mu.Unlock()
}

func (m *metrics) observeEjection(backend string) {
	m.mu.Lock()
	m.ejections[backend]++
	m.mu.Unlock()
}

// render writes the exposition. healthy maps each backend name to its
// current eligibility so the gauge reflects live breaker state rather
// than a counter; budget is a live snapshot of the retry/hedge bucket.
func (m *metrics) render(w io.Writer, healthy map[string]bool, budget resilience.BudgetStats) {
	m.mu.Lock()
	requests := sortedKeys(m.requests)
	backendReqs := sortedKeys(m.backendRequests)
	ejections := sortedKeys(m.ejections)

	fmt.Fprintln(w, "# HELP scroute_requests_total Requests relayed to clients by path and status code.")
	fmt.Fprintln(w, "# TYPE scroute_requests_total counter")
	for _, k := range requests {
		path, code := splitKey(k)
		fmt.Fprintf(w, "scroute_requests_total{path=%q,code=%q} %d\n", path, code, m.requests[k])
	}

	fmt.Fprintln(w, "# HELP scroute_backend_requests_total Forward attempts by backend and outcome (code, or \"error\" for transport failures).")
	fmt.Fprintln(w, "# TYPE scroute_backend_requests_total counter")
	for _, k := range backendReqs {
		backend, code := splitKey(k)
		fmt.Fprintf(w, "scroute_backend_requests_total{backend=%q,code=%q} %d\n", backend, code, m.backendRequests[k])
	}

	fmt.Fprintln(w, "# HELP scroute_backend_ejections_total Breaker trips that ejected a backend from the ring.")
	fmt.Fprintln(w, "# TYPE scroute_backend_ejections_total counter")
	for _, k := range ejections {
		fmt.Fprintf(w, "scroute_backend_ejections_total{backend=%q} %d\n", k, m.ejections[k])
	}
	m.mu.Unlock()

	names := make([]string, 0, len(healthy))
	for name := range healthy {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintln(w, "# HELP scroute_backend_healthy Whether the backend is currently eligible for forwards (last poll passed, breaker not open).")
	fmt.Fprintln(w, "# TYPE scroute_backend_healthy gauge")
	for _, name := range names {
		v := 0
		if healthy[name] {
			v = 1
		}
		fmt.Fprintf(w, "scroute_backend_healthy{backend=%q} %d\n", name, v)
	}

	fmt.Fprintln(w, "# HELP scroute_retries_total Forwards re-sent to a lower-ranked backend after a failure.")
	fmt.Fprintln(w, "# TYPE scroute_retries_total counter")
	fmt.Fprintf(w, "scroute_retries_total %d\n", m.retries.Load())

	fmt.Fprintln(w, "# HELP scroute_no_backend_total Requests that exhausted every backend without a relayable response.")
	fmt.Fprintln(w, "# TYPE scroute_no_backend_total counter")
	fmt.Fprintf(w, "scroute_no_backend_total %d\n", m.noBackend.Load())

	fmt.Fprintln(w, "# HELP scroute_hedges_total Speculative second attempts launched after the hedge delay.")
	fmt.Fprintln(w, "# TYPE scroute_hedges_total counter")
	fmt.Fprintf(w, "scroute_hedges_total %d\n", m.hedges.Load())

	fmt.Fprintln(w, "# HELP scroute_hedge_wins_total Hedged attempts whose response was the one relayed to the client.")
	fmt.Fprintln(w, "# TYPE scroute_hedge_wins_total counter")
	fmt.Fprintf(w, "scroute_hedge_wins_total %d\n", m.hedgeWins.Load())

	fmt.Fprintln(w, "# HELP scroute_retry_budget_exhausted_total Failover retries and hedges refused because the token budget was spent.")
	fmt.Fprintln(w, "# TYPE scroute_retry_budget_exhausted_total counter")
	fmt.Fprintf(w, "scroute_retry_budget_exhausted_total %d\n", m.budgetExhausted.Load())

	fmt.Fprintln(w, "# HELP scroute_try_timeouts_total Forwards killed by the per-try timeout (gray-failure detector).")
	fmt.Fprintln(w, "# TYPE scroute_try_timeouts_total counter")
	fmt.Fprintf(w, "scroute_try_timeouts_total %d\n", m.tryTimeouts.Load())

	fmt.Fprintln(w, "# HELP scroute_deadline_expired_total Requests whose propagated X-SCBill-Deadline-Ms was already spent on arrival.")
	fmt.Fprintln(w, "# TYPE scroute_deadline_expired_total counter")
	fmt.Fprintf(w, "scroute_deadline_expired_total %d\n", m.deadlineExpired.Load())

	fmt.Fprintln(w, "# HELP scroute_retry_budget_tokens Current balance of the shared retry/hedge token bucket.")
	fmt.Fprintln(w, "# TYPE scroute_retry_budget_tokens gauge")
	fmt.Fprintf(w, "scroute_retry_budget_tokens %g\n", budget.Tokens)

	fmt.Fprintln(w, "# HELP scroute_upstream_seconds Latency of successful forwards, send to response headers.")
	fmt.Fprintln(w, "# TYPE scroute_upstream_seconds histogram")
	m.upstream.Snapshot().WriteProm(w, "scroute_upstream_seconds", "")
}

func sortedKeys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// splitKey splits a "left|right" metrics key at the last separator, so
// paths containing no pipe round-trip exactly.
func splitKey(k string) (string, string) {
	for i := len(k) - 1; i >= 0; i-- {
		if k[i] == '|' {
			return k[:i], k[i+1:]
		}
	}
	return k, ""
}
