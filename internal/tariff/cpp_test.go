package tariff

import (
	"strings"
	"testing"
	"time"

	"repro/internal/timeseries"
	"repro/internal/units"
)

func newCPP(t *testing.T, maxEvents int) *CPPTariff {
	t.Helper()
	cpp, err := NewCPP(MustNewFixed(0.08), 1.20, maxEvents)
	if err != nil {
		t.Fatal(err)
	}
	return cpp
}

func TestNewCPPValidation(t *testing.T) {
	if _, err := NewCPP(nil, 1, 0); err == nil {
		t.Error("nil base should fail")
	}
	if _, err := NewCPP(MustNewFixed(0.08), 0, 0); err == nil {
		t.Error("zero critical rate should fail")
	}
	if _, err := NewCPP(MustNewFixed(0.08), 1, -1); err == nil {
		t.Error("negative max events should fail")
	}
}

func TestCPPDeclareValidation(t *testing.T) {
	cpp := newCPP(t, 2)
	w := CriticalWindow{Start: t0, End: t0.Add(time.Hour)}
	if err := cpp.Declare(w); err != nil {
		t.Fatal(err)
	}
	// Inverted window.
	if err := cpp.Declare(CriticalWindow{Start: t0.Add(time.Hour), End: t0}); err == nil {
		t.Error("inverted window should fail")
	}
	// Budget.
	if err := cpp.Declare(CriticalWindow{Start: t0.Add(2 * time.Hour), End: t0.Add(3 * time.Hour)}); err != nil {
		t.Fatal(err)
	}
	if err := cpp.Declare(CriticalWindow{Start: t0.Add(4 * time.Hour), End: t0.Add(5 * time.Hour)}); err == nil {
		t.Error("third event should exceed the budget of 2")
	}
	if len(cpp.Windows()) != 2 {
		t.Errorf("windows = %d", len(cpp.Windows()))
	}
}

func TestCPPDeclareRejectsNonPremiumRate(t *testing.T) {
	cpp, err := NewCPP(MustNewFixed(2.0), 1.0, 0) // critical below base
	if err != nil {
		t.Fatal(err)
	}
	if err := cpp.Declare(CriticalWindow{Start: t0, End: t0.Add(time.Hour)}); err == nil {
		t.Error("critical rate below base should fail at declaration")
	}
}

func TestCPPPricing(t *testing.T) {
	cpp := newCPP(t, 0)
	if cpp.Kind() != Dynamic {
		t.Error("CPP classifies as dynamic")
	}
	if err := cpp.Declare(CriticalWindow{Start: t0.Add(time.Hour), End: t0.Add(2 * time.Hour)}); err != nil {
		t.Fatal(err)
	}
	if got := cpp.PriceAt(t0); got != 0.08 {
		t.Errorf("outside window price = %v", got)
	}
	if got := cpp.PriceAt(t0.Add(90 * time.Minute)); got != 1.20 {
		t.Errorf("inside window price = %v", got)
	}
	// Half-open window.
	if got := cpp.PriceAt(t0.Add(2 * time.Hour)); got != 0.08 {
		t.Errorf("window end price = %v", got)
	}
	// 1 MW for 3 h: hour 0 and 2 at base, hour 1 critical.
	load := timeseries.ConstantPower(t0, time.Hour, 3, 1000)
	got := cpp.Cost(load)
	want := units.CurrencyUnits(80 + 1200 + 80)
	if got != want {
		t.Errorf("cost = %v, want %v", got, want)
	}
	// Critical premium only.
	if prem := cpp.CriticalCost(load); prem != units.CurrencyUnits(1200-80) {
		t.Errorf("critical cost = %v", prem)
	}
	if !strings.Contains(cpp.Describe(), "critical-peak") {
		t.Error("describe")
	}
}

func TestCPPNoWindowsEqualsBase(t *testing.T) {
	cpp := newCPP(t, 0)
	base := MustNewFixed(0.08)
	load := timeseries.ConstantPower(t0, time.Hour, 24, 5000)
	if cpp.Cost(load) != base.Cost(load) {
		t.Error("CPP without windows must equal the base tariff")
	}
	if cpp.CriticalCost(load) != 0 {
		t.Error("no windows, no premium")
	}
}

func TestCPPInStackAndClassification(t *testing.T) {
	cpp := newCPP(t, 0)
	s := MustNewStack(MustNewFixed(0.02), cpp)
	if s.Kind() != Dynamic {
		t.Error("stack with CPP classifies dynamic")
	}
}
