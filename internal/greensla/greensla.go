// Package greensla implements GreenSDA-style supply-demand agreements —
// the contract design the paper's related work describes as "specifically
// aimed at enabling data center power flexibility" (Basmadjian et al.,
// GreenSDA/GreenSLA, §2) and notes were designed but never implemented.
// Here they are implemented.
//
// Under a GreenSDA the ESP sends the data center typed adaptation
// windows: green windows during renewable surplus, where extra
// consumption is rewarded with a discount, and red windows during
// scarcity, where reductions below the baseline earn a reward and a
// committed reduction is enforced with a penalty. The package models the
// agreement, settles adapted consumption against it, and provides an
// energy-conserving adapter that shifts load from red into green windows.
package greensla

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/timeseries"
	"repro/internal/units"
)

// WindowKind types an adaptation window.
type WindowKind int

// Window kinds.
const (
	// Green marks renewable surplus: consumption is encouraged.
	Green WindowKind = iota
	// Red marks scarcity: reduction below baseline is requested.
	Red
)

// String returns the kind name.
func (k WindowKind) String() string {
	switch k {
	case Green:
		return "green"
	case Red:
		return "red"
	default:
		return fmt.Sprintf("WindowKind(%d)", int(k))
	}
}

// Window is one ESP adaptation signal.
type Window struct {
	Kind     WindowKind
	Start    time.Time
	Duration time.Duration
}

// End returns the window's end instant.
func (w Window) End() time.Time { return w.Start.Add(w.Duration) }

// covers reports whether t falls inside the window.
func (w Window) covers(t time.Time) bool {
	return !t.Before(w.Start) && t.Before(w.End())
}

// Agreement is the GreenSDA's economic terms.
type Agreement struct {
	// BaseRate prices all energy.
	BaseRate units.EnergyPrice
	// GreenDiscount is subtracted from the base rate for energy
	// consumed during green windows.
	GreenDiscount units.EnergyPrice
	// RedReward pays per kWh avoided (below baseline) in red windows.
	RedReward units.EnergyPrice
	// CommittedReduction is the reduction the DC promises in every red
	// window; shortfalls pay Penalty per kWh.
	CommittedReduction units.Power
	Penalty            units.EnergyPrice
}

// Validate checks the agreement.
func (a *Agreement) Validate() error {
	if a.BaseRate <= 0 {
		return errors.New("greensla: base rate must be positive")
	}
	if a.GreenDiscount < 0 || a.GreenDiscount > a.BaseRate {
		return errors.New("greensla: green discount must be in [0, base rate]")
	}
	if a.RedReward < 0 || a.Penalty < 0 {
		return errors.New("greensla: reward and penalty must be non-negative")
	}
	if a.CommittedReduction < 0 {
		return errors.New("greensla: committed reduction must be non-negative")
	}
	return nil
}

// Settlement is the outcome of one settlement period.
type Settlement struct {
	// EnergyCost is base-rate cost of the adapted consumption.
	EnergyCost units.Money
	// GreenCredit is the discount earned in green windows.
	GreenCredit units.Money
	// RedReward is the avoidance payment earned in red windows.
	RedReward units.Money
	// Penalty charges red-window under-delivery.
	Penalty units.Money
	// Net = EnergyCost − GreenCredit − RedReward + Penalty.
	Net units.Money
	// AbsorbedGreen is extra energy (above baseline) taken in green
	// windows — the flexibility the ESP wanted.
	AbsorbedGreen units.Energy
	// AvoidedRed is energy avoided (below baseline) in red windows.
	AvoidedRed units.Energy
}

// Settle prices adapted consumption against the agreement, measuring
// adaptation against the declared baseline. The series must be aligned.
func (a *Agreement) Settle(baseline, adapted *timeseries.PowerSeries, windows []Window) (*Settlement, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	diff, err := adapted.Sub(baseline) // positive = consuming more
	if err != nil {
		return nil, err
	}
	s := &Settlement{EnergyCost: a.BaseRate.Cost(adapted.Energy())}
	h := adapted.Interval().Hours()
	for i := 0; i < adapted.Len(); i++ {
		ts := adapted.TimeAt(i)
		for _, w := range windows {
			if !w.covers(ts) {
				continue
			}
			switch w.Kind {
			case Green:
				// Discount on all green-window consumption.
				e := units.Energy(float64(adapted.At(i)) * h)
				s.GreenCredit += a.GreenDiscount.Cost(e)
				if d := diff.At(i); d > 0 {
					s.AbsorbedGreen += units.Energy(float64(d) * h)
				}
			case Red:
				avoided := -diff.At(i)
				if avoided < 0 {
					avoided = 0
				}
				e := units.Energy(float64(avoided) * h)
				s.AvoidedRed += e
				s.RedReward += a.RedReward.Cost(e)
				if avoided < a.CommittedReduction {
					short := units.Energy(float64(a.CommittedReduction-avoided) * h)
					s.Penalty += a.Penalty.Cost(short)
				}
			}
			break // at most one window per instant governs
		}
	}
	s.Net = s.EnergyCost - s.GreenCredit - s.RedReward + s.Penalty
	return s, nil
}

// Adapt shifts load from red windows into green windows, energy-
// conserving: each red window sheds up to the agreement's committed
// reduction (bounded by fraction×load), and the removed energy is
// spread uniformly over the green windows. Red energy that finds no
// green window to land in is simply not shifted.
func Adapt(baseline *timeseries.PowerSeries, windows []Window, committed units.Power, fraction float64) (*timeseries.PowerSeries, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, errors.New("greensla: fraction must be in (0,1]")
	}
	if committed <= 0 {
		return nil, errors.New("greensla: committed reduction must be positive")
	}
	samples := baseline.Samples()
	h := baseline.Interval().Hours()

	var greenIdx []int
	for i := 0; i < baseline.Len(); i++ {
		ts := baseline.TimeAt(i)
		for _, w := range windows {
			if w.Kind == Green && w.covers(ts) {
				greenIdx = append(greenIdx, i)
				break
			}
		}
	}
	var removedKWh float64
	for i := 0; i < baseline.Len(); i++ {
		ts := baseline.TimeAt(i)
		for _, w := range windows {
			if w.Kind != Red || !w.covers(ts) {
				continue
			}
			cut := units.MinPower(committed, units.Power(float64(samples[i])*fraction))
			if cut > 0 {
				samples[i] -= cut
				removedKWh += float64(cut) * h
			}
			break
		}
	}
	if removedKWh > 0 && len(greenIdx) > 0 {
		add := removedKWh / (float64(len(greenIdx)) * h)
		for _, i := range greenIdx {
			samples[i] += units.Power(add)
		}
	}
	return timeseries.NewPower(baseline.Start(), baseline.Interval(), samples)
}
