package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func writeSpec(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "site.json")
	spec := `{"name":"test-site","tariffs":[{"type":"fixed","rate":0.07}],"demand_charges":[{"price_per_kw":12}]}`
	if err := os.WriteFile(p, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunSyntheticLoad(t *testing.T) {
	if err := run(writeSpec(t), "", "", 10, 1.5, 7, 1, false, false, 0, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunMonthly(t *testing.T) {
	if err := run(writeSpec(t), "", "", 10, 1.5, 40, 1, true, false, 0, false); err != nil {
		t.Fatal(err)
	}
	// Forced-sequential and sized pools must work identically.
	if err := run(writeSpec(t), "", "", 10, 1.5, 40, 1, true, false, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := run(writeSpec(t), "", "", 10, 1.5, 40, 1, true, false, 4, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunCSVLoad(t *testing.T) {
	p := filepath.Join(t.TempDir(), "load.csv")
	csv := "timestamp,kw\n2016-01-01T00:00:00Z,1000\n2016-01-01T00:15:00Z,1200\n2016-01-01T00:30:00Z,900\n"
	if err := os.WriteFile(p, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(writeSpec(t), p, "", 0, 0, 0, 0, false, false, 0, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", "", 10, 1.5, 7, 1, false, false, 0, false); err == nil {
		t.Error("missing contract should fail")
	}
	if err := run("/nonexistent.json", "", "", 10, 1.5, 7, 1, false, false, 0, false); err == nil {
		t.Error("missing file should fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{nope"), 0o644)
	if err := run(bad, "", "", 10, 1.5, 7, 1, false, false, 0, false); err == nil {
		t.Error("bad JSON should fail")
	}
	if err := run(writeSpec(t), "/nonexistent.csv", "", 0, 0, 0, 0, false, false, 0, false); err == nil {
		t.Error("missing CSV should fail")
	}
	if err := run(writeSpec(t), "", "", -1, 0.5, 7, 1, false, false, 0, false); err == nil {
		t.Error("invalid synthetic parameters should fail")
	}
}

func TestRunJSONOutput(t *testing.T) {
	if err := run(writeSpec(t), "", "", 10, 1.5, 7, 1, false, true, 0, false); err != nil {
		t.Fatal(err)
	}
	if err := run(writeSpec(t), "", "", 10, 1.5, 40, 1, true, true, 0, false); err != nil {
		t.Fatal(err)
	}
}

// TestRunTrace: -trace must print the span table (with the engine's
// per-family billing spans) to stderr in both billing modes.
func TestRunTrace(t *testing.T) {
	capture := func(f func() error) string {
		t.Helper()
		old := os.Stderr
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		os.Stderr = w
		errc := make(chan error, 1)
		go func() { errc <- f() }()
		runErr := <-errc
		w.Close()
		os.Stderr = old
		out, _ := io.ReadAll(r)
		r.Close()
		if runErr != nil {
			t.Fatal(runErr)
		}
		return string(out)
	}

	single := capture(func() error {
		return run(writeSpec(t), "", "", 10, 1.5, 7, 1, false, false, 0, true)
	})
	for _, want := range []string{"billing.period", "billing.tariff", "billing.demand", "count", "mean"} {
		if !strings.Contains(single, want) {
			t.Errorf("single-period trace missing %q:\n%s", want, single)
		}
	}

	monthly := capture(func() error {
		return run(writeSpec(t), "", "", 10, 1.5, 40, 1, true, false, 2, true)
	})
	for _, want := range []string{"billing.months", "billing.period"} {
		if !strings.Contains(monthly, want) {
			t.Errorf("monthly trace missing %q:\n%s", want, monthly)
		}
	}
}

// TestRunBatch: -batch bills every spec in the directory against one
// load, with per-spec error isolation and a failing exit when any spec
// is broken.
func TestRunBatch(t *testing.T) {
	dir := t.TempDir()
	for i, rate := range []float64{0.05, 0.07, 0.09} {
		spec := fmt.Sprintf(`{"name":"site-%d","tariffs":[{"type":"fixed","rate":%g}],"demand_charges":[{"price_per_kw":12}]}`, i, rate)
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("site-%d.json", i)), []byte(spec), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := runBatch(dir, "", "", 10, 1.5, 7, 1, false, false, 0); err != nil {
		t.Fatalf("batch over good specs: %v", err)
	}
	if err := runBatch(dir, "", "", 10, 1.5, 40, 1, true, true, 2); err != nil {
		t.Fatalf("monthly JSON batch: %v", err)
	}

	// One broken spec fails the run but not the other bills.
	if err := os.WriteFile(filepath.Join(dir, "broken.json"), []byte(`{"name":"x","tariffs":[{"type":"warp"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := runBatch(dir, "", "", 10, 1.5, 7, 1, false, false, 0)
	if err == nil || !strings.Contains(err.Error(), "1 of 4") {
		t.Fatalf("broken spec must fail the batch with a count, got: %v", err)
	}

	if err := runBatch(t.TempDir(), "", "", 10, 1.5, 7, 1, false, false, 0); err == nil {
		t.Error("empty directory must fail")
	}
}

// TestRunWithFeedFile: dynamic tariffs price against the -feed file,
// and a malformed feed is rejected with a line-numbered error.
func TestRunWithFeedFile(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "dyn.json")
	os.WriteFile(spec, []byte(`{"name":"dyn-site","tariffs":[{"type":"dynamic","multiplier":1.1}]}`), 0o644)

	feedPath := filepath.Join(dir, "prices.csv")
	var csv strings.Builder
	csv.WriteString("timestamp,price_per_kwh\n")
	start := time.Date(2016, time.March, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 8*24; i++ {
		fmt.Fprintf(&csv, "%s,0.04\n", start.Add(time.Duration(i)*time.Hour).Format(time.RFC3339))
	}
	os.WriteFile(feedPath, []byte(csv.String()), 0o644)
	if err := run(spec, "", feedPath, 10, 1.5, 7, 1, false, false, 0, false); err != nil {
		t.Fatalf("bill with -feed: %v", err)
	}

	bad := filepath.Join(dir, "bad.csv")
	os.WriteFile(bad, []byte("timestamp,price_per_kwh\n2016-03-01T00:00:00Z,NaN\n2016-03-01T01:00:00Z,0.03\n"), 0o644)
	err := run(spec, "", bad, 10, 1.5, 7, 1, false, false, 0, false)
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("NaN feed must fail with a line number, got: %v", err)
	}
}
