// Package market models wholesale price formation and the demand-response
// program catalog an ESP offers. Prices form on net load through a convex
// merit-order curve (cheap baseload first, expensive peakers last, a
// scarcity adder near the capacity limit), which produces the two price
// products behind the typology's dynamic tariffs: a day-ahead price from
// forecast net load and a real-time price from actual net load.
//
// DR programs follow the paper's taxonomy of related work: price-based
// programs (the dynamic tariff itself, critical-peak pricing) and
// incentive-based programs (emergency DR, capacity bidding, regulation),
// with the settlement arithmetic — baseline, curtailment measurement,
// incentive payment, under-delivery penalty — that decides whether DR is
// worth an SC's while.
package market

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/grid"
	"repro/internal/timeseries"
	"repro/internal/units"
)

// PriceModel maps system utilization (net load / capacity) to a price.
type PriceModel struct {
	// Capacity is the dispatchable generation capacity.
	Capacity units.Power
	// Base is the price at zero load (must be ≥ 0).
	Base units.EnergyPrice
	// Slope scales the convex merit-order term.
	Slope units.EnergyPrice
	// Gamma is the convexity exponent (≥ 1; 3–5 gives peaker-like knees).
	Gamma float64
	// ScarcityThreshold is the utilization beyond which the scarcity
	// adder kicks in (e.g. 0.92).
	ScarcityThreshold float64
	// ScarcityAdder is the price added linearly as utilization runs
	// from the threshold to 1.
	ScarcityAdder units.EnergyPrice
}

// Validate checks the model.
func (m PriceModel) Validate() error {
	if m.Capacity <= 0 {
		return errors.New("market: capacity must be positive")
	}
	if m.Base < 0 || m.Slope < 0 || m.ScarcityAdder < 0 {
		return errors.New("market: price components must be non-negative")
	}
	if m.Gamma < 1 {
		return errors.New("market: gamma must be >= 1")
	}
	if m.ScarcityThreshold <= 0 || m.ScarcityThreshold > 1 {
		return errors.New("market: scarcity threshold must be in (0,1]")
	}
	return nil
}

// DefaultPriceModel returns a model calibrated to produce realistic
// wholesale prices (≈30–60 /MWh off-peak, spiking toward several hundred
// per MWh in scarcity hours) for the given capacity.
func DefaultPriceModel(capacity units.Power) PriceModel {
	return PriceModel{
		Capacity:          capacity,
		Base:              0.020, // 20/MWh floor
		Slope:             0.060,
		Gamma:             4,
		ScarcityThreshold: 0.92,
		ScarcityAdder:     0.500, // up to +500/MWh at full scarcity
	}
}

// PriceAt returns the price for one net-load observation.
func (m PriceModel) PriceAt(netLoad units.Power) units.EnergyPrice {
	u := float64(netLoad) / float64(m.Capacity)
	if u < 0 {
		u = 0
	}
	p := float64(m.Base) + float64(m.Slope)*math.Pow(u, m.Gamma)
	if u > m.ScarcityThreshold {
		frac := (u - m.ScarcityThreshold) / (1 - m.ScarcityThreshold)
		if frac > 1 {
			frac = 1
		}
		p += float64(m.ScarcityAdder) * frac
	}
	return units.EnergyPrice(p)
}

// PriceSeries converts a net-load profile into a price feed.
func (m PriceModel) PriceSeries(netLoad *timeseries.PowerSeries) (*timeseries.PriceSeries, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	samples := make([]units.EnergyPrice, netLoad.Len())
	for i := 0; i < netLoad.Len(); i++ {
		samples[i] = m.PriceAt(netLoad.At(i))
	}
	return timeseries.NewPrice(netLoad.Start(), netLoad.Interval(), samples)
}

// DayAheadPrice forms the day-ahead product: prices computed from a
// smoothed (hourly-resampled) version of the net load, re-expanded to
// the original interval. This captures the day-ahead market's inability
// to see intra-hour volatility.
func (m PriceModel) DayAheadPrice(netLoad *timeseries.PowerSeries) (*timeseries.PriceSeries, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	hourly := netLoad
	if netLoad.Interval() < time.Hour && time.Hour%netLoad.Interval() == 0 {
		var err error
		hourly, err = netLoad.Resample(time.Hour)
		if err != nil {
			return nil, err
		}
	}
	samples := make([]units.EnergyPrice, netLoad.Len())
	for i := 0; i < netLoad.Len(); i++ {
		ts := netLoad.TimeAt(i)
		idx, _ := hourly.IndexAt(ts)
		samples[i] = m.PriceAt(hourly.At(idx))
	}
	return timeseries.NewPrice(netLoad.Start(), netLoad.Interval(), samples)
}

// ProgramKind classifies a DR program.
type ProgramKind int

// Program kinds, following the incentive-based vs price-based taxonomy.
const (
	// EmergencyDR pays for curtailment during declared reliability
	// events; enrollment may be mandatory for large consumers.
	EmergencyDR ProgramKind = iota
	// CapacityBidding pays an availability rate for committed capacity
	// plus an energy rate when dispatched, with under-delivery penalties.
	CapacityBidding
	// Regulation pays for fast bidirectional response capacity.
	Regulation
	// CriticalPeakPricing is price-based: a very high price during
	// declared critical events layered on a normal tariff.
	CriticalPeakPricing
)

var programKindNames = map[ProgramKind]string{
	EmergencyDR:         "emergency-dr",
	CapacityBidding:     "capacity-bidding",
	Regulation:          "regulation",
	CriticalPeakPricing: "critical-peak-pricing",
}

// String returns the kind name.
func (k ProgramKind) String() string {
	if n, ok := programKindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("ProgramKind(%d)", int(k))
}

// IncentiveBased reports whether the program pays explicit incentives
// (as opposed to working through the price signal).
func (k ProgramKind) IncentiveBased() bool { return k != CriticalPeakPricing }

// Program is one DR program offering.
type Program struct {
	Kind ProgramKind
	Name string
	// CommittedReduction is the load reduction the participant commits
	// to deliver when dispatched.
	CommittedReduction units.Power
	// EnergyIncentive pays per kWh actually curtailed during events.
	EnergyIncentive units.EnergyPrice
	// AvailabilityIncentive pays per kW of committed reduction per
	// settlement period, dispatched or not (capacity/regulation).
	AvailabilityIncentive units.DemandPrice
	// UnderDeliveryPenalty charges per kWh of shortfall versus the
	// committed reduction during events.
	UnderDeliveryPenalty units.EnergyPrice
	// Notice is the dispatch lead time.
	Notice time.Duration
	// MaxEventDuration bounds one dispatch.
	MaxEventDuration time.Duration
	// MaxEventsPerPeriod bounds dispatches per settlement period.
	MaxEventsPerPeriod int
}

// Validate checks the program.
func (p *Program) Validate() error {
	if p.CommittedReduction <= 0 {
		return errors.New("market: committed reduction must be positive")
	}
	if p.EnergyIncentive < 0 || p.AvailabilityIncentive < 0 || p.UnderDeliveryPenalty < 0 {
		return errors.New("market: program rates must be non-negative")
	}
	if p.Notice < 0 || p.MaxEventDuration < 0 {
		return errors.New("market: program durations must be non-negative")
	}
	return nil
}

// Event is one DR dispatch.
type Event struct {
	Start    time.Time
	Duration time.Duration
	// RequestedReduction is the reduction asked of the participant
	// (≤ the program's committed reduction).
	RequestedReduction units.Power
}

// End returns the instant the event ends.
func (e Event) End() time.Time { return e.Start.Add(e.Duration) }

// DispatchFromStress converts grid stress events into program dispatches,
// clipping durations and event counts to the program's limits.
func (p *Program) DispatchFromStress(stress []grid.StressEvent) []Event {
	var out []Event
	for _, s := range stress {
		if p.MaxEventsPerPeriod > 0 && len(out) >= p.MaxEventsPerPeriod {
			break
		}
		d := s.Duration
		if p.MaxEventDuration > 0 && d > p.MaxEventDuration {
			d = p.MaxEventDuration
		}
		out = append(out, Event{
			Start:              s.Start,
			Duration:           d,
			RequestedReduction: p.CommittedReduction,
		})
	}
	return out
}

// Settlement is the outcome of settling one participant over a period.
type Settlement struct {
	// CurtailedEnergy is measured baseline-minus-actual during events,
	// floored at zero per interval.
	CurtailedEnergy units.Energy
	// ShortfallEnergy is the under-delivery versus commitment.
	ShortfallEnergy units.Energy
	// EnergyPayment, AvailabilityPayment and Penalty decompose the net.
	EnergyPayment       units.Money
	AvailabilityPayment units.Money
	Penalty             units.Money
	// Net is what the participant receives (may be negative).
	Net units.Money
}

// Settle measures performance of actual load against a baseline over the
// dispatched events and computes payments. baseline and actual must be
// aligned series covering the events.
func (p *Program) Settle(baseline, actual *timeseries.PowerSeries, events []Event) (*Settlement, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	diff, err := baseline.Sub(actual)
	if err != nil {
		return nil, err
	}
	s := &Settlement{}
	h := diff.Interval().Hours()
	for i := 0; i < diff.Len(); i++ {
		ts := diff.TimeAt(i)
		var ev *Event
		for k := range events {
			if !ts.Before(events[k].Start) && ts.Before(events[k].End()) {
				ev = &events[k]
				break
			}
		}
		if ev == nil {
			continue
		}
		reduction := diff.At(i)
		if reduction < 0 {
			reduction = 0
		}
		s.CurtailedEnergy += units.Energy(float64(reduction) * h)
		if reduction < ev.RequestedReduction {
			s.ShortfallEnergy += units.Energy(float64(ev.RequestedReduction-reduction) * h)
		}
	}
	s.EnergyPayment = p.EnergyIncentive.Cost(s.CurtailedEnergy)
	s.AvailabilityPayment = p.AvailabilityIncentive.Cost(p.CommittedReduction)
	s.Penalty = p.UnderDeliveryPenalty.Cost(s.ShortfallEnergy)
	s.Net = s.EnergyPayment + s.AvailabilityPayment - s.Penalty
	return s, nil
}
