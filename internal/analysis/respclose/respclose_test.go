package respclose_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/respclose"
)

func TestRespClose(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), respclose.Analyzer,
		"internal/feed/pos",
		"internal/feed/neg",
		"outofscope/client",
	)
}
