package calendar

import (
	"testing"
	"time"
)

// TestLabelForSlotMatchesLabelAt pins the compilation contract the TOU
// kernel relies on: LabelAt(t) must equal LabelForSlot over the
// instant's (month, day-kind, hour) triple for every instant, with and
// without a holiday calendar.
func TestLabelForSlotMatchesLabelAt(t *testing.T) {
	holidays := NewHolidayCalendar(
		time.Date(2016, time.January, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2016, time.August, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2016, time.December, 26, 0, 0, 0, 0, time.UTC),
	)
	schedules := map[string]*Schedule{
		"day-night":          DayNight(8, 20, nil),
		"day-night-holidays": DayNight(8, 20, holidays),
		"seasonal":           SeasonalDayNight(7, 22, holidays),
		"wrapping-night": MustNewSchedule("base", holidays,
			ScheduleEntry{Rule: Rule{Season: Winter, Hours: HourBand{From: 22, To: 6}}, Label: "winter-night"},
			ScheduleEntry{Rule: Rule{DayKind: Weekend}, Label: "weekend"},
			ScheduleEntry{Rule: Rule{DayKind: Holiday}, Label: "holiday"},
		),
	}
	start := time.Date(2016, time.January, 1, 0, 0, 0, 0, time.UTC)
	for name, sched := range schedules {
		t.Run(name, func(t *testing.T) {
			// Every hour of a leap year covers all seasons, day kinds,
			// holidays and hour bands.
			for i := 0; i < 366*24; i++ {
				at := start.Add(time.Duration(i) * time.Hour)
				want := sched.LabelAt(at)
				got := sched.LabelForSlot(at.Month(), sched.DayKindAt(at), at.Hour())
				if got != want {
					t.Fatalf("%s at %v: LabelForSlot %q, LabelAt %q", name, at, got, want)
				}
			}
		})
	}
}

func TestSeasonOfMonthMatchesSeasonOf(t *testing.T) {
	for m := time.January; m <= time.December; m++ {
		at := time.Date(2016, m, 15, 12, 0, 0, 0, time.UTC)
		if SeasonOfMonth(m) != SeasonOf(at) {
			t.Fatalf("month %v: SeasonOfMonth %v, SeasonOf %v", m, SeasonOfMonth(m), SeasonOf(at))
		}
	}
}
