// Package neg holds ctxloop near-misses that must stay silent.
package neg

import (
	"context"

	"internal/timeseries"
)

// The canonical strided poll: checking ctx.Done() every N samples
// counts — the analyzer asks for a poll anywhere in the loop, not one
// per iteration.
func StridedPoll(ctx context.Context, load *timeseries.PowerSeries) (float64, error) {
	done := ctx.Done()
	var kwh float64
	for i := 0; i < load.Len(); i++ {
		if i&2047 == 0 {
			select {
			case <-done:
				return 0, ctx.Err()
			default:
			}
		}
		kwh += load.At(i)
	}
	return kwh, nil
}

// Calling ctx.Done() directly in the loop condition machinery also
// counts.
func DirectPoll(ctx context.Context, load *timeseries.PowerSeries) float64 {
	var kwh float64
	for i := 0; i < load.Len(); i++ {
		select {
		case <-ctx.Done():
			return kwh
		default:
		}
		kwh += load.At(i)
	}
	return kwh
}

func chunkCtx(ctx context.Context, load *timeseries.PowerSeries, lo, hi int) float64 {
	var kwh float64
	for i := lo; i < hi; i++ {
		select {
		case <-ctx.Done():
			return kwh
		default:
		}
		kwh += load.At(i)
	}
	return kwh
}

// Delegating each chunk to a ...Ctx helper counts as polling.
func Delegated(ctx context.Context, load *timeseries.PowerSeries) float64 {
	var kwh float64
	for base := 0; base < load.Len(); base += 512 {
		end := base + 512
		if end > load.Len() {
			end = load.Len()
		}
		kwh += chunkCtx(ctx, load, base, end)
	}
	return kwh
}

// Only the outermost loop is judged: a bounded inner block loop is
// fine when the enclosing loop polls (the traced-evaluation shape).
func Blocked(ctx context.Context, load *timeseries.PowerSeries) (float64, error) {
	done := ctx.Done()
	var kwh float64
	for base := 0; base < load.Len(); base += 512 {
		select {
		case <-done:
			return 0, ctx.Err()
		default:
		}
		end := base + 512
		if end > load.Len() {
			end = load.Len()
		}
		for i := base; i < end; i++ {
			kwh += load.At(i)
		}
	}
	return kwh, nil
}

// The columnar hot-path shape: month blocks scanned chunk-at-a-time
// with a strided <-done poll between chunks. This is the loop the
// billing evaluator runs; it must stay legal.
func ColumnarScan(ctx context.Context, load *timeseries.PowerSeries) (float64, error) {
	done := ctx.Done()
	var kwh float64
	for _, blk := range load.Blocks() {
		samples := blk.Samples
		for off := 0; off < len(samples); off += 2048 {
			select {
			case <-done:
				return 0, ctx.Err()
			default:
			}
			end := off + 2048
			if end > len(samples) {
				end = len(samples)
			}
			for _, p := range samples[off:end] {
				kwh += p
			}
		}
	}
	return kwh, nil
}

// Block scans without a context parameter have nothing to poll, same
// as per-sample helpers.
func blockPeak(load *timeseries.PowerSeries) (peak float64) {
	for _, blk := range load.Blocks() {
		for _, p := range blk.Samples {
			if p > peak {
				peak = p
			}
		}
	}
	return peak
}

// No context parameter, nothing to poll: bounded helpers like the
// per-month peak scan stay legal.
func monthPeak(load *timeseries.PowerSeries, lo, hi int) (peak float64) {
	for i := lo; i < hi; i++ {
		if p := load.At(i); p > peak {
			peak = p
		}
	}
	return peak
}

// A loop that never touches the sample stream has nothing to answer
// for, context parameter or not.
func CountdownCtx(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}
