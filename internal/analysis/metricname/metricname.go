// Package metricname lints the hand-rolled Prometheus exposition in
// internal/serve and internal/obs.
//
// Invariant guarded: scserved writes its /metrics page by hand (the
// repo is dependency-free), so nothing but convention keeps the metric
// namespace coherent. The analyzer checks every string literal:
// scserved_* tokens must match scserved_[a-z_]+ with the conventional
// unit/kind suffixes; "# TYPE" headers must agree with the name
// (counters end in _total, gauges don't, histograms are named for
// their unit: _seconds or _bytes); and the _bucket/_sum/_count series
// of a histogram are emitted only by obs.WriteProm — hand-rolling them
// elsewhere forks the exposition format.
package metricname

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

var scopes = []string{
	"internal/serve",
	"internal/obs",
}

var (
	tokenRx = regexp.MustCompile(`scserved_[A-Za-z0-9_]+`)
	nameRx  = regexp.MustCompile(`^scserved_[a-z_]+$`)
	typeRx  = regexp.MustCompile(`# TYPE\s+(\S+)\s+(\S+)`)
)

var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc: "require Prometheus names in internal/serve and internal/obs to match " +
		"scserved_[a-z_]+ with suffixes agreeing with the # TYPE kind",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.InScope(pass.Pkg, scopes...) {
		return nil
	}
	handRolledOK := analysis.InScope(pass.Pkg, "internal/obs")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BasicLit:
				if n.Kind == token.STRING {
					checkLiteral(pass, n, handRolledOK)
				}
			case *ast.CallExpr:
				checkWriteProm(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkLiteral(pass *analysis.Pass, lit *ast.BasicLit, handRolledOK bool) {
	text, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	for _, tok := range tokenRx.FindAllString(text, -1) {
		if !nameRx.MatchString(tok) {
			pass.Reportf(lit.Pos(),
				"metric name %q does not match scserved_[a-z_]+ (lowercase letters and underscores only)", tok)
			continue
		}
		if !handRolledOK && histogramSeriesSuffix(tok) {
			pass.Reportf(lit.Pos(),
				"hand-rolled histogram series %q; the _bucket/_sum/_count lines are emitted by obs.WriteProm", tok)
		}
	}
	for _, m := range typeRx.FindAllStringSubmatch(text, -1) {
		name, kind := m[1], m[2]
		if !strings.HasPrefix(name, "scserved_") {
			continue
		}
		switch kind {
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				pass.Reportf(lit.Pos(), "counter %q must end in _total", name)
			}
		case "gauge":
			if strings.HasSuffix(name, "_total") {
				pass.Reportf(lit.Pos(), "gauge %q must not end in _total (that suffix is for counters)", name)
			}
		case "histogram":
			if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") {
				pass.Reportf(lit.Pos(), "histogram %q must be named for its unit (_seconds or _bytes)", name)
			}
		}
	}
}

// histogramSeriesSuffix reports whether the name is one of the derived
// series a Prometheus histogram exposes.
func histogramSeriesSuffix(name string) bool {
	return strings.HasSuffix(name, "_bucket") ||
		strings.HasSuffix(name, "_sum") ||
		strings.HasSuffix(name, "_count")
}

// checkWriteProm requires the metric-family name passed to a WriteProm
// call to carry a histogram unit suffix.
func checkWriteProm(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Name() != "WriteProm" {
		return
	}
	for _, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			continue
		}
		name, err := strconv.Unquote(lit.Value)
		if err != nil || !strings.HasPrefix(name, "scserved_") {
			continue
		}
		if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") {
			pass.Reportf(lit.Pos(),
				"histogram family %q must be named for its unit (_seconds or _bytes)", name)
		}
	}
}
