// Package unitchecker adapts the scvet analyzers to the `go vet
// -vettool` protocol, mirroring the contract of
// golang.org/x/tools/go/analysis/unitchecker on the standard library
// alone.
//
// cmd/go drives a vettool in three modes:
//
//   - `tool -V=full` — print a version line ("<name> version devel
//     buildID=<hex>") that the build system folds into its cache key,
//     so editing scvet invalidates stale vet results;
//   - `tool -flags` — print a JSON description of the flags the tool
//     accepts, so cmd/go can validate pass-through flags;
//   - `tool [flags] <unit>.cfg` — analyze one compilation unit
//     described by the JSON config cmd/go wrote: file list, import
//     map, and export-data paths for every dependency.
//
// Per-unit runs type-check from the gc export data listed in the
// config (no source re-parse of dependencies), run the analyzers over
// the unit's non-test files, and exit 0 when clean, 2 with
// file:line:col diagnostics when not — exactly the exit convention
// go vet expects. The facts/vetx output file is always written (empty:
// the scvet analyzers are fact-free) because cmd/go caches it.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// Config is the JSON schema of the .cfg file cmd/go hands a vettool,
// one per compilation unit (field set matches cmd/go's vetConfig).
type Config struct {
	ID                        string // package ID as reported in -json output
	Compiler                  string // "gc"
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string // import path as written -> canonical path
	PackageFile               map[string]string // canonical path -> export data file
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool   // only facts are wanted (dependency pass)
	VetxOutput                string // where to write the facts file
	SucceedOnTypecheckFailure bool   // cmd/go reports build errors itself
}

// Main implements the vettool protocol for the given analyzers. It
// does not return.
func Main(analyzers ...*analysis.Analyzer) {
	log.SetFlags(0)
	log.SetPrefix("scvet: ")

	args := os.Args[1:]
	jsonOut, ignores, strict := false, false, false
	for len(args) > 0 && strings.HasPrefix(args[0], "-") {
		switch arg := args[0]; {
		case arg == "-V=full":
			printVersion()
			os.Exit(0)
		case arg == "-flags":
			printFlags()
			os.Exit(0)
		case arg == "-json":
			jsonOut = true
		case strings.HasPrefix(arg, "-c="):
			// Accepted for go vet compatibility; context printing is
			// not implemented.
		case arg == "-scvet.doc":
			printDoc(analyzers)
			os.Exit(0)
		case arg == "-ignores":
			ignores = true
		case arg == "-strict":
			strict = true
		default:
			log.Fatalf("unrecognized flag %s", arg)
		}
		args = args[1:]
	}

	if ignores {
		dir := "."
		if len(args) > 0 {
			dir = args[0]
		}
		code, err := RunIgnores(os.Stdout, dir, strict, analyzers)
		if err != nil {
			log.Fatal(err)
		}
		os.Exit(code)
	}

	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		log.Fatalf(`usage: scvet [-json] [-c=N] <unit>.cfg
       scvet -ignores [-strict] [dir]

scvet is a go vet analysis tool; run it via
	go vet -vettool=$(pwd)/bin/scvet ./...
list the suppression ledger with
	scvet -ignores [-strict] [dir]
or see the analyzer docs with
	scvet -scvet.doc`)
	}

	diags, fset, cfg, err := runUnit(args[0], analyzers)
	if err != nil {
		log.Fatal(err)
	}

	exit := 0
	if jsonOut {
		writeJSONDiagnostics(os.Stdout, cfg.ID, fset, diags)
	} else if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
		}
		exit = 2
	}
	os.Exit(exit)
}

// printVersion emits the -V=full line. The buildID is a hash of the
// executable so cmd/go's vet-result cache turns over when scvet is
// rebuilt with different analyzers.
func printVersion() {
	name := filepath.Base(os.Args[0])
	id := selfHash()
	fmt.Printf("%s version devel buildID=%s\n", name, id)
}

func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

// printFlags describes the accepted flags in the JSON shape cmd/go
// parses to validate pass-through vet flags.
func printFlags() {
	type jsonFlag struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	flags := []jsonFlag{
		{Name: "json", Bool: true, Usage: "emit JSON output"},
		{Name: "c", Bool: false, Usage: "display offending line with this many lines of context"},
	}
	data, err := json.Marshal(flags)
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

func printDoc(analyzers []*analysis.Analyzer) {
	for _, a := range analyzers {
		fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
	}
}

// runUnit analyzes one compilation unit per its .cfg file.
func runUnit(cfgFile string, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, *token.FileSet, *Config, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, nil, nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, nil, nil, fmt.Errorf("cannot decode JSON config file %s: %v", cfgFile, err)
	}

	// cmd/go caches the facts file; write it unconditionally (empty —
	// the scvet analyzers neither produce nor consume facts).
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, nil, nil, err
		}
	}
	if cfg.VetxOnly {
		// Dependency pass: only facts were wanted.
		return nil, token.NewFileSet(), cfg, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				os.Exit(0) // cmd/go will report the build error itself
			}
			return nil, nil, nil, err
		}
		files = append(files, f)
	}

	// Resolve imports through the unit's import map, reading gc export
	// data from the files cmd/go staged for each dependency.
	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImp.Import(importPath)
	})

	tcfg := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(cfg.Compiler, build.Default.GOARCH),
	}
	if cfg.GoVersion != "" {
		tcfg.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		return nil, nil, nil, fmt.Errorf("typecheck %s: %v", cfg.ImportPath, err)
	}

	diags, err := analysis.RunAnalyzers(fset, files, pkg, info, analyzers)
	if err != nil {
		return nil, nil, nil, err
	}
	return diags, fset, cfg, nil
}

// writeJSONDiagnostics mirrors the x/tools unitchecker -json shape:
// {"<pkg id>": {"<analyzer>": [{"posn": ..., "message": ...}]}}.
func writeJSONDiagnostics(w io.Writer, pkgID string, fset *token.FileSet, diags []analysis.Diagnostic) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := map[string][]jsonDiag{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{
			Posn:    fset.Position(d.Pos).String(),
			Message: d.Message,
		})
	}
	out := map[string]map[string][]jsonDiag{pkgID: byAnalyzer}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	if err := enc.Encode(out); err != nil {
		log.Fatal(err)
	}
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
