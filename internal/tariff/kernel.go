package tariff

// Columnar kernels for the kWh branch. Each in-package tariff kind
// compiles to a billing.Kernel whose scanner replicates the matching
// accumulator's arithmetic exactly (producer.go): a fixed tariff sums
// energy and rounds once; TOU and dynamic tariffs price and round per
// sample. The per-sample PriceAt lookup is compiled away:
//
//   - TOU: the schedule is lowered to a month × day-kind × hour price
//     cube at compile time (calendar.LabelForSlot guarantees the label
//     is a pure function of that triple), and the scanner advances the
//     effective price once per wall-clock hour segment instead of per
//     sample.
//   - Dynamic: the feed's slot grid is walked segment-wise with the
//     same clamping PriceSeries.PriceAt applies at the edges.
//
// CPP tariffs (and any other out-of-package Tariff) do not compile:
// compileTariffKernel returns nil and the evaluator keeps the
// sample-walk path for the whole contract.

import (
	"time"

	"repro/internal/billing"
	"repro/internal/calendar"
	"repro/internal/timeseries"
	"repro/internal/units"
)

// maxSegEnd marks a price segment that runs to the end of any period.
const maxSegEnd = int(^uint(0) >> 1)

// CompileKernel compiles the adapted tariff into a columnar kernel, or
// nil when the tariff (or any stacked component) has no exact kernel.
func (p producer) CompileKernel() billing.Kernel {
	cost := compileCostKernel(p.t)
	if cost == nil {
		return nil
	}
	return &tariffKernel{
		class: classFor(p.t.Kind()),
		desc:  p.t.Describe(),
		cost:  cost,
	}
}

var _ billing.KernelProducer = producer{}

// tariffKernel pairs the compiled cost kernel with the precomputed
// line-item metadata (class and description are period-invariant).
type tariffKernel struct {
	class billing.Class
	desc  string
	cost  costKernel
}

func (k *tariffKernel) NewScanner() billing.Scanner {
	return &tariffScanner{class: k.class, desc: k.desc, cost: k.cost.newScanner()}
}

// tariffScanner mirrors tariffAcc: a running period-energy sum for the
// quantity column plus the wrapped cost scanner.
type tariffScanner struct {
	class billing.Class
	desc  string
	cost  costScanner
	h     float64
	kwh   float64
	buf   []byte
}

func (s *tariffScanner) Begin(_ *billing.PeriodContext, start time.Time, interval time.Duration, n int) {
	s.h = interval.Hours()
	s.kwh = 0
	s.cost.begin(start, interval, n)
}

func (s *tariffScanner) Scan(samples []units.Power, base int) {
	h := s.h
	kwh := s.kwh
	for _, p := range samples {
		kwh += float64(p) * h
	}
	s.kwh = kwh
	s.cost.scan(samples, base)
}

func (s *tariffScanner) AppendLines(dst []billing.LineItem) []billing.LineItem {
	s.buf = units.AppendEnergy(s.buf[:0], units.Energy(s.kwh))
	return append(dst, billing.LineItem{
		Class:       s.class,
		Description: s.desc,
		Quantity:    string(s.buf),
		Amount:      s.cost.amount(),
	})
}

// costKernel / costScanner are the columnar twins of costAccumulator.
type costKernel interface {
	newScanner() costScanner
}

type costScanner interface {
	begin(start time.Time, interval time.Duration, n int)
	scan(samples []units.Power, base int)
	amount() units.Money
}

// compileCostKernel lowers a tariff's cost arithmetic, mirroring
// newCostAccumulator's dispatch. Unknown tariff implementations return
// nil: they have no exact columnar form.
func compileCostKernel(t Tariff) costKernel {
	switch tt := t.(type) {
	case *FixedTariff:
		return fixedCostKernel{rate: tt.Rate}
	case *TOUTariff:
		return compileTOUKernel(tt)
	case *DynamicTariff:
		return feedCostKernel{feed: tt.feed, mult: tt.multiplier, adder: tt.adder}
	case *Stack:
		kids := make([]costKernel, len(tt.components))
		for i, c := range tt.components {
			k := compileCostKernel(c)
			if k == nil {
				return nil
			}
			kids[i] = k
		}
		return stackCostKernel{kids: kids}
	default:
		return nil
	}
}

// fixedCostKernel reproduces fixedAcc: sum energy, price once.
type fixedCostKernel struct{ rate units.EnergyPrice }

func (k fixedCostKernel) newScanner() costScanner { return &fixedCostScanner{rate: k.rate} }

type fixedCostScanner struct {
	rate units.EnergyPrice
	h    float64
	kwh  float64
}

func (s *fixedCostScanner) begin(_ time.Time, interval time.Duration, _ int) {
	s.h = interval.Hours()
	s.kwh = 0
}

func (s *fixedCostScanner) scan(samples []units.Power, _ int) {
	h := s.h
	kwh := s.kwh
	for _, p := range samples {
		kwh += float64(p) * h
	}
	s.kwh = kwh
}

func (s *fixedCostScanner) amount() units.Money { return s.rate.Cost(units.Energy(s.kwh)) }

// priceCube is a TOU schedule lowered to a dense lookup: month ×
// day-kind (indexed by calendar.DayKind) × hour.
type priceCube [12][4][24]units.EnergyPrice

// compileTOUKernel bakes the schedule's label function and the rate map
// into a price cube. calendar.LabelForSlot is the pinned contract that
// the label depends only on (month, day-kind, hour).
func compileTOUKernel(t *TOUTariff) costKernel {
	k := &touCostKernel{sched: t.schedule}
	for m := time.January; m <= time.December; m++ {
		for _, kind := range []calendar.DayKind{calendar.Weekday, calendar.Weekend, calendar.Holiday} {
			for h := 0; h < 24; h++ {
				k.cube[m-1][kind][h] = t.rates[t.schedule.LabelForSlot(m, kind, h)]
			}
		}
	}
	return k
}

type touCostKernel struct {
	sched *calendar.Schedule
	cube  priceCube
}

func (k *touCostKernel) newScanner() costScanner {
	return &touCostScanner{sched: k.sched, cube: &k.cube}
}

// touCostScanner reproduces priceAtAcc for a TOU tariff: every sample's
// energy is billed at the slot price of its interval start, rounding
// per sample. The effective price advances per wall-clock hour segment;
// each advance re-derives (month, day-kind, hour) from the exact sample
// instant, so irregular intervals and DST transitions stay exact (a
// segment that cannot make progress degrades to per-sample advancing).
type touCostScanner struct {
	sched *calendar.Schedule
	cube  *priceCube

	start    time.Time
	interval time.Duration
	h        float64
	total    units.Money

	price  units.EnergyPrice
	segEnd int

	// Day-kind cache: KindOf is constant within a calendar day, and a
	// holiday lookup costs a date-key rendering.
	curY, curD int
	curM       time.Month
	kind       calendar.DayKind
	haveDay    bool
}

func (s *touCostScanner) begin(start time.Time, interval time.Duration, _ int) {
	s.start = start
	s.interval = interval
	s.h = interval.Hours()
	s.total = 0
	s.segEnd = 0
	s.haveDay = false
}

func (s *touCostScanner) scan(samples []units.Power, base int) {
	h := s.h
	total := s.total
	for j := 0; j < len(samples); {
		if base+j >= s.segEnd {
			s.advance(base + j)
		}
		end := s.segEnd - base
		if end > len(samples) {
			end = len(samples)
		}
		price := s.price
		for ; j < end; j++ {
			en := float64(samples[j]) * h
			total += price.Cost(units.Energy(en))
		}
	}
	s.total = total
}

// advance recomputes the effective price at sample index i and the
// first index past the current wall-clock hour.
func (s *touCostScanner) advance(i int) {
	t := s.start.Add(time.Duration(i) * s.interval)
	y, mo, d := t.Date()
	if !s.haveDay || y != s.curY || mo != s.curM || d != s.curD {
		s.curY, s.curM, s.curD = y, mo, d
		s.kind = s.sched.DayKindAt(t)
		s.haveDay = true
	}
	hour := t.Hour()
	s.price = s.cube[mo-1][s.kind][hour]
	boundary := time.Date(y, mo, d, hour, 0, 0, 0, t.Location()).Add(time.Hour)
	seg := billing.CeilIndex(boundary.Sub(s.start), s.interval)
	if seg <= i {
		// Wall clock stalled or stepped back (DST fall-back's repeated
		// hour): advance sample by sample, each priced from its exact
		// instant.
		seg = i + 1
	}
	s.segEnd = seg
}

func (s *touCostScanner) amount() units.Money { return s.total }

// feedCostKernel reproduces priceAtAcc for a dynamic tariff: the feed
// price in effect at each sample's interval start (with PriceAt's edge
// clamping), marked up, priced and rounded per sample.
type feedCostKernel struct {
	feed  *timeseries.PriceSeries
	mult  float64
	adder units.EnergyPrice
}

func (k feedCostKernel) newScanner() costScanner {
	return &feedCostScanner{feed: k.feed, mult: k.mult, adder: k.adder}
}

type feedCostScanner struct {
	feed  *timeseries.PriceSeries
	mult  float64
	adder units.EnergyPrice

	start    time.Time
	interval time.Duration
	h        float64
	total    units.Money

	price  units.EnergyPrice
	segEnd int
}

func (s *feedCostScanner) begin(start time.Time, interval time.Duration, _ int) {
	s.start = start
	s.interval = interval
	s.h = interval.Hours()
	s.total = 0
	s.segEnd = 0
}

func (s *feedCostScanner) scan(samples []units.Power, base int) {
	h := s.h
	total := s.total
	for j := 0; j < len(samples); {
		if base+j >= s.segEnd {
			s.advance(base + j)
		}
		end := s.segEnd - base
		if end > len(samples) {
			end = len(samples)
		}
		price := s.price
		for ; j < end; j++ {
			en := float64(samples[j]) * h
			total += price.Cost(units.Energy(en))
		}
	}
	s.total = total
}

// advance mirrors PriceSeries.PriceAt at sample index i and finds the
// first index whose instant leaves the current feed slot.
func (s *feedCostScanner) advance(i int) {
	t := s.start.Add(time.Duration(i) * s.interval)
	fs := s.feed.Start()
	fi := s.feed.Interval()
	flen := s.feed.Len()
	var raw units.EnergyPrice
	seg := maxSegEnd
	switch {
	case flen == 0:
		raw = 0
	case t.Before(fs):
		raw = s.feed.At(0)
		seg = billing.CeilIndex(fs.Sub(s.start), s.interval)
	default:
		j := int(t.Sub(fs) / fi)
		if j >= flen {
			raw = s.feed.At(flen - 1)
		} else {
			raw = s.feed.At(j)
			boundary := fs.Add(time.Duration(j+1) * fi)
			seg = billing.CeilIndex(boundary.Sub(s.start), s.interval)
		}
	}
	if seg <= i {
		seg = i + 1
	}
	s.segEnd = seg
	s.price = units.EnergyPrice(float64(raw)*s.mult) + s.adder
}

func (s *feedCostScanner) amount() units.Money { return s.total }

// stackCostKernel reproduces stackAcc: each component accumulates
// independently and the amounts sum at the end, preserving
// per-component rounding.
type stackCostKernel struct{ kids []costKernel }

func (k stackCostKernel) newScanner() costScanner {
	kids := make([]costScanner, len(k.kids))
	for i, kid := range k.kids {
		kids[i] = kid.newScanner()
	}
	return &stackCostScanner{kids: kids}
}

type stackCostScanner struct{ kids []costScanner }

func (s *stackCostScanner) begin(start time.Time, interval time.Duration, n int) {
	for _, k := range s.kids {
		k.begin(start, interval, n)
	}
}

func (s *stackCostScanner) scan(samples []units.Power, base int) {
	for _, k := range s.kids {
		k.scan(samples, base)
	}
}

func (s *stackCostScanner) amount() units.Money {
	var total units.Money
	for _, k := range s.kids {
		total += k.amount()
	}
	return total
}
