// Good-neighbor example (§3.4): a site forecasts its own baseline load,
// detects the deviations a benchmark campaign will cause, and phones its
// ESP ahead of time — the proactive reporting six of the ten surveyed
// sites practice.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/dr"
	"repro/internal/forecast"
	"repro/internal/hpc"
	"repro/internal/timeseries"
	"repro/internal/units"
)

func main() {
	start := time.Date(2016, time.May, 2, 0, 0, 0, 0, time.UTC)
	const interval = 15 * time.Minute
	perDay := int((24 * time.Hour) / interval)

	// Two weeks of normal operation at 12 MW.
	clean, err := repro.SyntheticFacilityLoad(hpc.LoadProfileConfig{
		Start: start, Span: 14 * 24 * time.Hour, Interval: interval,
		Base: 12 * units.Megawatt, PeakToAverage: 1, DiurnalSwing: 0.05,
		NoiseSigma: 0.01, Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Week two gains three HPL benchmark runs at +4 MW for two hours.
	samples := clean.Samples()
	runs := []int{7*perDay + 40, 9*perDay + 50, 12*perDay + 60}
	for _, at := range runs {
		for j := 0; j < 8; j++ {
			samples[at+j] += 4 * units.Megawatt
		}
	}
	actualSeries, err := timeseries.NewPower(clean.Start(), clean.Interval(), samples)
	if err != nil {
		log.Fatal(err)
	}

	// Forecast week two from week one with a seasonal-naive baseline.
	week1, err := clean.Window(start, start.Add(7*24*time.Hour))
	if err != nil {
		log.Fatal(err)
	}
	model := &forecast.SeasonalNaive{Period: perDay}
	baseline, err := forecast.ForecastPower(model, week1, 7*perDay)
	if err != nil {
		log.Fatal(err)
	}
	week2, err := actualSeries.Window(baseline.Start(), baseline.End())
	if err != nil {
		log.Fatal(err)
	}

	devs, err := forecast.DetectDeviations(week2, baseline, 1*units.Megawatt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Detected %d significant deviations from the forecast baseline.\n\n", len(devs))

	policy := dr.GoodNeighborPolicy{
		LeadTime:     24 * time.Hour,
		MinDeviation: 1 * units.Megawatt,
	}
	notes := policy.Notify(devs, func(forecast.Deviation) string { return "HPL benchmark run" })
	for _, n := range notes {
		fmt.Println(n)
	}
	fmt.Println("\n\"By being good neighbors, SCs act proactively as allies towards the ESPs")
	fmt.Println("by reporting maintenance periods, benchmarks and other events.\" — §3.4")
}
