package chaos

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/feed"
	"repro/internal/timeseries"
	"repro/internal/units"
)

var t0 = time.Date(2016, time.March, 1, 0, 0, 0, 0, time.UTC)

func upstream() feed.PriceProvider {
	return feed.NewStatic(timeseries.ConstantPrice(t0, time.Hour, 25, units.EnergyPrice(0.05)))
}

func TestInjectorPassThrough(t *testing.T) {
	j := New(upstream(), Config{Seed: 1})
	for i := 0; i < 10; i++ {
		s, err := j.Fetch(context.Background(), t0, t0.Add(time.Hour))
		if err != nil {
			t.Fatalf("zero-rate injector failed: %v", err)
		}
		if err := feed.Validate(s); err != nil {
			t.Fatalf("zero-rate injector corrupted the series: %v", err)
		}
	}
	if st := j.Stats(); st.Calls != 10 || st.Errors+st.Stuck+st.Malformed+st.Latencies != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestInjectorDeterministicPerSeed pins the replay guarantee: same
// seed, same call sequence, same faults.
func TestInjectorDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []bool {
		j := New(upstream(), Config{Seed: seed, ErrorRate: 0.4})
		outcomes := make([]bool, 50)
		for i := range outcomes {
			_, err := j.Fetch(context.Background(), t0, t0.Add(time.Hour))
			outcomes[i] = err != nil
		}
		return outcomes
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d diverged between two runs with seed 42", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical 50-call fault schedules")
	}
}

func TestInjectorErrorRate(t *testing.T) {
	j := New(upstream(), Config{Seed: 7, ErrorRate: 0.3})
	failures := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := j.Fetch(context.Background(), t0, t0.Add(time.Hour)); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("failure is not ErrInjected: %v", err)
			}
			failures++
		}
	}
	// 0.3 ± generous slack; a seeded PRNG makes this stable.
	if failures < n*20/100 || failures > n*40/100 {
		t.Fatalf("%d/%d failures, want ~30%%", failures, n)
	}
	if st := j.Stats(); st.Errors != uint64(failures) {
		t.Fatalf("stats.Errors = %d, observed %d", st.Errors, failures)
	}
}

func TestInjectorMalformedCaughtByValidate(t *testing.T) {
	j := New(upstream(), Config{Seed: 3, MalformedRate: 1})
	s, err := j.Fetch(context.Background(), t0, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if err := feed.Validate(s); err == nil {
		t.Fatal("poisoned series passed feed.Validate")
	}
}

func TestInjectorStuckHonorsContext(t *testing.T) {
	j := New(upstream(), Config{Seed: 5, StuckRate: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	startAt := time.Now()
	_, err := j.Fetch(ctx, t0, t0.Add(time.Hour))
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("stuck fetch: %v", err)
	}
	if time.Since(startAt) > 5*time.Second {
		t.Fatal("stuck fetch outlived its context")
	}
}

func TestInjectorLatency(t *testing.T) {
	j := New(upstream(), Config{Seed: 9, LatencyRate: 1, Latency: 30 * time.Millisecond})
	startAt := time.Now()
	if _, err := j.Fetch(context.Background(), t0, t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(startAt); d < 30*time.Millisecond {
		t.Fatalf("latency fault took %s, want >= 30ms", d)
	}
	if st := j.Stats(); st.Latencies != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestInjectorBehindCache is the integration sanity check: a flaky
// injected feed behind feed.Cached still yields only legal answers.
func TestInjectorBehindCache(t *testing.T) {
	j := New(upstream(), Config{Seed: 11, ErrorRate: 0.5, MalformedRate: 0.2})
	c := feed.NewCached(j, feed.CachedConfig{TTL: time.Nanosecond})
	defer c.Close()
	for i := 0; i < 100; i++ {
		res := c.Prices(context.Background(), t0, t0.Add(time.Hour))
		switch res.State {
		case feed.Fresh, feed.Stale:
			if err := feed.Validate(res.Series); err != nil {
				t.Fatalf("call %d: cache served a series failing validation: %v", i, err)
			}
		case feed.Degraded:
			if res.Reason == "" {
				t.Fatalf("call %d: degraded without reason", i)
			}
		}
	}
}
