// Package analysis is the reproduction's stdlib-only static-analysis
// framework: a deliberately small mirror of the golang.org/x/tools
// go/analysis API (Analyzer, Pass, Diagnostic) plus the shared driver
// logic the scvet suite runs on. The repo's billing invariants —
// micro-unit fixed-point money, byte-identical bill JSON, seeded
// determinism, ctx-cancellable evaluation loops, no slow work under a
// mutex — are enforceable mechanically, but the module has a
// no-network, zero-dependency constraint, so instead of importing
// x/tools this package reimplements the thin slice of it the suite
// needs on go/ast + go/types alone. The shapes match x/tools on
// purpose: if the dependency ever becomes available, each analyzer
// ports by changing an import path.
//
// Two drivers consume this package: unitchecker (the `go vet
// -vettool` protocol, used by cmd/scvet in `make lint` / `make check`)
// and analysistest (fixture packages under testdata/ with `// want`
// annotations, used by each analyzer's tests). Both funnel through
// RunAnalyzers so suppression directives behave identically in CI and
// in tests.
//
// # Suppression
//
// A diagnostic is suppressed by a directive comment on the same line
// or on the line directly above:
//
//	//lint:scvet-ignore <analyzer> <reason>
//
// The reason is mandatory: a directive without one does not suppress
// anything and is itself reported as a diagnostic (category
// "scvet-ignore"), so silence always has an auditable justification.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check. Run inspects the package in the Pass
// and reports findings through pass.Report / pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// scvet-ignore directives. Lowercase, no spaces.
	Name string
	// Doc is the one-paragraph description shown by documentation and
	// kept next to the invariant the analyzer guards.
	Doc string
	// Run performs the analysis. A non-nil error aborts the whole
	// scvet run (driver failure, not a finding).
	Run func(*Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // non-test files only (driver filters)
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Report emits one diagnostic. The Analyzer field is stamped by the
// driver; analyzers only fill Pos and Message.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.report(d)
}

// Reportf emits a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, positioned in the package's FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// IgnoreAnalyzer is the pseudo-analyzer name under which malformed
// suppression directives (no reason) are reported.
const IgnoreAnalyzer = "scvet-ignore"

// ignorePrefix is the directive marker, after the comment slashes.
const ignorePrefix = "lint:scvet-ignore"

// A Directive is one parsed //lint:scvet-ignore comment. The ignores
// inventory (`scvet -ignores`) renders these as the suppression
// ledger, so the fields carry everything an auditor needs: where, what
// was silenced, and why.
type Directive struct {
	Pos      token.Pos
	File     string
	Line     int
	Analyzer string
	Reason   string
}

// A DirectiveUse pairs a directive with whether it earned its keep:
// Used is true when the directive suppressed at least one diagnostic
// in its package on this run. A reasoned, unused directive is stale —
// the code it blessed has moved or been fixed — and should be deleted
// rather than left to mask a future regression.
type DirectiveUse struct {
	Directive
	Used bool
}

// ParseDirectives extracts every scvet-ignore directive in the files.
func ParseDirectives(fset *token.FileSet, files []*ast.File) []Directive {
	var out []Directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // block comments are not directives
				}
				text, ok = strings.CutPrefix(strings.TrimSpace(text), ignorePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				d := Directive{Pos: c.Pos()}
				posn := fset.Position(c.Pos())
				d.File, d.Line = posn.Filename, posn.Line
				if len(fields) > 0 {
					d.Analyzer = fields[0]
				}
				if len(fields) > 1 {
					d.Reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// RunAnalyzers type-checks nothing — it receives an already-checked
// package — and runs every analyzer over the non-test files, applying
// suppression directives. The returned diagnostics are sorted by
// position and include one extra finding per malformed directive.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunAnalyzersDetail(fset, files, pkg, info, analyzers)
	return diags, err
}

// RunAnalyzersDetail is RunAnalyzers plus the suppression ledger: one
// DirectiveUse per scvet-ignore directive in the package, with Used
// set when it suppressed at least one diagnostic. The ignores
// inventory mode is built on this — a directive the run never needed
// is stale, and staleness can only be judged by the driver that saw
// the pre-suppression findings.
func RunAnalyzersDetail(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, []DirectiveUse, error) {
	prod := files[:0:0]
	for _, f := range files {
		name := fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue // invariants target production code
		}
		prod = append(prod, f)
	}

	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     prod,
			Pkg:       pkg,
			TypesInfo: info,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}

	uses := make([]DirectiveUse, 0)
	for _, dir := range ParseDirectives(fset, prod) {
		uses = append(uses, DirectiveUse{Directive: dir})
	}
	kept := diags[:0]
	for _, d := range diags {
		if i := suppressor(fset, d, uses); i >= 0 {
			uses[i].Used = true
		} else {
			kept = append(kept, d)
		}
	}
	for _, dir := range uses {
		if dir.Reason == "" {
			kept = append(kept, Diagnostic{
				Pos:      dir.Pos,
				Analyzer: IgnoreAnalyzer,
				Message:  "scvet-ignore directive without a reason (want //lint:scvet-ignore <analyzer> <reason>); it suppresses nothing",
			})
		}
	}

	sort.SliceStable(kept, func(i, j int) bool {
		pi, pj := fset.Position(kept[i].Pos), fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return kept, uses, nil
}

// suppressor returns the index of the first reasoned directive that
// covers the diagnostic — same file, matching analyzer, sitting on the
// diagnostic's line or the line directly above — or -1 when none does.
func suppressor(fset *token.FileSet, d Diagnostic, dirs []DirectiveUse) int {
	posn := fset.Position(d.Pos)
	for i, dir := range dirs {
		if dir.Reason == "" || dir.Analyzer != d.Analyzer || dir.File != posn.Filename {
			continue
		}
		if dir.Line == posn.Line || dir.Line == posn.Line-1 {
			return i
		}
	}
	return -1
}
