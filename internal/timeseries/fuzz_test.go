package timeseries

import (
	"strings"
	"testing"
)

// FuzzReadPowerCSV checks the CSV reader never panics and that accepted
// series are structurally sound (positive interval, grid-aligned).
func FuzzReadPowerCSV(f *testing.F) {
	f.Add("timestamp,kw\n2016-01-01T00:00:00Z,1\n2016-01-01T00:15:00Z,2\n2016-01-01T00:30:00Z,3\n")
	f.Add("timestamp,kw\n")
	f.Add("garbage")
	f.Add("timestamp,kw\n2016-01-01T00:00:00Z,1\nbroken,2\n")
	f.Add("a,b\nc,d\ne,f\n")
	f.Fuzz(func(t *testing.T, input string) {
		s, err := ReadPowerCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		if s.Interval() <= 0 {
			t.Fatal("accepted series with non-positive interval")
		}
		if s.Len() < 2 {
			t.Fatal("accepted series with fewer than two samples")
		}
		if !s.End().After(s.Start()) {
			t.Fatal("accepted series with inverted span")
		}
	})
}
