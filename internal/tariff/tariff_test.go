package tariff

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/calendar"
	"repro/internal/timeseries"
	"repro/internal/units"
)

var t0 = time.Date(2016, time.July, 4, 0, 0, 0, 0, time.UTC) // a Monday

func flatLoad(n int, p units.Power) *timeseries.PowerSeries {
	return timeseries.ConstantPower(t0, time.Hour, n, p)
}

func TestKindStringAndIncentive(t *testing.T) {
	if Fixed.String() != "fixed" || TimeOfUse.String() != "time-of-use" || Dynamic.String() != "dynamic" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() == "" || Kind(9).Incentive() != "unknown" {
		t.Error("unknown kind handling wrong")
	}
	for _, k := range []Kind{Fixed, TimeOfUse, Dynamic} {
		if k.Incentive() == "" || k.Incentive() == "unknown" {
			t.Errorf("%v should have a documented incentive", k)
		}
	}
}

func TestFixedTariff(t *testing.T) {
	ft := MustNewFixed(0.10)
	if ft.Kind() != Fixed {
		t.Error("kind")
	}
	if ft.PriceAt(t0) != 0.10 || ft.PriceAt(t0.Add(1000*time.Hour)) != 0.10 {
		t.Error("fixed price should not vary")
	}
	// 1 MW for 24 h at 0.10/kWh = 2400.
	got := ft.Cost(flatLoad(24, 1000))
	if want := units.CurrencyUnits(2400); got != want {
		t.Errorf("Cost = %v, want %v", got, want)
	}
	if !strings.Contains(ft.Describe(), "fixed") {
		t.Error("describe")
	}
}

func TestNewFixedRejectsNegative(t *testing.T) {
	if _, err := NewFixed(-0.01); err == nil {
		t.Error("negative rate should fail")
	}
}

func TestMustNewFixedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("should panic")
		}
	}()
	MustNewFixed(-1)
}

func newDayNightTOU(t *testing.T) *TOUTariff {
	t.Helper()
	sched := calendar.DayNight(8, 20, nil)
	return MustNewTOU(sched, map[string]units.EnergyPrice{
		"peak":    0.20,
		"offpeak": 0.05,
	})
}

func TestTOUTariff(t *testing.T) {
	tou := newDayNightTOU(t)
	if tou.Kind() != TimeOfUse {
		t.Error("kind")
	}
	// Monday noon is peak; Monday 23:00 offpeak.
	if got := tou.PriceAt(t0.Add(12 * time.Hour)); got != 0.20 {
		t.Errorf("peak price = %v", got)
	}
	if got := tou.PriceAt(t0.Add(23 * time.Hour)); got != 0.05 {
		t.Errorf("offpeak price = %v", got)
	}
	// Full Monday at 1 MW: 12 peak hours ×0.20×1000 + 12 offpeak ×0.05×1000.
	got := tou.Cost(flatLoad(24, 1000))
	want := units.CurrencyUnits(12*200 + 12*50)
	if got != want {
		t.Errorf("Cost = %v, want %v", got, want)
	}
}

func TestTOUEnergyByBand(t *testing.T) {
	tou := newDayNightTOU(t)
	by := tou.EnergyByBand(flatLoad(24, 1000))
	if math.Abs(by["peak"].MWh()-12) > 1e-9 || math.Abs(by["offpeak"].MWh()-12) > 1e-9 {
		t.Errorf("EnergyByBand = %v", by)
	}
}

func TestTOUBandsAndDescribe(t *testing.T) {
	tou := newDayNightTOU(t)
	bands := tou.Bands()
	if len(bands) != 2 || bands[0].Label != "offpeak" || bands[1].Label != "peak" {
		t.Errorf("Bands = %v", bands)
	}
	if !strings.Contains(tou.Describe(), "time-of-use") {
		t.Error("describe")
	}
}

func TestNewTOUValidation(t *testing.T) {
	sched := calendar.DayNight(8, 20, nil)
	if _, err := NewTOU(nil, nil); err == nil {
		t.Error("nil schedule should fail")
	}
	if _, err := NewTOU(sched, map[string]units.EnergyPrice{"peak": 0.2}); err == nil {
		t.Error("missing band rate should fail")
	}
	if _, err := NewTOU(sched, map[string]units.EnergyPrice{"peak": 0.2, "offpeak": -0.1}); err == nil {
		t.Error("negative band rate should fail")
	}
}

func TestTOURatesAreCopied(t *testing.T) {
	sched := calendar.DayNight(8, 20, nil)
	rates := map[string]units.EnergyPrice{"peak": 0.20, "offpeak": 0.05}
	tou := MustNewTOU(sched, rates)
	rates["peak"] = 99
	if got := tou.PriceAt(t0.Add(12 * time.Hour)); got != 0.20 {
		t.Error("rates map must be copied at construction")
	}
}

func TestDynamicTariff(t *testing.T) {
	feed := timeseries.MustNewPrice(t0, time.Hour, []units.EnergyPrice{0.10, 0.50})
	dt := PassThrough(feed)
	if dt.Kind() != Dynamic {
		t.Error("kind")
	}
	if got := dt.PriceAt(t0.Add(90 * time.Minute)); got != 0.50 {
		t.Errorf("PriceAt = %v", got)
	}
	// 1 MW for 2 h: 100 + 500.
	got := dt.Cost(flatLoad(2, 1000))
	if want := units.CurrencyUnits(600); got != want {
		t.Errorf("Cost = %v, want %v", got, want)
	}
	if dt.Feed() != feed {
		t.Error("Feed accessor")
	}
	if !strings.Contains(dt.Describe(), "dynamic") {
		t.Error("describe")
	}
}

func TestDynamicMarkup(t *testing.T) {
	feed := timeseries.ConstantPrice(t0, time.Hour, 4, 0.10)
	dt := MustNewDynamic(feed, 1.5, 0.02)
	if got := dt.PriceAt(t0); math.Abs(float64(got)-0.17) > 1e-12 {
		t.Errorf("marked-up price = %v, want 0.17", got)
	}
}

func TestNewDynamicValidation(t *testing.T) {
	feed := timeseries.ConstantPrice(t0, time.Hour, 1, 0.10)
	if _, err := NewDynamic(nil, 1, 0); err == nil {
		t.Error("nil feed should fail")
	}
	if _, err := NewDynamic(feed, 0, 0); err == nil {
		t.Error("zero multiplier should fail")
	}
	if _, err := NewDynamic(feed, -1, 0); err == nil {
		t.Error("negative multiplier should fail")
	}
}

func TestMustNewDynamicPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("should panic")
		}
	}()
	MustNewDynamic(nil, 1, 0)
}

func TestStack(t *testing.T) {
	base := MustNewFixed(0.08)
	rider := newDayNightTOU(t)
	s := MustNewStack(base, rider)
	if s.Kind() != TimeOfUse {
		t.Errorf("stack kind = %v", s.Kind())
	}
	kinds := s.Kinds()
	if len(kinds) != 2 || kinds[0] != Fixed || kinds[1] != TimeOfUse {
		t.Errorf("Kinds = %v", kinds)
	}
	// PriceAt is the sum.
	if got := s.PriceAt(t0.Add(12 * time.Hour)); math.Abs(float64(got)-0.28) > 1e-12 {
		t.Errorf("stacked peak price = %v, want 0.28", got)
	}
	// Cost equals sum of parts.
	load := flatLoad(24, 1000)
	if got, want := s.Cost(load), base.Cost(load)+rider.Cost(load); got != want {
		t.Errorf("stack cost = %v, want %v", got, want)
	}
	parts := s.CostByComponent(load)
	if len(parts) != 2 || parts[0] != base.Cost(load) || parts[1] != rider.Cost(load) {
		t.Errorf("CostByComponent = %v", parts)
	}
	if len(s.Components()) != 2 {
		t.Error("Components")
	}
	if !strings.Contains(s.Describe(), "+") {
		t.Error("describe should join components")
	}
}

func TestStackKindDynamicDominates(t *testing.T) {
	feed := timeseries.ConstantPrice(t0, time.Hour, 1, 0.10)
	s := MustNewStack(MustNewFixed(0.08), PassThrough(feed))
	if s.Kind() != Dynamic {
		t.Errorf("stack kind = %v, want Dynamic", s.Kind())
	}
}

func TestNewStackValidation(t *testing.T) {
	if _, err := NewStack(); err == nil {
		t.Error("empty stack should fail")
	}
}

func TestMustNewStackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("should panic")
		}
	}()
	MustNewStack()
}

// Property: for any load, fixed-tariff cost equals rate × total energy
// within one micro-unit.
func TestQuickFixedCostMatchesEnergy(t *testing.T) {
	f := func(raw []uint16, rateMilli uint16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]units.Power, len(raw))
		for i, v := range raw {
			samples[i] = units.Power(v)
		}
		load := timeseries.MustNewPower(t0, time.Hour, samples)
		rate := units.EnergyPrice(float64(rateMilli%500) / 1000)
		ft := MustNewFixed(rate)
		got := ft.Cost(load)
		want := rate.Cost(load.Energy())
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a TOU tariff's cost is bounded by pricing the whole load at
// the min and max band rates.
func TestQuickTOUCostBounds(t *testing.T) {
	tou := newDayNightTOU(t)
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]units.Power, len(raw))
		for i, v := range raw {
			samples[i] = units.Power(v)
		}
		load := timeseries.MustNewPower(t0, time.Hour, samples)
		cost := tou.Cost(load)
		lo := units.EnergyPrice(0.05).Cost(load.Energy())
		hi := units.EnergyPrice(0.20).Cost(load.Energy())
		return cost >= lo-units.Money(load.Len()) && cost <= hi+units.Money(load.Len())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: stacking is additive — Stack(a,b).Cost == a.Cost + b.Cost.
func TestQuickStackAdditive(t *testing.T) {
	a := MustNewFixed(0.07)
	b := newDayNightTOU(t)
	s := MustNewStack(a, b)
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]units.Power, len(raw))
		for i, v := range raw {
			samples[i] = units.Power(v) * 100
		}
		load := timeseries.MustNewPower(t0, time.Hour, samples)
		return s.Cost(load) == a.Cost(load)+b.Cost(load)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: TOU EnergyByBand totals the load's energy.
func TestQuickEnergyByBandTotal(t *testing.T) {
	tou := newDayNightTOU(t)
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]units.Power, len(raw))
		for i, v := range raw {
			samples[i] = units.Power(v)
		}
		load := timeseries.MustNewPower(t0, time.Hour, samples)
		var sum units.Energy
		for _, e := range tou.EnergyByBand(load) {
			sum += e
		}
		return math.Abs(float64(sum-load.Energy())) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkTOUCostYear(b *testing.B) {
	tou := MustNewTOU(calendar.SeasonalDayNight(8, 20, nil), map[string]units.EnergyPrice{
		"summer-peak": 0.25, "peak": 0.18, "offpeak": 0.06,
	})
	load := timeseries.ConstantPower(t0, 15*time.Minute, 35040, 12*units.Megawatt)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tou.Cost(load)
	}
}
