package hpc

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

const sampleSWF = `; Comment header
; another comment

1 0 10 3600 32 -1 -1 32 7200 -1 1 1 1 1 1 1 -1 -1
2 600 5 1800 64 -1 -1 64 1800 -1 1 1 1 1 1 1 -1 -1
3 1200 -1 -1 16 -1 -1 16 3600 -1 0 1 1 1 1 1 -1 -1
4 1800 0 60 1 -1 -1 1 -1 -1 1 1 1 1 1 1 -1 -1
`

func TestParseSWF(t *testing.T) {
	jobs, err := ParseSWF(strings.NewReader(sampleSWF), SWFConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Job 3 has unknown runtime → skipped.
	if len(jobs) != 3 {
		t.Fatalf("jobs = %d, want 3", len(jobs))
	}
	j1 := jobs[0]
	if j1.ID != 1 || j1.Arrival != 0 || j1.Runtime != time.Hour || j1.Nodes != 32 {
		t.Errorf("job 1 = %+v", j1)
	}
	if j1.Walltime != 2*time.Hour {
		t.Errorf("job 1 walltime = %v", j1.Walltime)
	}
	// Job 4's requested time is -1 → walltime falls back to runtime.
	j4 := jobs[2]
	if j4.Walltime != j4.Runtime {
		t.Errorf("job 4 walltime = %v, want runtime fallback", j4.Walltime)
	}
	if j1.PowerFraction != 0.75 {
		t.Errorf("default power fraction = %v", j1.PowerFraction)
	}
}

func TestParseSWFCoresPerNode(t *testing.T) {
	jobs, err := ParseSWF(strings.NewReader(sampleSWF), SWFConfig{CoresPerNode: 32})
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].Nodes != 1 {
		t.Errorf("32 procs / 32 cores = %d nodes", jobs[0].Nodes)
	}
	// 1-processor job still gets one whole node.
	if jobs[2].Nodes != 1 {
		t.Errorf("single-proc job nodes = %d", jobs[2].Nodes)
	}
}

func TestParseSWFCheckpointableFraction(t *testing.T) {
	jobs, err := ParseSWF(strings.NewReader(sampleSWF), SWFConfig{CheckpointableFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, j := range jobs {
		if j.Checkpointable {
			n++
		}
	}
	if n != 2 { // every 2nd of 3 kept jobs, starting with the first
		t.Errorf("checkpointable = %d of %d", n, len(jobs))
	}
}

func TestParseSWFErrors(t *testing.T) {
	cases := map[string]string{
		"short line": "1 0 10 3600 32\n",
		"bad number": "x 0 10 3600 32 -1 -1 32 7200\n",
		"empty":      "; only comments\n",
	}
	for name, in := range cases {
		if _, err := ParseSWF(strings.NewReader(in), SWFConfig{}); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSWFRoundTrip(t *testing.T) {
	m := SmallSiteMachine()
	cfg := DefaultWorkload()
	cfg.Span = 12 * time.Hour
	orig, err := GenerateWorkload(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSWF(&buf, orig, SWFConfig{}); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSWF(&buf, SWFConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("round trip: %d vs %d jobs", len(back), len(orig))
	}
	for i := range orig {
		o, b := orig[i], back[i]
		if o.ID != b.ID || o.Nodes != b.Nodes {
			t.Fatalf("job %d identity mismatch", i)
		}
		// Times round to seconds in SWF.
		if d := o.Arrival - b.Arrival; d < -time.Second || d > time.Second {
			t.Fatalf("job %d arrival drift %v", i, d)
		}
		if d := o.Runtime - b.Runtime; d < -time.Second || d > time.Second {
			t.Fatalf("job %d runtime drift %v", i, d)
		}
	}
}

func TestSWFExportIsSimulable(t *testing.T) {
	// An exported-and-reimported trace must run through the simulator.
	m := SmallSiteMachine()
	cfg := DefaultWorkload()
	cfg.Span = 6 * time.Hour
	orig, err := GenerateWorkload(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSWF(&buf, orig, SWFConfig{}); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSWF(&buf, SWFConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range back {
		if err := j.Validate(); err != nil {
			t.Fatalf("imported job invalid: %v", err)
		}
	}
}
