// Command scsurvey regenerates the paper's exhibits from the encoded
// survey dataset: Table 1 (site roster), Table 2 (component matrix and
// RNP), Figure 1 (contract typology), and any of the derived experiments
// E1–E10.
//
// Usage:
//
//	scsurvey -table 1            # print Table 1
//	scsurvey -table 2            # print Table 2
//	scsurvey -figure 1           # print Figure 1
//	scsurvey -exp E2             # run one derived experiment
//	scsurvey -all                # run every exhibit in order
//	scsurvey -all -markdown      # emit Markdown instead of ASCII
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
	"repro/internal/report"
	"repro/internal/survey"
)

func main() {
	table := flag.Int("table", 0, "print paper table 1 or 2")
	figure := flag.Int("figure", 0, "print paper figure 1")
	expID := flag.String("exp", "", "run one experiment by ID (T1, T2, F1, E1..E16)")
	all := flag.Bool("all", false, "run every exhibit in order")
	questions := flag.Bool("questions", false, "print the §3.1 survey instrument")
	markdown := flag.Bool("markdown", false, "emit Markdown tables instead of ASCII")
	csvOut := flag.Bool("csv", false, "emit CSV tables instead of ASCII")
	flag.Parse()

	format := formatASCII
	switch {
	case *markdown:
		format = formatMarkdown
	case *csvOut:
		format = formatCSV
	}
	if *questions {
		printTable(survey.QuestionsTable(), format)
		return
	}
	if err := run(*table, *figure, *expID, *all, format); err != nil {
		fmt.Fprintln(os.Stderr, "scsurvey:", err)
		os.Exit(1)
	}
}

// format selects the table output encoding.
type format int

const (
	formatASCII format = iota
	formatMarkdown
	formatCSV
)

func run(table, figure int, expID string, all bool, f format) error {
	switch {
	case all:
		exhibits, err := exp.RunAll()
		if err != nil {
			return err
		}
		for _, e := range exhibits {
			printExhibit(e, f)
			fmt.Println(strings.Repeat("─", 72))
		}
		return nil
	case expID != "":
		e, err := exp.Run(expID)
		if err != nil {
			return err
		}
		printExhibit(e, f)
		return nil
	case table == 1:
		printTable(survey.Table1(), f)
		return nil
	case table == 2:
		t, err := survey.Table2()
		if err != nil {
			return err
		}
		printTable(t, f)
		return nil
	case figure == 1:
		fmt.Print(report.RenderTree(survey.Figure1()))
		return nil
	default:
		return fmt.Errorf("nothing to do; try -table 1, -table 2, -figure 1, -exp E2 or -all")
	}
}

func printExhibit(e *exp.Exhibit, f format) {
	if e.Table != nil {
		switch f {
		case formatMarkdown:
			fmt.Printf("## %s — %s\n\n", e.ID, e.Title)
			if e.PaperClaim != "" {
				fmt.Printf("> %s\n\n", e.PaperClaim)
			}
			fmt.Println(e.Table.Markdown())
			for _, n := range e.Notes {
				fmt.Printf("- %s\n", n)
			}
			fmt.Println()
			return
		case formatCSV:
			fmt.Print(e.Table.CSV())
			return
		}
	}
	fmt.Print(e.Render())
}

func printTable(t *report.Table, f format) {
	switch f {
	case formatMarkdown:
		fmt.Println(t.Markdown())
	case formatCSV:
		fmt.Print(t.CSV())
	default:
		fmt.Println(t.Render())
	}
}
