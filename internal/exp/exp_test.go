package exp

import (
	"strings"
	"testing"
	"time"

	"repro/internal/units"
)

func TestRegistryAndIDs(t *testing.T) {
	ids := IDs()
	want := []string{"T1", "T2", "F1", "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20", "E21", "E22", "E23"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i, w := range want {
		if ids[i] != w {
			t.Errorf("ids[%d] = %s, want %s", i, ids[i], w)
		}
	}
	if _, err := Run("nope"); err == nil {
		t.Error("unknown ID should fail")
	}
}

func TestRunAllProducesRenderableExhibits(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	exhibits, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range exhibits {
		if e.ID == "" || e.Title == "" {
			t.Errorf("exhibit %q incomplete", e.ID)
		}
		out := e.Render()
		if !strings.Contains(out, e.ID) {
			t.Errorf("%s render missing ID", e.ID)
		}
		if e.Table == nil && e.Figure == "" {
			t.Errorf("%s has neither table nor figure", e.ID)
		}
	}
}

func TestT1HasTenSites(t *testing.T) {
	e, err := Run("T1")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Table.Rows) != 10 {
		t.Errorf("Table 1 rows = %d", len(e.Table.Rows))
	}
}

func TestT2HasTenSitesAndRNP(t *testing.T) {
	e, err := Run("T2")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Table.Rows) != 10 {
		t.Errorf("Table 2 rows = %d", len(e.Table.Rows))
	}
	out := e.Table.Render()
	for _, rnp := range []string{"SC", "Internal", "External"} {
		if !strings.Contains(out, rnp) {
			t.Errorf("Table 2 missing RNP %q", rnp)
		}
	}
}

func TestF1HasThreeBranchesAndSixLeaves(t *testing.T) {
	e, err := Run("F1")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Tariffs", "Demand charges", "Other", "Fixed", "Time-of-use", "Dynamically variable", "Powerband", "Emergency DR"} {
		if !strings.Contains(e.Figure, want) {
			t.Errorf("Figure 1 missing %q", want)
		}
	}
}

func TestE1ReportsDiscrepancies(t *testing.T) {
	e, err := Run("E1")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(e.Notes, "\n")
	if !strings.Contains(joined, "disagreement") {
		t.Error("E1 must surface the text/matrix disagreements")
	}
	if !strings.Contains(joined, "6 of 10 sites communicate") {
		t.Errorf("E1 must report the swing-communication count: %s", joined)
	}
}

func TestE2ShareMonotoneInRatio(t *testing.T) {
	points, err := SweepE2([]float64{1.0, 1.5, 2.0, 3.0, 4.0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].DemandShare <= points[i-1].DemandShare {
			t.Errorf("demand share must grow with peak/avg: %.3f then %.3f at ratio %.1f",
				points[i-1].DemandShare, points[i].DemandShare, points[i].PeakToAverage)
		}
	}
	// Load factor is the inverse measure: must fall.
	for i := 1; i < len(points); i++ {
		if points[i].LoadFactor >= points[i-1].LoadFactor {
			t.Error("load factor must fall as the ratio grows")
		}
	}
	// At ratio 4, demand charges dominate a large share of the bill.
	last := points[len(points)-1]
	if last.DemandShare < 0.3 {
		t.Errorf("at 4× peak/avg demand share = %.2f, expected a heavy share", last.DemandShare)
	}
}

func TestE3PowerbandSensitiveDemandChargeSaturates(t *testing.T) {
	points, err := SweepE3([]int{0, 1, 3, 5, 10, 20})
	if err != nil {
		t.Fatal(err)
	}
	byN := map[int]E3Point{}
	for _, p := range points {
		byN[p.Excursions] = p
	}
	// No excursions: powerband free, demand charge bills the base load.
	if byN[0].PowerbandCost != 0 {
		t.Error("no excursions, no powerband cost")
	}
	// Demand charge saturates at 3 peaks.
	if byN[3].DemandCharge != byN[20].DemandCharge {
		t.Errorf("demand charge must saturate: %v at 3 vs %v at 20",
			byN[3].DemandCharge, byN[20].DemandCharge)
	}
	// Powerband keeps growing.
	if !(byN[1].PowerbandCost < byN[5].PowerbandCost && byN[5].PowerbandCost < byN[20].PowerbandCost) {
		t.Error("powerband penalty must grow with every excursion")
	}
	// Crossover: with many excursions the powerband exceeds... or at
	// least keeps penalizing while the demand charge is flat.
	growth := byN[20].PowerbandCost - byN[3].PowerbandCost
	if growth <= 0 {
		t.Error("powerband growth beyond 3 excursions must be positive")
	}
}

func TestE4TenderSavesMoney(t *testing.T) {
	res, outcome, err := RunTenderE4()
	if err != nil {
		t.Fatal(err)
	}
	if res.Savings <= 0 {
		t.Errorf("CSCS-style tender should beat the status quo: savings %v", res.Savings)
	}
	if outcome.Winner == nil {
		t.Fatal("no winner")
	}
	if outcome.Winner.Bid.RenewableShare < 0.80 {
		t.Error("winner must satisfy the 80% renewable floor")
	}
	if outcome.Winner.Bid.DemandCharge != nil {
		t.Error("winner must not carry demand charges")
	}
	if res.CompliantOf == 0 || res.CompliantOf > res.TotalBids {
		t.Errorf("compliant = %d of %d", res.CompliantOf, res.TotalBids)
	}
}

func TestE5BenefitGrowsWithWindow(t *testing.T) {
	points, err := SweepE5([]time.Duration{15 * time.Minute, 30 * time.Minute, time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Curtailed <= points[i-1].Curtailed {
			t.Error("longer windows curtail more energy")
		}
		if points[i].NetBenefit <= points[i-1].NetBenefit {
			t.Error("cheap shedding: longer windows earn more")
		}
	}
	// Office shedding is cheap: even 15 minutes should pay.
	if points[0].NetBenefit <= 0 {
		t.Errorf("15-min window net benefit = %v, want positive", points[0].NetBenefit)
	}
}

func TestE6BreakEvenGrowsWithComputeValue(t *testing.T) {
	values := []units.EnergyPrice{0.10, 0.50, 1.00, 2.00, 5.00}
	points, err := SweepE6(values)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].BreakEven < points[i-1].BreakEven {
			t.Error("break-even incentive must grow with compute value")
		}
	}
	// The paper's claim: at SC-typical compute value (several units/kWh)
	// the market incentive does not pay.
	last := points[len(points)-1]
	if last.PaysAtMarketRate {
		t.Error("at 5.00/kWh compute value, a 0.50/kWh incentive must not pay")
	}
	// And at near-zero compute value it does.
	if !points[0].PaysAtMarketRate {
		t.Error("at 0.10/kWh compute value the incentive should pay")
	}
}

func TestE7DetectsAllInjectedEvents(t *testing.T) {
	for _, th := range []units.Power{500, 1000, 2000} {
		res, notes, err := RunE7(th)
		if err != nil {
			t.Fatal(err)
		}
		if res.Detected < res.Injected {
			t.Errorf("threshold %v: detected %d of %d injected events", th, res.Detected, res.Injected)
		}
		if res.Notified == 0 {
			t.Errorf("threshold %v: no notifications issued", th)
		}
		if len(notes) != res.Notified {
			t.Error("notification count mismatch")
		}
	}
	// Spurious detections shrink as the threshold grows.
	lo, _, _ := RunE7(500)
	hi, _, _ := RunE7(2000)
	if hi.Spurious > lo.Spurious {
		t.Errorf("spurious detections should not grow with threshold: %d → %d", lo.Spurious, hi.Spurious)
	}
}

func TestE8ReproducesFERCScale(t *testing.T) {
	points, err := SweepE8([]float64{0.01, 0.066, 0.10})
	if err != nil {
		t.Fatal(err)
	}
	byF := map[float64]float64{}
	for _, p := range points {
		byF[p.EnrolledFraction] = p.PeakReduction
	}
	// Enrolled 6.6% → ≈6.6% peak reduction.
	got := byF[0.066]
	if got < 0.060 || got > 0.072 {
		t.Errorf("6.6%% enrollment gives %.1f%% reduction, want ≈6.6%%", got*100)
	}
	// Monotone in enrollment.
	if !(byF[0.01] < byF[0.066] && byF[0.066] < byF[0.10]) {
		t.Error("peak reduction must grow with enrollment")
	}
}

func TestE9BatchRampsDwarfSmoothed(t *testing.T) {
	res, err := RunE9()
	if err != nil {
		t.Fatal(err)
	}
	if res.SCMaxRamp <= 0 {
		t.Fatal("no ramping measured")
	}
	if float64(res.SCMaxRamp) < 3*float64(res.SmoothedMaxRamp) {
		t.Errorf("batch max ramp %v should dwarf smoothed %v", res.SCMaxRamp, res.SmoothedMaxRamp)
	}
}

func TestE10IncentiveMapping(t *testing.T) {
	points, err := SweepE10()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	var fixedSav, touSav, dynSav units.Money
	for _, p := range points {
		switch p.Kind.String() {
		case "fixed":
			fixedSav = p.Savings
		case "time-of-use":
			touSav = p.Savings
		case "dynamic":
			dynSav = p.Savings
		}
	}
	// Fixed: shifting conserves energy → savings ≈ 0 (within rounding).
	if fixedSav < -units.CurrencyUnits(1) || fixedSav > units.CurrencyUnits(1) {
		t.Errorf("fixed-tariff savings = %v, want ≈0", fixedSav)
	}
	// TOU and dynamic reward the shift.
	if touSav <= units.CurrencyUnits(10) {
		t.Errorf("TOU savings = %v, want clearly positive", touSav)
	}
	if dynSav <= 0 {
		t.Errorf("dynamic savings = %v, want positive", dynSav)
	}
}
