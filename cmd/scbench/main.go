// Command scbench turns `go test -bench` text output into a structured
// JSON benchmark record and gates performance regressions against a
// committed baseline.
//
// Usage:
//
//	go test -run '^$' -bench BillYear -benchmem . | scbench -commit $(git rev-parse --short HEAD) -out BENCH_billing.json
//	... | scbench -out BENCH_current.json -compare BENCH_billing.json -gate BillYearEngine -threshold 0.15
//
// The first form parses the benchmark lines on stdin ("BenchmarkX-8  N
// ns/op  B/op  allocs/op", the -N GOMAXPROCS suffix stripped) and
// writes a JSON document with the commit, Go version, and one record
// per benchmark. The second form additionally loads a baseline JSON
// file and exits nonzero when any benchmark matching -gate regressed
// its ns/op by more than -threshold (fractional: 0.15 = 15%) or its
// allocs/op by more than -alloc-threshold — the CI performance gate
// over the billing hot path. Gating allocations alongside wall time
// catches a different failure: an accidental per-sample allocation in
// the columnar kernels can hide inside run-to-run timing noise but
// never inside the alloc count, which is deterministic. Benchmarks
// whose baseline records no allocs/op (no -benchmem run) skip the
// alloc gate. A gate benchmark present in the baseline but absent from
// the current run is also a failure: a renamed benchmark must move its
// baseline in the same change.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Report is the BENCH_billing.json document.
type Report struct {
	Commit     string      `json:"commit,omitempty"`
	Go         string      `json:"go"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	commit := flag.String("commit", "", "commit hash recorded in the report")
	out := flag.String("out", "", "write the JSON report here (default: stdout)")
	compare := flag.String("compare", "", "baseline JSON report to gate against")
	gate := flag.String("gate", "BillYearEngine", "regexp over benchmark names the regression gate covers")
	threshold := flag.Float64("threshold", 0.15, "max allowed fractional ns/op regression vs the baseline")
	allocThreshold := flag.Float64("alloc-threshold", 0.10, "max allowed fractional allocs/op regression vs the baseline")
	flag.Parse()

	if err := run(os.Stdin, *commit, *out, *compare, *gate, *threshold, *allocThreshold); err != nil {
		fmt.Fprintln(os.Stderr, "scbench:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, commit, out, compare, gate string, threshold, allocThreshold float64) error {
	benches, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark lines on input")
	}
	report := Report{Commit: commit, Go: runtime.Version(), Benchmarks: benches}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
	} else {
		err = os.WriteFile(out, data, 0o644)
	}
	if err != nil {
		return err
	}

	if compare == "" {
		return nil
	}
	baseData, err := os.ReadFile(compare)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(baseData, &base); err != nil {
		return fmt.Errorf("%s: %w", compare, err)
	}
	return checkRegression(base, report, gate, threshold, allocThreshold)
}

// benchLine matches one result line of `go test -bench` output:
// name, iteration count, then "value unit" pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

// parseBench extracts benchmark records from go test output, dropping
// the -N GOMAXPROCS suffix from names so records are comparable across
// machines with different core counts.
func parseBench(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		b := Benchmark{Name: stripProcSuffix(m[1])}
		fields := strings.Fields(m[2])
		ok := false
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad value %q", b.Name, fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp, ok = v, true
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		if ok {
			out = append(out, b)
		}
	}
	return out, sc.Err()
}

// stripProcSuffix removes the trailing -N parallelism marker go test
// appends to benchmark names ("BenchmarkBillYearEngine-8"), leaving
// sub-benchmark paths intact.
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// checkRegression fails when a gate-matching benchmark got more than
// threshold slower (ns/op) or more than allocThreshold heavier
// (allocs/op) than the baseline, or disappeared from the run.
func checkRegression(base, cur Report, gate string, threshold, allocThreshold float64) error {
	re, err := regexp.Compile(gate)
	if err != nil {
		return fmt.Errorf("bad -gate regexp: %w", err)
	}
	current := make(map[string]Benchmark, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		current[b.Name] = b
	}
	gated := 0
	var failures []string
	for _, b := range base.Benchmarks {
		if !re.MatchString(b.Name) {
			continue
		}
		gated++
		got, ok := current[b.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline but missing from this run", b.Name))
			continue
		}
		if b.NsPerOp > 0 {
			delta := (got.NsPerOp - b.NsPerOp) / b.NsPerOp
			if delta > threshold {
				failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%+.1f%%, limit %+.0f%%)",
					b.Name, got.NsPerOp, b.NsPerOp, delta*100, threshold*100))
			}
		}
		// Alloc counts are deterministic per run (no timing noise), so
		// the gate is meaningful even at tight thresholds; baselines
		// recorded without -benchmem carry no count and skip it.
		if b.AllocsPerOp > 0 {
			delta := (got.AllocsPerOp - b.AllocsPerOp) / b.AllocsPerOp
			if delta > allocThreshold {
				failures = append(failures, fmt.Sprintf("%s: %.0f allocs/op vs baseline %.0f (%+.1f%%, limit %+.0f%%)",
					b.Name, got.AllocsPerOp, b.AllocsPerOp, delta*100, allocThreshold*100))
			}
		}
	}
	if gated == 0 {
		return fmt.Errorf("regression gate %q matches no baseline benchmark", gate)
	}
	if len(failures) > 0 {
		return fmt.Errorf("performance regression:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}
