// Package metricname lints the hand-rolled Prometheus exposition in
// internal/serve, internal/obs, and internal/route.
//
// Invariant guarded: the fleet writes its /metrics pages by hand (the
// repo is dependency-free), so nothing but convention keeps the metric
// namespaces coherent. Each scope owns one namespace — the backend
// mints scserved_* series, the router scroute_* — and a series minted
// in the wrong package would collide (or silently vanish) when both
// processes are scraped side by side. The analyzer checks every string
// literal: namespace tokens must match <ns>_[a-z_]+ with the
// conventional unit/kind suffixes and belong to the package's own
// namespace; "# TYPE" headers must agree with the name (counters end
// in _total, gauges don't, histograms are named for their unit:
// _seconds or _bytes); and the _bucket/_sum/_count series of a
// histogram are emitted only by obs.WriteProm — hand-rolling them
// elsewhere forks the exposition format.
package metricname

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

var scopes = []string{
	"internal/serve",
	"internal/obs",
	"internal/route",
}

var (
	tokenRx = regexp.MustCompile(`(?:scserved|scroute)_[A-Za-z0-9_]+`)
	nameRx  = regexp.MustCompile(`^(?:scserved|scroute)_[a-z_]+$`)
	typeRx  = regexp.MustCompile(`# TYPE\s+(\S+)\s+(\S+)`)
)

var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc: "require Prometheus names in internal/serve, internal/obs, and " +
		"internal/route to match their package's namespace (scserved_ or " +
		"scroute_) with suffixes agreeing with the # TYPE kind",
	Run: run,
}

// bannedNamespace returns the namespace prefix the package must NOT
// mint, "" when both are fine. internal/obs is shared plumbing, so it
// may reference either; the backend and router each own one.
func bannedNamespace(pass *analysis.Pass) string {
	switch {
	case analysis.InScope(pass.Pkg, "internal/route"):
		return "scserved_"
	case analysis.InScope(pass.Pkg, "internal/serve"):
		return "scroute_"
	}
	return ""
}

func run(pass *analysis.Pass) error {
	if !analysis.InScope(pass.Pkg, scopes...) {
		return nil
	}
	handRolledOK := analysis.InScope(pass.Pkg, "internal/obs")
	banned := bannedNamespace(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BasicLit:
				if n.Kind == token.STRING {
					checkLiteral(pass, n, handRolledOK, banned)
				}
			case *ast.CallExpr:
				checkWriteProm(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkLiteral(pass *analysis.Pass, lit *ast.BasicLit, handRolledOK bool, banned string) {
	text, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	for _, tok := range tokenRx.FindAllString(text, -1) {
		if !nameRx.MatchString(tok) {
			pass.Reportf(lit.Pos(),
				"metric name %q does not match (scserved|scroute)_[a-z_]+ (lowercase letters and underscores only)", tok)
			continue
		}
		if banned != "" && strings.HasPrefix(tok, banned) {
			pass.Reportf(lit.Pos(),
				"metric name %q is outside this package's namespace (the backend mints scserved_*, the router scroute_*)", tok)
			continue
		}
		if !handRolledOK && histogramSeriesSuffix(tok) {
			pass.Reportf(lit.Pos(),
				"hand-rolled histogram series %q; the _bucket/_sum/_count lines are emitted by obs.WriteProm", tok)
		}
	}
	for _, m := range typeRx.FindAllStringSubmatch(text, -1) {
		name, kind := m[1], m[2]
		if !strings.HasPrefix(name, "scserved_") && !strings.HasPrefix(name, "scroute_") {
			continue
		}
		switch kind {
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				pass.Reportf(lit.Pos(), "counter %q must end in _total", name)
			}
		case "gauge":
			if strings.HasSuffix(name, "_total") {
				pass.Reportf(lit.Pos(), "gauge %q must not end in _total (that suffix is for counters)", name)
			}
		case "histogram":
			if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") {
				pass.Reportf(lit.Pos(), "histogram %q must be named for its unit (_seconds or _bytes)", name)
			}
		}
	}
}

// histogramSeriesSuffix reports whether the name is one of the derived
// series a Prometheus histogram exposes.
func histogramSeriesSuffix(name string) bool {
	return strings.HasSuffix(name, "_bucket") ||
		strings.HasSuffix(name, "_sum") ||
		strings.HasSuffix(name, "_count")
}

// checkWriteProm requires the metric-family name passed to a WriteProm
// call to carry a histogram unit suffix.
func checkWriteProm(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Name() != "WriteProm" {
		return
	}
	for _, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			continue
		}
		name, err := strconv.Unquote(lit.Value)
		if err != nil || (!strings.HasPrefix(name, "scserved_") && !strings.HasPrefix(name, "scroute_")) {
			continue
		}
		if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") {
			pass.Reportf(lit.Pos(),
				"histogram family %q must be named for its unit (_seconds or _bytes)", name)
		}
	}
}
