package timeseries

// Mutable-buffer helpers for load-reshaping optimizers. The optimizer in
// internal/optimize perturbs a candidate schedule thousands of times per
// request; going through Samples() (which copies) or Map() (which
// allocates a new series) per candidate would dominate the search cost.
// The sanctioned pattern is instead:
//
//	buf := baseline.AppendSamples(nil) // one private copy
//	cand := baseline.WithSamples(buf)  // same clock, caller-owned storage
//	// ... mutate buf in place; cand (and its Blocks/Months views)
//	// always reflect the current buffer contents ...
//
// Month-block boundaries depend only on the start instant, interval and
// length, so views created once stay valid across any number of sample
// mutations.

import "repro/internal/units"

// Clone returns a deep copy of the series: same start and interval over
// a freshly allocated sample array. Mutating either series' storage
// (via WithSamples buffers) never affects the other.
func (s *PowerSeries) Clone() *PowerSeries {
	samples := make([]units.Power, len(s.samples))
	copy(samples, s.samples)
	return &PowerSeries{start: s.start, interval: s.interval, samples: samples}
}

// AppendSamples appends the series' samples to dst and returns the
// extended slice. With a capacity-sufficient scratch slice the call is
// allocation-free; AppendSamples(nil) is a plain copy like Samples().
func (s *PowerSeries) AppendSamples(dst []units.Power) []units.Power {
	return append(dst, s.samples...)
}

// WithSamples returns a series with the receiver's start and interval
// over the given caller-owned sample slice (used directly, not copied).
// This is the one sanctioned way to build a series whose storage the
// caller keeps mutating: the returned series, and any Blocks/Months
// views derived from it, read the buffer's current contents. The slice
// must keep its length; callers must not mutate it concurrently with an
// evaluation that reads it.
func (s *PowerSeries) WithSamples(samples []units.Power) *PowerSeries {
	return &PowerSeries{start: s.start, interval: s.interval, samples: samples}
}
