package tariff

// Billing-engine glue: every Tariff becomes a billing.LineItemProducer
// whose accumulator reproduces the tariff's Cost method arithmetic
// exactly — same floating-point operations in the same order — while
// sharing the engine's single pass over the load series instead of
// scanning it per component.

import (
	"errors"
	"time"

	"repro/internal/billing"
	"repro/internal/units"
)

// Producer adapts a tariff into a billing.LineItemProducer. Known
// in-package kinds get exact-arithmetic streaming accumulators (a fixed
// tariff prices total energy once; stacks keep per-component partial
// sums so rounding matches Stack.Cost); any other Tariff implementation
// falls back to the per-sample PriceAt accumulation that costByPriceAt
// performs.
func Producer(t Tariff) billing.LineItemProducer {
	return producer{t: t}
}

type producer struct{ t Tariff }

func (p producer) Validate() error {
	if p.t == nil {
		return errors.New("tariff: nil tariff component")
	}
	return nil
}

func (p producer) Describe() string { return p.t.Describe() }

// SpanFamily attributes observation cost to the tariff family (the kWh
// branch of the typology) in span traces.
func (p producer) SpanFamily() string { return "tariff" }

func (p producer) BeginPeriod(_ *billing.PeriodContext, interval time.Duration) billing.Accumulator {
	return &tariffAcc{
		t:     p.t,
		class: classFor(p.t.Kind()),
		cost:  newCostAccumulator(p.t),
	}
}

func classFor(k Kind) billing.Class {
	switch k {
	case TimeOfUse:
		return billing.ClassTOUTariff
	case Dynamic:
		return billing.ClassDynamicTariff
	default:
		return billing.ClassFixedTariff
	}
}

// tariffAcc wraps a cost accumulator and tracks the period energy for
// the line's quantity column.
type tariffAcc struct {
	t     Tariff
	class billing.Class
	cost  costAccumulator
	kwh   float64
}

func (a *tariffAcc) Observe(s billing.Sample) {
	a.kwh += float64(s.Energy)
	a.cost.observe(s)
}

func (a *tariffAcc) Lines() []billing.LineItem {
	return []billing.LineItem{{
		Class:       a.class,
		Description: a.t.Describe(),
		Quantity:    units.Energy(a.kwh).String(),
		Amount:      a.cost.amount(),
	}}
}

// costAccumulator is the streaming counterpart of Tariff.Cost: observe
// every sample once, then read the period amount.
type costAccumulator interface {
	observe(s billing.Sample)
	amount() units.Money
}

func newCostAccumulator(t Tariff) costAccumulator {
	switch tt := t.(type) {
	case *FixedTariff:
		return &fixedAcc{rate: tt.Rate}
	case *Stack:
		kids := make([]costAccumulator, len(tt.components))
		for i, c := range tt.components {
			kids[i] = newCostAccumulator(c)
		}
		return &stackAcc{kids: kids}
	default:
		return &priceAtAcc{t: t}
	}
}

// fixedAcc reproduces FixedTariff.Cost: the flat rate prices the
// period's total energy with a single rounding.
type fixedAcc struct {
	rate units.EnergyPrice
	kwh  float64
}

func (a *fixedAcc) observe(s billing.Sample) { a.kwh += float64(s.Energy) }

func (a *fixedAcc) amount() units.Money { return a.rate.Cost(units.Energy(a.kwh)) }

// priceAtAcc reproduces costByPriceAt: each sample's energy is billed
// at the price in effect at the sample's interval start, rounding per
// sample.
type priceAtAcc struct {
	t     Tariff
	total units.Money
}

func (a *priceAtAcc) observe(s billing.Sample) {
	a.total += a.t.PriceAt(s.Time).Cost(s.Energy)
}

func (a *priceAtAcc) amount() units.Money { return a.total }

// stackAcc reproduces Stack.Cost: each stacked component accumulates
// independently and the amounts sum at the end, so per-component
// rounding matches the standalone path.
type stackAcc struct {
	kids []costAccumulator
}

func (a *stackAcc) observe(s billing.Sample) {
	for _, k := range a.kids {
		k.observe(s)
	}
}

func (a *stackAcc) amount() units.Money {
	var total units.Money
	for _, k := range a.kids {
		total += k.amount()
	}
	return total
}
