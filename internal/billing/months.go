package billing

// Calendar-month evaluation with a worker pool. Months are almost
// independent billing periods — the one cross-month dependency is the
// ratchet demand charge, whose billed demand floors at a fraction of
// the highest peak seen in earlier months. A naive parallelization
// would have to serialize on that. Instead evaluation is two-phase:
//
//  1. Peak prescan: one cheap pass over the series computes each
//     month's peak, from which the running historical peak entering
//     every month follows sequentially (it is a prefix maximum).
//  2. Parallel evaluation: with each month's historical peak known
//     up front, all months evaluate concurrently.
//
// The result is ordered and deterministic: identical to evaluating the
// months sequentially with the ratchet threaded through.

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/obs"
	"repro/internal/timeseries"
	"repro/internal/units"
)

// MonthsOptions tunes EvaluateMonths.
type MonthsOptions struct {
	// Workers caps the worker pool; <= 0 selects GOMAXPROCS.
	Workers int
	// Context, when non-nil, cancels the evaluation: workers stop
	// picking up months once it is done and the first cancellation
	// error is returned. Month evaluation itself also polls the
	// context (see EvaluatePeriodCtx), so even a single enormous
	// month honours a deadline.
	Context context.Context
}

// EvaluateMonths splits the load into calendar months and evaluates
// each month concurrently, threading the running historical peak into
// every month's context exactly as a sequential ratchet loop would.
// Results are in chronological month order.
func (e *Evaluator) EvaluateMonths(load *timeseries.PowerSeries, ctx PeriodContext, opts MonthsOptions) ([]*Result, error) {
	if load == nil || load.Len() == 0 {
		return nil, ErrEmptyLoad
	}
	cctx := opts.Context
	if cctx == nil {
		cctx = context.Background()
	}
	defer obs.Span(cctx, SpanMonths)()
	months := load.Months()

	// Phase 1: peak prescan over the columnar block view — tight slice
	// scans sharing the series' storage, no per-month copies. hist[i]
	// is the historical peak entering month i: the max of the caller's
	// historical peak and every earlier month's peak.
	endPrescan := obs.Span(cctx, SpanPrescan)
	blocks := load.Blocks()
	hist := make([]units.Power, len(blocks))
	run := ctx.HistoricalPeak
	for i := range blocks {
		hist[i] = run
		if p := blocks[i].Peak(); p > run {
			run = p
		}
	}
	endPrescan()

	// Phase 2: evaluate months on the pool, into one result slab.
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(months) {
		workers = len(months)
	}

	slab := make([]Result, len(months))
	results := make([]*Result, len(months))
	errs := make([]error, len(months))
	evalOne := func(i int) {
		mctx := ctx
		mctx.HistoricalPeak = hist[i]
		errs[i] = e.evaluatePeriodInto(cctx, &months[i], mctx, &slab[i])
		results[i] = &slab[i]
	}

	if workers <= 1 {
		for i := range months {
			if err := cctx.Err(); err != nil {
				return nil, err
			}
			evalOne(i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					// A cancelled context drains the remaining
					// months without evaluating them; the per-month
					// error slot records why.
					if err := cctx.Err(); err != nil {
						errs[i] = err
						continue
					}
					evalOne(i)
				}
			}()
		}
		for i := range months {
			next <- i
		}
		close(next)
		wg.Wait()
	}

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
