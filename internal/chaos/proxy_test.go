package chaos

// Chaos-proxy tests against a real HTTP backend: every fault mode
// produces its characteristic client-visible symptom, and switching
// faults severs warmed keep-alive connections.

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

func newProxyFixture(t *testing.T, body string) (*Proxy, *http.Client) {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, body)
	}))
	t.Cleanup(ts.Close)
	p, err := NewProxy(ProxyConfig{
		Name:   "t",
		Listen: "127.0.0.1:0",
		Target: strings.TrimPrefix(ts.URL, "http://"),
		Seed:   42,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	// A fresh client per fixture: fault symptoms must not leak between
	// tests through a shared connection pool.
	client := &http.Client{Transport: &http.Transport{}}
	t.Cleanup(client.CloseIdleConnections)
	return p, client
}

func getThrough(p *Proxy, client *http.Client, timeout time.Duration) (*http.Response, string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+p.Addr()+"/", nil)
	if err != nil {
		return nil, "", err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp, string(data), err
}

func TestProxyPassThrough(t *testing.T) {
	p, client := newProxyFixture(t, "hello fleet")
	resp, body, err := getThrough(p, client, 2*time.Second)
	if err != nil {
		t.Fatalf("pass mode: %v", err)
	}
	if resp.StatusCode != http.StatusOK || body != "hello fleet" {
		t.Fatalf("pass mode = %d %q, want 200 %q", resp.StatusCode, body, "hello fleet")
	}
}

func TestProxyBlackholeNeverAnswers(t *testing.T) {
	p, client := newProxyFixture(t, "x")
	if err := p.SetFault(Fault{Mode: FaultBlackhole}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, _, err := getThrough(p, client, 300*time.Millisecond)
	if err == nil {
		t.Fatal("blackhole answered; it must swallow the request")
	}
	if elapsed := time.Since(start); elapsed < 250*time.Millisecond {
		t.Fatalf("blackhole failed fast (%s); only the client timeout may end it", elapsed)
	}
}

func TestProxyResetFailsFast(t *testing.T) {
	p, client := newProxyFixture(t, "x")
	if err := p.SetFault(Fault{Mode: FaultReset}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, _, err := getThrough(p, client, 2*time.Second)
	if err == nil {
		t.Fatal("reset mode produced a response")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("reset took %s; an RST must fail fast", elapsed)
	}
}

func TestProxyLatencyDelays(t *testing.T) {
	p, client := newProxyFixture(t, "slow")
	if err := p.SetFault(Fault{Mode: FaultLatency, Latency: 120 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, body, err := getThrough(p, client, 5*time.Second)
	if err != nil {
		t.Fatalf("latency mode: %v", err)
	}
	if resp.StatusCode != http.StatusOK || body != "slow" {
		t.Fatalf("latency mode = %d %q", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("latency mode answered in %s; the brownout delay is missing", elapsed)
	}
}

func TestProxyTrickleIsSlow(t *testing.T) {
	// 2 KiB body at 2 KiB/s ≈ 1 s of trickling; a 150 ms budget must
	// not see the end of it.
	p, client := newProxyFixture(t, strings.Repeat("z", 2048))
	if err := p.SetFault(Fault{Mode: FaultTrickle, BytesPerSec: 2048}); err != nil {
		t.Fatal(err)
	}
	_, body, err := getThrough(p, client, 150*time.Millisecond)
	if err == nil && len(body) == 2048 {
		t.Fatal("trickle delivered the full body within 150 ms; it must crawl")
	}
}

func TestProxyCutMidBody(t *testing.T) {
	p, client := newProxyFixture(t, strings.Repeat("z", 4096))
	if err := p.SetFault(Fault{Mode: FaultCut, CutAfterBytes: 200}); err != nil {
		t.Fatal(err)
	}
	_, body, err := getThrough(p, client, 2*time.Second)
	if err == nil && len(body) == 4096 {
		t.Fatal("cut mode delivered the full body")
	}
	if len(body) > 300 {
		t.Fatalf("cut mode relayed %d bytes, want ~200 before the cut", len(body))
	}
}

func TestSetFaultSeversWarmConnections(t *testing.T) {
	p, client := newProxyFixture(t, "warm")
	// Warm a keep-alive connection under pass mode.
	if _, _, err := getThrough(p, client, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := p.SetFault(Fault{Mode: FaultBlackhole}); err != nil {
		t.Fatal(err)
	}
	// The warmed conn is severed, so the retried request re-dials into
	// the blackhole and times out instead of sneaking through the pool.
	if _, _, err := getThrough(p, client, 300*time.Millisecond); err == nil {
		t.Fatal("request after fault switch succeeded through a stale pooled connection")
	}
}

func TestFaultValidation(t *testing.T) {
	p, _ := newProxyFixture(t, "x")
	if err := p.SetFault(Fault{Mode: "melt"}); err == nil {
		t.Fatal("unknown fault mode accepted")
	}
}

// TestCloseWaitsForCopiers pins the goroleak fix: the per-direction
// copier goroutines are registered on the proxy's WaitGroup, so
// Close() does not return while a copier is still moving bytes. The
// trickle fault makes the window observable — its copier sleeps a full
// second between chunks, so an unregistered copier would still be
// alive (asleep mid-transfer) long after an un-waiting Close returned.
func TestCloseWaitsForCopiers(t *testing.T) {
	p, _ := newProxyFixture(t, strings.Repeat("z", 8<<10))
	if err := p.SetFault(Fault{Mode: FaultTrickle, BytesPerSec: 256}); err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, "GET / HTTP/1.0\r\nHost: t\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	// Let the trickle copier read its first chunk and enter the
	// inter-chunk sleep.
	time.Sleep(200 * time.Millisecond)

	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// After Close returns, no proxy goroutine may remain. A short
	// grace poll absorbs frame-teardown lag after wg.Done, but is far
	// below the copier's 1s sleep quantum, so a leaked copier is still
	// on the stack when the deadline hits.
	deadline := time.Now().Add(500 * time.Millisecond)
	for {
		buf := make([]byte, 1<<20)
		stacks := string(buf[:runtime.Stack(buf, true)])
		if !strings.Contains(stacks, "(*Proxy).handleConn") &&
			!strings.Contains(stacks, "(*Proxy).acceptLoop") {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("proxy goroutines still running after Close:\n%s", stacks)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
