package survey

// This file regenerates the paper's three exhibits — Table 1, Table 2
// and Figure 1 — as report structures, by running the dataset through
// the contract-classification pipeline.

import (
	"fmt"
	"time"

	"repro/internal/contract"
	"repro/internal/report"
)

// defaultStart anchors the reference feed used when classifying the
// synthetic site contracts (the survey year).
func defaultStart() time.Time {
	return time.Date(2016, time.January, 1, 0, 0, 0, 0, time.UTC)
}

// Table1 regenerates the paper's Table 1: interview sites labeled with
// country of residence.
func Table1() *report.Table {
	t := report.NewTable("Table 1: Interview sites labeled with country of residence",
		"Interview Site", "Country")
	for _, e := range Roster() {
		t.AddRow(e.Name, e.Country)
	}
	return t
}

// Table2 regenerates the paper's Table 2: the per-site component matrix
// and RNP column, produced by classifying each site's built contract
// (not by echoing the stored booleans).
func Table2() (*report.Table, error) {
	t := report.NewTable("Table 2: Summary of survey results",
		"", "Demand Charges", "Powerband", "Fixed", "Variable", "Dynamic", "Emergency DR", "RNP")
	ctx := DefaultBuildContext(defaultStart())
	for _, site := range Records() {
		c, err := BuildContract(site, ctx)
		if err != nil {
			return nil, err
		}
		p := contract.Classify(c)
		t.AddRow(
			fmt.Sprintf("Site %d", site.ID),
			report.Check(p.DemandCharge),
			report.Check(p.Powerband),
			report.Check(p.FixedTariff),
			report.Check(p.TOUTariff),
			report.Check(p.DynamicTariff),
			report.Check(p.EmergencyDR),
			site.RNP.String(),
		)
	}
	return t, nil
}

// Figure1 regenerates the paper's Figure 1, the contract typology
// overview, as a renderable tree.
func Figure1() *report.TreeNode {
	return toReportTree(contract.Typology())
}

func toReportTree(n *contract.TypologyNode) *report.TreeNode {
	out := &report.TreeNode{Label: n.Title, Detail: n.Detail}
	if n.IsLeaf() {
		out.Detail = n.Detail + " [encourages: " + n.Encourages + "]"
	}
	for _, c := range n.Children {
		out.Children = append(out.Children, toReportTree(c))
	}
	return out
}

// CountsTable renders the aggregate component frequencies with both the
// matrix tally and the running-text claim, flagging disagreements.
func CountsTable() (*report.Table, error) {
	matrix, err := MatrixCounts()
	if err != nil {
		return nil, err
	}
	text := TextClaims()
	t := report.NewTable("Component frequencies across the ten sites",
		"Component", "Matrix (Table 2)", "Text (§3.2.4)", "Agrees")
	for _, comp := range contract.AllComponents() {
		agrees := matrix.Component[comp] == text.Component[comp]
		t.AddRow(
			comp.String(),
			fmt.Sprintf("%d/10", matrix.Component[comp]),
			fmt.Sprintf("%d/10", text.Component[comp]),
			report.Check(agrees),
		)
	}
	return t, nil
}

// RNPTable renders the §3.3 negotiating-party distribution.
func RNPTable() (*report.Table, error) {
	matrix, err := MatrixCounts()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Responsible negotiating parties (§3.3)",
		"RNP", "Sites")
	for _, r := range []RNP{RNPSupercomputingCenter, RNPInternal, RNPExternal} {
		t.AddRow(r.String(), fmt.Sprintf("%d", matrix.RNP[r]))
	}
	return t, nil
}
