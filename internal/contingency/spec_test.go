package contingency

import (
	"strings"
	"testing"
)

func fullPlanSpec() *PlanSpec {
	return &PlanSpec{
		Name: "full",
		Levels: []LevelSpec{
			{Name: "watch", Trigger: "price-above", PriceThreshold: 0.15,
				Strategy: StrategySpec{Type: "shed", Fraction: 0.05, OpCost: 0.01}},
			{Name: "stress", Trigger: "grid-stress",
				Strategy: StrategySpec{Type: "shift", Fraction: 0.2}},
			{Name: "guard", Trigger: "own-load-above", PowerBudgetKW: 11000,
				Strategy: StrategySpec{Type: "cap", CapKW: 11000, OpCost: 0.1}},
			{Name: "emergency", Trigger: "emergency-declared",
				Strategy: StrategySpec{Type: "gen", CapacityKW: 3000, FuelCost: 0.25}},
			{Name: "battery", Trigger: "emergency-declared",
				Strategy: StrategySpec{Type: "storage", CapacityKWh: 4000,
					MaxChargeKW: 1000, MaxDischargeKW: 2000, CycleCost: 0.05}},
		},
	}
}

func TestPlanSpecBuild(t *testing.T) {
	// Duplicate level trigger is fine; duplicate names are not — so
	// rename the fifth level check by building the valid spec.
	spec := fullPlanSpec()
	plan, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Levels) != 5 {
		t.Fatalf("levels = %d", len(plan.Levels))
	}
	if plan.Levels[0].Trigger.Kind != PriceAbove || plan.Levels[0].Trigger.PriceThreshold != 0.15 {
		t.Errorf("level 0 trigger = %+v", plan.Levels[0].Trigger)
	}
	if plan.Levels[2].Trigger.PowerBudget != 11000 {
		t.Errorf("level 2 budget = %v", plan.Levels[2].Trigger.PowerBudget)
	}
	names := []string{"shed", "shift", "power-cap", "onsite-gen", "storage"}
	for i, want := range names {
		if !strings.Contains(plan.Levels[i].Strategy.Name(), want) {
			t.Errorf("level %d strategy = %q, want %q", i, plan.Levels[i].Strategy.Name(), want)
		}
	}
}

func TestPlanSpecBuildErrors(t *testing.T) {
	cases := []*PlanSpec{
		{},
		{Name: "x"},
		{Name: "x", Levels: []LevelSpec{{Name: "a", Trigger: "bogus",
			Strategy: StrategySpec{Type: "shed", Fraction: 0.1}}}},
		{Name: "x", Levels: []LevelSpec{{Name: "a", Trigger: "grid-stress",
			Strategy: StrategySpec{Type: "bogus"}}}},
		{Name: "x", Levels: []LevelSpec{{Name: "a", Trigger: "price-above",
			Strategy: StrategySpec{Type: "shed", Fraction: 0.1}}}}, // zero threshold fails validation
	}
	for i, ps := range cases {
		if _, err := ps.Build(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestStrategySpecDefaults(t *testing.T) {
	shift, err := (StrategySpec{Type: "shift", Fraction: 0.2}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(shift.Name(), "4h0m0s") {
		t.Errorf("default recovery span missing: %q", shift.Name())
	}
	st, err := (StrategySpec{Type: "storage", CapacityKWh: 1000, MaxChargeKW: 100, MaxDischargeKW: 200}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if st.Name() == "" {
		t.Error("storage strategy should name")
	}
}

func TestPlanSpecJSONRoundTrip(t *testing.T) {
	data, err := EncodePlanSpec(fullPlanSpec())
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParsePlanSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "full" || len(back.Levels) != 5 {
		t.Errorf("round trip = %+v", back)
	}
	if _, err := ParsePlanSpec([]byte("{nope")); err == nil {
		t.Error("bad JSON should fail")
	}
}
