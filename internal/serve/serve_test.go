package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/contract"
	"repro/internal/hpc"
	"repro/internal/timeseries"
	"repro/internal/units"
)

// quickstartSpec is the survey's modal contract shape (examples/
// quickstart): fixed tariff + 3-peak demand charge + upper powerband.
func quickstartSpec() *contract.Spec {
	return &contract.Spec{
		Name:          "quickstart-site",
		Tariffs:       []contract.TariffSpec{{Type: "fixed", Rate: 0.085}},
		DemandCharges: []contract.DemandChargeSpec{{PricePerKW: 12, Method: "n-peak-average", NPeaks: 3}},
		Powerbands:    []contract.PowerbandSpec{{UpperKW: 18000, OverPenalty: 0.40}},
	}
}

// kitchenSinkSpec exercises every spec-expressible component kind at
// once: all four tariff types, all three demand-charge methods' worth
// of variety, a two-sided powerband, an emergency obligation and fees.
func kitchenSinkSpec() *contract.Spec {
	return &contract.Spec{
		Name: "kitchen-sink-service",
		Tariffs: []contract.TariffSpec{
			{Type: "tou", DayRate: 0.02, NightRate: 0.005, SummerDayRate: 0.04, DayFrom: 8, DayTo: 20},
			{Type: "dynamic", Multiplier: 1.1, Adder: 0.012},
			{Type: "fixed", Rate: 0.05},
			{Type: "cpp", Rate: 0.03, CriticalRate: 0.5, MaxCriticalEvents: 3},
		},
		DemandCharges: []contract.DemandChargeSpec{
			{PricePerKW: 11, Method: "single-peak"},
			{PricePerKW: 4, Method: "ratchet", RatchetFraction: 0.8},
		},
		Powerbands: []contract.PowerbandSpec{
			{LowerKW: 6000, UpperKW: 19000, UnderPenalty: 0.2, OverPenalty: 0.6},
		},
		Emergencies: []contract.EmergencySpec{
			{Name: "grid-emergency", CapKW: 6000, NoticeMinutes: 30, Penalty: 1.5},
		},
		Fees: []contract.FeeSpec{
			{Name: "metering", Amount: 500},
			{Name: "grid levy", Amount: 1250},
		},
	}
}

func specJSON(t *testing.T, s *contract.Spec) json.RawMessage {
	t.Helper()
	data, err := contract.EncodeSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func namedLoad(t *testing.T, name string) *timeseries.PowerSeries {
	t.Helper()
	load, err := hpc.SyntheticFacilityLoad(NamedProfiles()[name])
	if err != nil {
		t.Fatal(err)
	}
	return load
}

// referenceFeed reproduces the server's flat feed construction so
// in-process bills use the identical dynamic-tariff prices.
func referenceFeed(load *timeseries.PowerSeries, rate float64) *timeseries.PriceSeries {
	n := int(load.End().Sub(load.Start())/time.Hour) + 1
	return timeseries.ConstantPrice(load.Start(), time.Hour, n, units.EnergyPrice(rate))
}

func postBill(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// postBillAsync fires a request from a background goroutine, where
// t.Fatal is off-limits; callers only care that the request parks in
// billHook, not about its response.
func postBillAsync(ts *httptest.Server, path string, body any) {
	data, _ := json.Marshal(body)
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(data))
	if err == nil {
		resp.Body.Close()
	}
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestBillEndpointMatchesInProcess is the end-to-end acceptance check:
// POST /v1/bill must return byte-identical JSON to the in-process
// contract.ComputeBill for the quickstart and kitchen-sink contracts.
func TestBillEndpointMatchesInProcess(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	events := []EventSpec{{Start: time.Date(2016, time.March, 10, 12, 0, 0, 0, time.UTC), DurationMinutes: 120}}
	cases := []struct {
		name    string
		spec    *contract.Spec
		profile string
		input   *InputSpec
	}{
		{"quickstart", quickstartSpec(), "quickstart-month", nil},
		{"kitchen-sink", kitchenSinkSpec(), "peaky-month",
			&InputSpec{HistoricalPeakKW: 21000, Events: events}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postBill(t, ts, "/v1/bill", BillRequest{
				Contract: specJSON(t, tc.spec),
				Load:     LoadSpec{Profile: tc.profile},
				Input:    tc.input,
			})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}

			// The same computation in-process.
			load := namedLoad(t, tc.profile)
			c, err := tc.spec.Build(contract.BuildContext{Feed: referenceFeed(load, defaultFlatFeedRate)})
			if err != nil {
				t.Fatal(err)
			}
			in := resolveInput(tc.input)
			bill, err := contract.ComputeBill(c, load, in)
			if err != nil {
				t.Fatal(err)
			}
			want, err := bill.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(body, want) {
				t.Errorf("served bill differs from in-process bill:\n%s\nvs\n%s", body, want)
			}
		})
	}
}

// TestBillEndpointMonthly checks ?monthly=1 routes through the monthly
// evaluator and each month's total matches the in-process path down to
// the JSON token.
func TestBillEndpointMonthly(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := quickstartSpec()
	resp, body := postBill(t, ts, "/v1/bill?monthly=1", BillRequest{
		Contract: specJSON(t, spec),
		Load:     LoadSpec{Profile: "year-in-life"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Contract string `json:"contract"`
		Months   []struct {
			Total json.Number `json:"total"`
		} `json:"months"`
		GrandTotal float64 `json:"grand_total"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad monthly response: %v\n%s", err, body)
	}

	load := namedLoad(t, "year-in-life")
	c, err := spec.Build(contract.BuildContext{})
	if err != nil {
		t.Fatal(err)
	}
	bills, err := contract.BillMonths(c, load, contract.BillingInput{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Months) != len(bills) || len(bills) != 12 {
		t.Fatalf("%d served months, %d in-process, want 12", len(out.Months), len(bills))
	}
	for i, b := range bills {
		// Compare the literal JSON token, not a parsed float: the
		// served number must be byte-identical to what Bill.JSON emits.
		var one struct {
			Total json.Number `json:"total"`
		}
		data, err := b.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(data, &one); err != nil {
			t.Fatal(err)
		}
		if out.Months[i].Total != one.Total {
			t.Errorf("month %d: served total %s != in-process %s", i, out.Months[i].Total, one.Total)
		}
	}
	if want := contract.TotalOf(bills).Float(); out.GrandTotal != want {
		t.Errorf("grand total %v != %v", out.GrandTotal, want)
	}
}

// TestEngineCacheReuse proves compile-once-bill-many: a second request
// with the same spec — even formatted differently — hits the cache and
// does not trigger a second Build.
func TestEngineCacheReuse(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := BillRequest{
		Contract: specJSON(t, quickstartSpec()),
		Load:     LoadSpec{Profile: "quickstart-month"},
	}
	if resp, body := postBill(t, ts, "/v1/bill", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d %s", resp.StatusCode, body)
	}
	if st := s.cache.stats(); st.misses != 1 || st.compiles != 1 || st.hits != 0 {
		t.Fatalf("after first request: %+v", st)
	}

	// Re-send with cosmetically different spec JSON: compact instead of
	// indented, so the raw bytes differ but the canonical hash agrees.
	compact := &bytes.Buffer{}
	if err := json.Compact(compact, req.Contract); err != nil {
		t.Fatal(err)
	}
	req.Contract = compact.Bytes()
	if resp, body := postBill(t, ts, "/v1/bill", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("second request: %d %s", resp.StatusCode, body)
	}
	st := s.cache.stats()
	if st.hits != 1 || st.compiles != 1 {
		t.Errorf("second request must be a cache hit with no new compile: %+v", st)
	}

	// The metrics endpoint exposes the counters.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"scserved_engine_cache_hits_total 1",
		"scserved_engine_cache_misses_total 1",
		"scserved_engine_compiles_total 1",
		`scserved_requests_total{path="/v1/bill",code="200"} 2`,
		"scserved_request_seconds_bucket",
		"scserved_in_flight 0",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestCacheKeySeparatesFeeds pins the cache-keying subtlety: the same
// dynamic-tariff spec against a different feed is a different engine,
// while feed changes do not fragment cache entries of feed-independent
// specs.
func TestCacheKeySeparatesFeeds(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	dynamic := &contract.Spec{
		Name:    "dynamic-site",
		Tariffs: []contract.TariffSpec{{Type: "dynamic", Multiplier: 1.0}},
	}
	for _, rate := range []float64{0.045, 0.09} {
		resp, body := postBill(t, ts, "/v1/bill", BillRequest{
			Contract: specJSON(t, dynamic),
			Load:     LoadSpec{Profile: "quickstart-month"},
			Feed:     &FeedSpec{FlatRatePerKWh: rate},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("rate %v: %d %s", rate, resp.StatusCode, body)
		}
	}
	if st := s.cache.stats(); st.compiles != 2 {
		t.Errorf("two feeds over a dynamic spec must compile twice, got %+v", st)
	}

	// A feed-independent spec ignores the feed entirely.
	for _, rate := range []float64{0.045, 0.09} {
		resp, body := postBill(t, ts, "/v1/bill", BillRequest{
			Contract: specJSON(t, quickstartSpec()),
			Load:     LoadSpec{Profile: "quickstart-month"},
			Feed:     &FeedSpec{FlatRatePerKWh: rate},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("rate %v: %d %s", rate, resp.StatusCode, body)
		}
	}
	if st := s.cache.stats(); st.compiles != 3 {
		t.Errorf("fixed spec must share one engine across feeds, got %+v", st)
	}
}

// TestBackpressureSheds429 saturates the single evaluation slot with no
// queue: the second request must be shed immediately with 429 and a
// Retry-After hint.
func TestBackpressureSheds429(t *testing.T) {
	s := NewServer(Config{MaxConcurrent: 1, QueueDepth: -1})
	release := make(chan struct{})
	s.billHook = func(ctx context.Context) {
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := BillRequest{
		Contract: specJSON(t, quickstartSpec()),
		Load:     LoadSpec{Profile: "quickstart-month"},
	}
	firstDone := make(chan int, 1)
	go func() {
		resp, _ := postBill(t, ts, "/v1/bill", req)
		firstDone <- resp.StatusCode
	}()
	waitUntil(t, "first request to hold the slot", func() bool { return s.limiter.active() == 1 })

	resp, body := postBill(t, ts, "/v1/bill", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server must shed with 429, got %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 must carry Retry-After")
	}
	if s.metrics.shed.Load() != 1 {
		t.Errorf("shed counter = %d, want 1", s.metrics.shed.Load())
	}

	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Errorf("in-flight request must complete normally, got %d", code)
	}
}

// TestQueueWaitHonorsDeadline: a queued request whose deadline expires
// before a slot frees up gets 504, not an indefinite hang.
func TestQueueWaitHonorsDeadline(t *testing.T) {
	s := NewServer(Config{MaxConcurrent: 1, QueueDepth: 1, RequestTimeout: 80 * time.Millisecond})
	release := make(chan struct{})
	s.billHook = func(context.Context) { <-release }
	ts := httptest.NewServer(s.Handler())
	// Unblock the parked request before ts.Close waits on it.
	defer func() {
		close(release)
		ts.Close()
	}()

	req := BillRequest{
		Contract: specJSON(t, quickstartSpec()),
		Load:     LoadSpec{Profile: "quickstart-month"},
	}
	go postBillAsync(ts, "/v1/bill", req)
	waitUntil(t, "slot held", func() bool { return s.limiter.active() == 1 })

	resp, body := postBill(t, ts, "/v1/bill", req)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("queued past deadline must 504, got %d: %s", resp.StatusCode, body)
	}
}

// TestQueuedClientCancelIsNotA504: a client that hangs up while its
// request waits for a slot is a cancellation, not a server timeout —
// it must be counted as a client cancel and must not produce a 504.
func TestQueuedClientCancelIsNotA504(t *testing.T) {
	s := NewServer(Config{MaxConcurrent: 1, QueueDepth: 1, RequestTimeout: 30 * time.Second})
	release := make(chan struct{})
	s.billHook = func(context.Context) { <-release }
	ts := httptest.NewServer(s.Handler())
	defer func() {
		close(release)
		ts.Close()
	}()

	req := BillRequest{
		Contract: specJSON(t, quickstartSpec()),
		Load:     LoadSpec{Profile: "quickstart-month"},
	}
	go postBillAsync(ts, "/v1/bill", req)
	waitUntil(t, "slot held", func() bool { return s.limiter.active() == 1 })

	// The second request queues behind the parked bill, then its client
	// disconnects.
	ctx, cancel := context.WithCancel(context.Background())
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/bill", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	clientErr := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(hr)
		if err == nil {
			resp.Body.Close()
		}
		clientErr <- err
	}()
	waitUntil(t, "second request to queue", func() bool { return s.limiter.waiting() == 1 })

	cancel()
	if err := <-clientErr; err == nil {
		t.Fatal("canceled request must fail client-side")
	}
	waitUntil(t, "the cancel to be counted", func() bool {
		return s.metrics.clientCancels.Load() == 1
	})

	s.metrics.mu.Lock()
	got504 := s.metrics.requests["/v1/bill|504"]
	s.metrics.mu.Unlock()
	if got504 != 0 {
		t.Errorf("client cancel miscounted as %d 504(s)", got504)
	}
}

// TestRetryAfterUsesClassMix: the Retry-After estimate must price the
// backlog by what is pending, not by the overall historical mean — a
// queue of single bills is not slower because a 64-item batch ran an
// hour ago, and a queue of batches is not faster because single bills
// usually dominate.
func TestRetryAfterUsesClassMix(t *testing.T) {
	s := NewServer(Config{MaxConcurrent: 1, QueueDepth: 8})

	// Service history: palatial batches next to quick single bills.
	for i := 0; i < 3; i++ {
		s.metrics.observeGated(classBatch, 40*time.Second)
		s.metrics.observeGated(classSingle, 100*time.Millisecond)
	}

	// Backlog: one active + two waiting.
	if err := s.limiter.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.limiter.release()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = s.limiter.acquire(ctx)
		}()
	}
	defer wg.Wait()
	defer cancel()
	waitUntil(t, "the queue to fill", func() bool { return s.limiter.waiting() == 2 })

	// All-singles backlog: ceil(3 × 0.1 s / 1) = 1 s, not the ~60 s the
	// batch-inflated overall mean would suggest.
	s.metrics.class(classSingle).pending.Add(3)
	if got := s.retryAfterHint(); got != "1" {
		t.Errorf("all-singles backlog hint = %s, want 1", got)
	}
	s.metrics.class(classSingle).pending.Add(-3)

	// All-batches backlog: ceil(3 × 40 s / 1) clamps to the 60 s cap.
	s.metrics.class(classBatch).pending.Add(3)
	if got := s.retryAfterHint(); got != "60" {
		t.Errorf("all-batches backlog hint = %s, want 60", got)
	}
	s.metrics.class(classBatch).pending.Add(-3)
}

// TestEvaluationHonorsDeadline: once the request deadline passes,
// evaluation itself stops (the context is threaded into the engine) and
// the client gets 504.
func TestEvaluationHonorsDeadline(t *testing.T) {
	s := NewServer(Config{RequestTimeout: 30 * time.Millisecond})
	s.billHook = func(ctx context.Context) { <-ctx.Done() }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postBill(t, ts, "/v1/bill", BillRequest{
		Contract: specJSON(t, quickstartSpec()),
		Load:     LoadSpec{Profile: "quickstart-month"},
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired evaluation must 504, got %d: %s", resp.StatusCode, body)
	}
}

// TestShutdownDrains is the graceful-shutdown acceptance check: during
// Shutdown an in-flight bill completes, new requests are refused, and
// Shutdown returns once the last request drains.
func TestShutdownDrains(t *testing.T) {
	s := NewServer(Config{})
	release := make(chan struct{})
	s.billHook = func(context.Context) { <-release }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := BillRequest{
		Contract: specJSON(t, quickstartSpec()),
		Load:     LoadSpec{Profile: "quickstart-month"},
	}
	firstDone := make(chan int, 1)
	go func() {
		resp, _ := postBill(t, ts, "/v1/bill", req)
		firstDone <- resp.StatusCode
	}()
	waitUntil(t, "request in flight", func() bool { return s.Inflight() == 1 })

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	waitUntil(t, "drain to begin", s.Draining)

	// New work is refused while draining.
	resp, body := postBill(t, ts, "/v1/bill", req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server must refuse new work with 503, got %d: %s", resp.StatusCode, body)
	}
	// Probe split during drain: liveness stays 200 (the process is
	// healthy, just finishing up) while readiness flips to 503 so the
	// balancer stops routing here.
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || !strings.Contains(string(hbody), "draining") {
		t.Errorf("healthz during drain must stay 200 and report draining: %d %s", hresp.StatusCode, hbody)
	}
	rresp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rbody, _ := io.ReadAll(rresp.Body)
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(rbody), "draining") {
		t.Errorf("readyz during drain must 503: %d %s", rresp.StatusCode, rbody)
	}

	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned before the in-flight bill drained: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Errorf("in-flight bill must complete during drain, got %d", code)
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
}

// TestShutdownUnderQueuedLoad drills the drain semantics the single
// in-flight test above cannot: requests parked inside limiter.acquire
// are admitted work (beginRequest ran) and must complete with 200 once
// slots free up — never be 503'd mid-drain — while multiple concurrent
// and repeated Shutdown calls all return cleanly.
func TestShutdownUnderQueuedLoad(t *testing.T) {
	cases := []struct {
		name      string
		queued    int // requests parked in limiter.acquire behind the slot holder
		shutdowns int // concurrent Shutdown calls
	}{
		{"queued request completes", 1, 1},
		{"concurrent shutdowns", 1, 2},
		{"deep queue drains", 3, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewServer(Config{MaxConcurrent: 1, QueueDepth: 8, RequestTimeout: 30 * time.Second})
			release := make(chan struct{})
			s.billHook = func(context.Context) { <-release }
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()

			data, err := json.Marshal(BillRequest{
				Contract: specJSON(t, quickstartSpec()),
				Load:     LoadSpec{Profile: "quickstart-month"},
			})
			if err != nil {
				t.Fatal(err)
			}
			codes := make(chan int, 1+tc.queued)
			for i := 0; i < 1+tc.queued; i++ {
				go func() {
					resp, err := ts.Client().Post(ts.URL+"/v1/bill", "application/json", bytes.NewReader(data))
					if err != nil {
						codes <- 0
						return
					}
					resp.Body.Close()
					codes <- resp.StatusCode
				}()
			}
			waitUntil(t, "slot held and queue parked", func() bool {
				return s.limiter.active() == 1 && s.limiter.waiting() == tc.queued
			})

			shutdownDone := make(chan error, tc.shutdowns)
			for i := 0; i < tc.shutdowns; i++ {
				go func() {
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					defer cancel()
					shutdownDone <- s.Shutdown(ctx)
				}()
			}
			waitUntil(t, "drain to begin", s.Draining)

			// Fresh work is refused while the queue drains.
			resp, body := postBill(t, ts, "/v1/bill", BillRequest{
				Contract: specJSON(t, quickstartSpec()),
				Load:     LoadSpec{Profile: "quickstart-month"},
			})
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("draining server must 503 new work, got %d: %s", resp.StatusCode, body)
			}

			// No Shutdown may return while admitted requests are parked.
			select {
			case err := <-shutdownDone:
				t.Fatalf("Shutdown returned with requests still parked: %v", err)
			case <-time.After(50 * time.Millisecond):
			}

			close(release)
			for i := 0; i < 1+tc.queued; i++ {
				if code := <-codes; code != http.StatusOK {
					t.Errorf("admitted request %d finished %d, want 200 (queued work must drain, not 503)", i, code)
				}
			}
			for i := 0; i < tc.shutdowns; i++ {
				if err := <-shutdownDone; err != nil {
					t.Errorf("Shutdown %d: %v", i, err)
				}
			}

			// A late Shutdown on a drained server returns immediately.
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			if err := s.Shutdown(ctx); err != nil {
				t.Errorf("repeat Shutdown after drain: %v", err)
			}
		})
	}
}

// TestShutdownDeadline: Shutdown gives up with the context error when a
// request refuses to drain in time.
func TestShutdownDeadline(t *testing.T) {
	s := NewServer(Config{})
	release := make(chan struct{})
	s.billHook = func(context.Context) { <-release }
	ts := httptest.NewServer(s.Handler())
	defer func() {
		close(release)
		ts.Close()
	}()

	go postBillAsync(ts, "/v1/bill", BillRequest{
		Contract: specJSON(t, quickstartSpec()),
		Load:     LoadSpec{Profile: "quickstart-month"},
	})
	waitUntil(t, "request in flight", func() bool { return s.Inflight() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Errorf("Shutdown past deadline = %v, want DeadlineExceeded", err)
	}
}

func TestSurveyEndpoints(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d %s", path, resp.StatusCode, body)
		}
		return body
	}

	var roster []struct {
		Name, Country, Region string
	}
	if err := json.Unmarshal(get("/v1/survey/roster"), &roster); err != nil {
		t.Fatal(err)
	}
	if len(roster) != 10 || !strings.Contains(roster[0].Name, "Medium-range Weather") {
		t.Errorf("roster: %+v", roster)
	}

	var records []struct {
		ID         int      `json:"id"`
		Components []string `json:"components"`
		RNP        string   `json:"rnp"`
	}
	if err := json.Unmarshal(get("/v1/survey/records"), &records); err != nil {
		t.Fatal(err)
	}
	if len(records) != 10 || records[0].ID != 1 || records[0].RNP != "External" {
		t.Errorf("records: %+v", records)
	}
	if want := []string{"demand-charge", "fixed-tariff", "time-of-use-tariff"}; fmt.Sprint(records[0].Components) != fmt.Sprint(want) {
		t.Errorf("site 1 components = %v, want %v", records[0].Components, want)
	}

	var typ struct {
		Figure1 struct {
			Title    string `json:"title"`
			Children []any  `json:"children"`
		} `json:"figure1"`
		MatrixCounts  map[string]int `json:"matrix_counts"`
		RNP           map[string]int `json:"rnp"`
		Sites         int            `json:"sites"`
		Discrepancies []any          `json:"discrepancies"`
	}
	if err := json.Unmarshal(get("/v1/survey/typology"), &typ); err != nil {
		t.Fatal(err)
	}
	if typ.Figure1.Title != "SC electricity service contract" || len(typ.Figure1.Children) != 3 {
		t.Errorf("figure1: %+v", typ.Figure1)
	}
	if typ.Sites != 10 || typ.MatrixCounts["fixed-tariff"] != 7 || typ.RNP["Internal"] != 6 {
		t.Errorf("counts: %+v", typ)
	}
	if len(typ.Discrepancies) != 4 {
		t.Errorf("want the 4 text/matrix discrepancies, got %d", len(typ.Discrepancies))
	}
}

func TestAdviseEndpoint(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cheap := &contract.Spec{Name: "flat-cheap",
		Tariffs: []contract.TariffSpec{{Type: "fixed", Rate: 0.05}}}
	pricey := &contract.Spec{Name: "flat-pricey",
		Tariffs: []contract.TariffSpec{{Type: "fixed", Rate: 0.12}}}

	resp, body := postBill(t, ts, "/v1/advise", AdviseRequest{
		Current:     "flat-pricey",
		Candidates:  []AdviseCandidate{{Contract: specJSON(t, cheap)}, {Contract: specJSON(t, pricey)}},
		Load:        LoadSpec{Profile: "quickstart-month"},
		Materiality: 1000,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("advise: %d %s", resp.StatusCode, body)
	}
	var out struct {
		Ranking []struct {
			Name   string  `json:"name"`
			Annual float64 `json:"annual"`
		} `json:"ranking"`
		Best              string `json:"best"`
		ShouldRenegotiate bool   `json:"should_renegotiate"`
		Advice            string `json:"advice"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Best != "flat-cheap" || !out.ShouldRenegotiate {
		t.Errorf("advice: %+v", out)
	}
	if len(out.Ranking) != 2 || out.Ranking[0].Annual >= out.Ranking[1].Annual {
		t.Errorf("ranking must be cheapest-first: %+v", out.Ranking)
	}
	if !strings.Contains(out.Advice, "renegotiate") {
		t.Errorf("advice text: %q", out.Advice)
	}

	// Both candidates' engines are now cached: a bill for the cheap
	// structure is a hit.
	resp, body = postBill(t, ts, "/v1/bill", BillRequest{
		Contract: specJSON(t, cheap), Load: LoadSpec{Profile: "quickstart-month"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bill after advise: %d %s", resp.StatusCode, body)
	}
	if st := s.cache.stats(); st.hits != 1 || st.compiles != 2 {
		t.Errorf("advise candidates must share the engine cache: %+v", st)
	}
}

func TestBadRequests(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		req  BillRequest
	}{
		{"missing contract", BillRequest{Load: LoadSpec{Profile: "quickstart-month"}}},
		{"no load source", BillRequest{Contract: specJSON(t, quickstartSpec())}},
		{"two load sources", BillRequest{Contract: specJSON(t, quickstartSpec()),
			Load: LoadSpec{Profile: "quickstart-month", CSV: "x"}}},
		{"unknown profile", BillRequest{Contract: specJSON(t, quickstartSpec()),
			Load: LoadSpec{Profile: "nope"}}},
		{"bad contract", BillRequest{Contract: json.RawMessage(`{"name":"x","tariffs":[{"type":"warp"}]}`),
			Load: LoadSpec{Profile: "quickstart-month"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postBill(t, ts, "/v1/bill", tc.req)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("want 400, got %d: %s", resp.StatusCode, body)
			}
			if !strings.Contains(string(body), "error") {
				t.Errorf("error body: %s", body)
			}
		})
	}

	// Wrong method on a registered path.
	resp, err := ts.Client().Get(ts.URL + "/v1/bill")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/bill = %d, want 405", resp.StatusCode)
	}
}

// TestInlineLoadSources bills the same series submitted as inline CSV
// and as inline JSON samples; both must produce identical bills.
func TestInlineLoadSources(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	load := namedLoad(t, "quickstart-month")
	var csv strings.Builder
	if err := timeseries.WritePowerCSV(&csv, load); err != nil {
		t.Fatal(err)
	}
	kw := make([]float64, load.Len())
	for i := range kw {
		kw[i] = float64(load.At(i))
	}

	spec := specJSON(t, quickstartSpec())
	_, fromCSV := postBill(t, ts, "/v1/bill", BillRequest{
		Contract: spec,
		Load:     LoadSpec{CSV: csv.String()},
	})
	_, fromSeries := postBill(t, ts, "/v1/bill", BillRequest{
		Contract: spec,
		Load: LoadSpec{Series: &SeriesSpec{
			Start:           load.Start(),
			IntervalSeconds: int(load.Interval() / time.Second),
			KW:              kw,
		}},
	})
	if !bytes.Equal(fromCSV, fromSeries) {
		t.Errorf("CSV and series submissions disagree:\n%s\nvs\n%s", fromCSV, fromSeries)
	}
	var bill struct {
		Total float64 `json:"total"`
	}
	if err := json.Unmarshal(fromCSV, &bill); err != nil {
		t.Fatalf("bad bill: %v\n%s", err, fromCSV)
	}
	if bill.Total <= 0 {
		t.Errorf("total %v", bill.Total)
	}
}
