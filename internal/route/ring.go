package route

// Rendezvous (highest-random-weight) hashing assigns each routing key
// a full preference order over the backend set: every (backend, key)
// pair gets a pseudo-random score and backends are ranked by score.
// The property that matters for the fleet is minimal movement — when a
// backend joins or leaves, only the keys whose top-ranked backend
// changed move (in expectation K/N of them), so the per-backend engine
// caches stay hot across membership churn. Unlike a ring of virtual
// nodes there is no placement table to rebuild and no tuning knob.

import (
	"hash/fnv"
	"sort"
)

// score is the rendezvous weight of backend for key: fnv64a over the
// backend name, a NUL separator, and the key, pushed through a 64-bit
// avalanche finalizer. Raw fnv sums of near-identical strings are
// strongly correlated, which skews the ownership split; the mix step
// (Murmur3's fmix64) restores an even spread for any key shape.
func score(backend, key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(backend))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(key))
	return mix(h.Sum64())
}

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Rank returns the backends ordered by descending rendezvous score for
// key — the key's owner first, then its failover order. Ties (which
// need a 64-bit hash collision) break by name so the order is total
// and deterministic. The input slice is not modified.
func Rank(backends []string, key string) []string {
	type scored struct {
		name string
		s    uint64
	}
	ss := make([]scored, len(backends))
	for i, b := range backends {
		ss[i] = scored{b, score(b, key)}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].s != ss[j].s {
			return ss[i].s > ss[j].s
		}
		return ss[i].name < ss[j].name
	})
	out := make([]string, len(ss))
	for i, sc := range ss {
		out[i] = sc.name
	}
	return out
}

// Owner returns the top-ranked backend for key, "" when the backend
// set is empty.
func Owner(backends []string, key string) string {
	var best string
	var bestScore uint64
	for _, b := range backends {
		s := score(b, key)
		if best == "" || s > bestScore || (s == bestScore && b < best) {
			best, bestScore = b, s
		}
	}
	return best
}
