// Package units defines the physical and monetary quantity types used
// throughout the library: electrical power (kW), electrical energy (kWh),
// money (fixed-point micro-units), prices per energy and per power, and
// ramp rates.
//
// Power and energy are float64-backed named types expressed in the unit the
// electricity sector bills in (kilowatts and kilowatt-hours), with
// constructors for the multiples that appear in supercomputing contexts
// (MW feeders, GWh annual consumption). Money is an int64 number of
// micro-units of an unspecified currency so that billing arithmetic is
// exact: one Money unit is 1e-6 of a currency unit (dollar, euro, franc).
//
// The paper this library reproduces (Clausen et al., ICPP 2019) discusses
// facility loads between 40 kW and 60 MW and annual consumptions in the
// hundreds of GWh; all of these are representable exactly enough in these
// types that round-trip formatting is stable.
package units

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Power is an electrical power in kilowatts (kW). Negative power denotes
// export to the grid (on-site generation exceeding consumption).
type Power float64

// Power constructors for common multiples.
const (
	Watt     Power = 0.001
	Kilowatt Power = 1
	Megawatt Power = 1000
	Gigawatt Power = 1e6
)

// KW returns p expressed in kilowatts.
func (p Power) KW() float64 { return float64(p) }

// MW returns p expressed in megawatts.
func (p Power) MW() float64 { return float64(p) / 1000 }

// W returns p expressed in watts.
func (p Power) W() float64 { return float64(p) * 1000 }

// IsExport reports whether the power value denotes net export to the grid.
func (p Power) IsExport() bool { return p < 0 }

// Clamp limits p to the inclusive range [lo, hi].
func (p Power) Clamp(lo, hi Power) Power {
	if p < lo {
		return lo
	}
	if p > hi {
		return hi
	}
	return p
}

// String formats the power with an auto-selected SI multiple, e.g. "12.50 MW".
func (p Power) String() string {
	abs := math.Abs(float64(p))
	switch {
	case abs >= 1e6:
		return fmt.Sprintf("%.2f GW", float64(p)/1e6)
	case abs >= 1000:
		return fmt.Sprintf("%.2f MW", float64(p)/1000)
	case abs >= 1:
		return fmt.Sprintf("%.2f kW", float64(p))
	default:
		return fmt.Sprintf("%.1f W", float64(p)*1000)
	}
}

// Energy is an electrical energy in kilowatt-hours (kWh).
type Energy float64

// Energy constructors for common multiples.
const (
	WattHour     Energy = 0.001
	KilowattHour Energy = 1
	MegawattHour Energy = 1000
	GigawattHour Energy = 1e6
)

// KWh returns e expressed in kilowatt-hours.
func (e Energy) KWh() float64 { return float64(e) }

// MWh returns e expressed in megawatt-hours.
func (e Energy) MWh() float64 { return float64(e) / 1000 }

// GWh returns e expressed in gigawatt-hours.
func (e Energy) GWh() float64 { return float64(e) / 1e6 }

// String formats the energy with an auto-selected SI multiple.
func (e Energy) String() string {
	abs := math.Abs(float64(e))
	switch {
	case abs >= 1e6:
		return fmt.Sprintf("%.2f GWh", float64(e)/1e6)
	case abs >= 1000:
		return fmt.Sprintf("%.2f MWh", float64(e)/1000)
	case abs >= 1:
		return fmt.Sprintf("%.2f kWh", float64(e))
	default:
		return fmt.Sprintf("%.1f Wh", float64(e)*1000)
	}
}

// Over returns the energy consumed by drawing power p for duration d.
func (p Power) Over(d time.Duration) Energy {
	return Energy(float64(p) * d.Hours())
}

// Average returns the constant power that would produce energy e over
// duration d. It panics if d is not positive, as an average power over a
// non-positive interval is meaningless.
func (e Energy) Average(d time.Duration) Power {
	if d <= 0 {
		panic("units: Energy.Average requires a positive duration")
	}
	return Power(float64(e) / d.Hours())
}

// RampRate is a rate of change of power, in kW per minute. Supercomputing
// facilities are notable for very high ramp rates (the paper highlights
// "fast ramping variability" as a grid concern).
type RampRate float64

// KWPerMin returns r expressed in kW/min.
func (r RampRate) KWPerMin() float64 { return float64(r) }

// MWPerMin returns r expressed in MW/min.
func (r RampRate) MWPerMin() float64 { return float64(r) / 1000 }

// String formats the ramp rate.
func (r RampRate) String() string {
	if math.Abs(float64(r)) >= 1000 {
		return fmt.Sprintf("%.2f MW/min", float64(r)/1000)
	}
	return fmt.Sprintf("%.2f kW/min", float64(r))
}

// RampBetween returns the ramp rate implied by moving from power a to power
// b over duration d. It panics if d is not positive.
func RampBetween(a, b Power, d time.Duration) RampRate {
	if d <= 0 {
		panic("units: RampBetween requires a positive duration")
	}
	return RampRate((float64(b) - float64(a)) / d.Minutes())
}

// Money is an exact fixed-point amount of money in micro-currency-units
// (1e-6 of a dollar/euro/franc). Using an integer representation keeps
// billing arithmetic associative and free of float drift: itemized bill
// lines always sum exactly to their total.
type Money int64

// Micro is the smallest representable amount of money.
const Micro Money = 1

// Cents returns the Money value for a whole number of cents.
func Cents(c int64) Money { return Money(c * 10_000) }

// CurrencyUnits returns the Money value for a whole number of currency
// units (dollars, euros, ...).
func CurrencyUnits(u int64) Money { return Money(u * 1_000_000) }

// MoneyFromFloat converts a floating-point currency amount to Money,
// rounding half away from zero.
func MoneyFromFloat(v float64) Money {
	if v >= 0 {
		return Money(math.Floor(v*1e6 + 0.5))
	}
	return Money(math.Ceil(v*1e6 - 0.5))
}

// Float returns the amount as a floating-point number of currency units.
func (m Money) Float() float64 { return float64(m) / 1e6 }

// Neg returns -m.
func (m Money) Neg() Money { return -m }

// MulFloat scales m by a floating-point factor, rounding half away from zero.
func (m Money) MulFloat(f float64) Money {
	return MoneyFromFloat(m.Float() * f)
}

// String formats the amount with two decimals and a thousands separator,
// e.g. "1,234,567.89".
func (m Money) String() string {
	neg := m < 0
	v := int64(m)
	if neg {
		v = -v
	}
	units := v / 1_000_000
	frac := (v % 1_000_000) / 10_000 // cents, truncated
	s := groupThousands(units)
	out := fmt.Sprintf("%s.%02d", s, frac)
	if neg {
		return "-" + out
	}
	return out
}

func groupThousands(v int64) string {
	s := strconv.FormatInt(v, 10)
	if len(s) <= 3 {
		return s
	}
	var b strings.Builder
	pre := len(s) % 3
	if pre > 0 {
		b.WriteString(s[:pre])
	}
	for i := pre; i < len(s); i += 3 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s[i : i+3])
	}
	return b.String()
}

// EnergyPrice is a price per unit energy, in currency units per kWh
// (e.g. 0.085 means 8.5 cents/kWh).
type EnergyPrice float64

// PerKWh returns the price in currency units per kWh.
func (p EnergyPrice) PerKWh() float64 { return float64(p) }

// PerMWh returns the price in currency units per MWh.
func (p EnergyPrice) PerMWh() float64 { return float64(p) * 1000 }

// Cost returns the exact Money cost of energy e at price p.
func (p EnergyPrice) Cost(e Energy) Money {
	return MoneyFromFloat(float64(p) * float64(e))
}

// String formats the price.
func (p EnergyPrice) String() string {
	return fmt.Sprintf("%.4f/kWh", float64(p))
}

// DemandPrice is a price per unit of peak power, in currency units per kW
// per billing period (the canonical unit of a demand charge).
type DemandPrice float64

// PerKW returns the price in currency units per kW.
func (p DemandPrice) PerKW() float64 { return float64(p) }

// Cost returns the exact Money cost of billed demand d at price p.
func (p DemandPrice) Cost(d Power) Money {
	return MoneyFromFloat(float64(p) * float64(d))
}

// String formats the price.
func (p DemandPrice) String() string {
	return fmt.Sprintf("%.2f/kW", float64(p))
}

// ErrParse is returned by the Parse* functions when the input cannot be
// interpreted as a quantity of the requested kind.
var ErrParse = errors.New("units: cannot parse quantity")

// ParsePower parses strings like "12.5 MW", "950kW", "40 kW", "60MW",
// "700 W". The unit suffix is case-insensitive and the space optional.
func ParsePower(s string) (Power, error) {
	v, unit, err := splitQuantity(s)
	if err != nil {
		return 0, err
	}
	switch strings.ToLower(unit) {
	case "w":
		return Power(v / 1000), nil
	case "kw":
		return Power(v), nil
	case "mw":
		return Power(v * 1000), nil
	case "gw":
		return Power(v * 1e6), nil
	}
	return 0, fmt.Errorf("%w: unknown power unit %q in %q", ErrParse, unit, s)
}

// ParseEnergy parses strings like "1.2 GWh", "350MWh", "42 kWh".
func ParseEnergy(s string) (Energy, error) {
	v, unit, err := splitQuantity(s)
	if err != nil {
		return 0, err
	}
	switch strings.ToLower(unit) {
	case "wh":
		return Energy(v / 1000), nil
	case "kwh":
		return Energy(v), nil
	case "mwh":
		return Energy(v * 1000), nil
	case "gwh":
		return Energy(v * 1e6), nil
	}
	return 0, fmt.Errorf("%w: unknown energy unit %q in %q", ErrParse, unit, s)
}

func splitQuantity(s string) (float64, string, error) {
	s = strings.TrimSpace(s)
	i := strings.LastIndexFunc(s, func(r rune) bool {
		return (r >= '0' && r <= '9') || r == '.' || r == '-' || r == '+' || r == 'e' || r == 'E'
	})
	if i < 0 {
		return 0, "", fmt.Errorf("%w: no numeric part in %q", ErrParse, s)
	}
	num := strings.TrimSpace(s[:i+1])
	unit := strings.TrimSpace(s[i+1:])
	if unit == "" {
		return 0, "", fmt.Errorf("%w: missing unit in %q", ErrParse, s)
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, "", fmt.Errorf("%w: bad number %q in %q", ErrParse, num, s)
	}
	return v, unit, nil
}

// SumMoney returns the exact sum of the given amounts.
func SumMoney(amounts ...Money) Money {
	var total Money
	for _, a := range amounts {
		total += a
	}
	return total
}

// MaxPower returns the larger of a and b.
func MaxPower(a, b Power) Power {
	if a > b {
		return a
	}
	return b
}

// MinPower returns the smaller of a and b.
func MinPower(a, b Power) Power {
	if a < b {
		return a
	}
	return b
}
