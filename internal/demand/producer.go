package demand

// Billing-engine glue: demand charges and powerbands implement
// billing.LineItemProducer directly, so the kW branch rides the
// engine's single pass instead of re-scanning the load per component.
//
// The accumulators replicate BilledDemand and Violations/Cost
// arithmetic exactly: the N-peak tracker keeps the same (power desc,
// earlier-index-wins) order TopN sorts by and sums the clamped peaks in
// that order; the excursion tracker accumulates excess energy per
// contiguous run and rounds once per excursion, as Cost does.

import (
	"fmt"
	"time"

	"repro/internal/billing"
	"repro/internal/units"
)

// Validate checks the charge's parameters (the NewCharge invariants).
func (c *Charge) Validate() error {
	_, err := NewCharge(c.Price, c.Method, c.NPeaks, c.RatchetFraction)
	return err
}

// BeginPeriod returns the charge's streaming accumulator. The billed
// demand derives from the running peak (single-peak, ratchet) or a
// bounded top-N tracker (N-peak average); the ratchet floor comes from
// the period context's historical peak.
func (c *Charge) BeginPeriod(ctx *billing.PeriodContext, _ time.Duration) billing.Accumulator {
	a := &chargeAcc{charge: c, historical: ctx.HistoricalPeak}
	if c.Method == NPeakAverage {
		n := c.NPeaks
		if n <= 0 {
			n = 3
		}
		a.top = make([]peakEntry, 0, n)
		a.n = n
	}
	return a
}

// SpanFamily attributes observation cost to the demand-charge family
// (the kW branch of the typology) in span traces.
func (c *Charge) SpanFamily() string { return "demand" }

var _ billing.LineItemProducer = (*Charge)(nil)

type peakEntry struct {
	power units.Power
	index int
}

type chargeAcc struct {
	charge     *Charge
	historical units.Power

	seen bool
	peak units.Power

	// top holds up to n entries ordered by (power desc, index asc) —
	// the exact order TopN sorts the whole series by.
	top []peakEntry
	n   int
}

func (a *chargeAcc) Observe(s billing.Sample) {
	if !a.seen || s.Power > a.peak {
		a.peak = s.Power
		a.seen = true
	}
	if a.n == 0 {
		return
	}
	if len(a.top) == a.n {
		// Full: the new sample displaces the weakest entry only when it
		// strictly beats it (equal power loses — the earlier index wins,
		// matching TopN's tie-break).
		if s.Power <= a.top[a.n-1].power {
			return
		}
		a.top = a.top[:a.n-1]
	}
	// Insert keeping (power desc, index asc): among equal powers the new
	// sample's larger index places it last.
	at := len(a.top)
	for at > 0 && a.top[at-1].power < s.Power {
		at--
	}
	a.top = append(a.top, peakEntry{})
	copy(a.top[at+1:], a.top[at:])
	a.top[at] = peakEntry{power: s.Power, index: s.Index}
}

// billed replicates Charge.BilledDemand on the accumulated state.
func (a *chargeAcc) billed() units.Power {
	if !a.seen {
		return 0
	}
	peak := a.peak
	if peak < 0 {
		peak = 0 // net export does not earn negative demand charges
	}
	switch a.charge.Method {
	case SinglePeak:
		return peak
	case NPeakAverage:
		var sum float64
		for _, e := range a.top {
			v := float64(e.power)
			if v < 0 {
				v = 0
			}
			sum += v
		}
		return units.Power(sum / float64(len(a.top)))
	case Ratchet:
		floor := units.Power(float64(a.historical) * a.charge.RatchetFraction)
		return units.MaxPower(peak, floor)
	default:
		return peak
	}
}

func (a *chargeAcc) Lines() []billing.LineItem {
	billed := a.billed()
	return []billing.LineItem{{
		Class:       billing.ClassDemandCharge,
		Description: a.charge.Describe(),
		Quantity:    billed.String(),
		Amount:      a.charge.Price.Cost(billed),
	}}
}

// Validate checks the powerband's limits and penalties (the
// NewPowerband / NewUpperPowerband invariants).
func (b *Powerband) Validate() error {
	var err error
	if b.HasLower {
		_, err = NewPowerband(b.Lower, b.Upper, b.UnderPenalty, b.OverPenalty)
	} else {
		_, err = NewUpperPowerband(b.Upper, b.OverPenalty)
	}
	return err
}

// BeginPeriod returns the powerband's streaming excursion tracker,
// which derives penalty cost and excursion count from one scan.
func (b *Powerband) BeginPeriod(_ *billing.PeriodContext, interval time.Duration) billing.Accumulator {
	return &bandAcc{band: b, h: interval.Hours()}
}

// SpanFamily attributes observation cost to the powerband family in
// span traces.
func (b *Powerband) SpanFamily() string { return "powerband" }

var _ billing.LineItemProducer = (*Powerband)(nil)

type bandAcc struct {
	band *Powerband
	h    float64

	// Current contiguous out-of-band run, mirroring Violations' state.
	inRun  bool
	above  bool
	excess units.Energy

	count int
	cost  units.Money
}

func (a *bandAcc) flush() {
	if !a.inRun {
		return
	}
	if a.above {
		a.cost += a.band.OverPenalty.Cost(a.excess)
	} else {
		a.cost += a.band.UnderPenalty.Cost(a.excess)
	}
	a.count++
	a.inRun = false
	a.excess = 0
}

func (a *bandAcc) Observe(s billing.Sample) {
	p := s.Power
	var above bool
	var excess units.Energy
	switch {
	case p > a.band.Upper:
		above = true
		excess = units.Energy(float64(p-a.band.Upper) * a.h)
	case a.band.HasLower && p < a.band.Lower:
		above = false
		excess = units.Energy(float64(a.band.Lower-p) * a.h)
	default:
		a.flush()
		return
	}
	if !a.inRun || a.above != above {
		a.flush()
		a.inRun = true
		a.above = above
	}
	a.excess += excess
}

func (a *bandAcc) Lines() []billing.LineItem {
	a.flush()
	return []billing.LineItem{{
		Class:       billing.ClassPowerband,
		Description: a.band.Describe(),
		Quantity:    fmt.Sprintf("%d excursions", a.count),
		Amount:      a.cost,
	}}
}
