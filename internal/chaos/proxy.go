package chaos

// Proxy is the fleet-level counterpart to Injector: a listener-level
// chaos proxy that sits between scroute and one scserved backend and
// misbehaves at the TCP layer, where gray failures actually live. The
// router's breaker sees a crashed backend easily — a connection refused
// is loud — but a browned-out one accepts connections and then answers
// slowly, partially, or never. Those are exactly the faults this proxy
// manufactures:
//
//	pass       forward bytes untouched (the healthy baseline)
//	blackhole  accept, read, never answer — the classic hung backend;
//	           only a per-try timeout ever sees this fault
//	reset      accept then RST immediately (SO_LINGER 0)
//	latency    delay the request path by a fixed + jittered amount per
//	           write, modeling a browned-out backend
//	trickle    answer at a slow-loris byte rate so time-to-first-byte
//	           looks fine while time-to-last-byte is unbounded
//	cut        close mid-response body after N bytes, exercising the
//	           relay's partial-response handling
//
// Faults switch at runtime (SetFault); switching closes every tracked
// connection so a keep-alive pool warmed under the old fault cannot
// bypass the new one. Jitter draws from a seeded PRNG, so a chaos run
// that finds a bug replays bit-for-bit from its seed.

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Fault modes understood by the proxy.
const (
	FaultPass      = "pass"
	FaultBlackhole = "blackhole"
	FaultReset     = "reset"
	FaultLatency   = "latency"
	FaultTrickle   = "trickle"
	FaultCut       = "cut"
)

// Fault describes one fault configuration. The zero value passes
// traffic untouched.
type Fault struct {
	// Mode is one of the Fault* constants; "" means pass.
	Mode string `json:"mode"`
	// Latency and Jitter apply in latency mode: each request-direction
	// write is delayed Latency + uniform[0, Jitter).
	Latency time.Duration `json:"latency"`
	Jitter  time.Duration `json:"jitter"`
	// BytesPerSec is the trickle mode's response byte rate; <= 0
	// selects 512 B/s.
	BytesPerSec int `json:"bytes_per_sec"`
	// CutAfterBytes is how much response body cut mode relays before
	// slamming the connection; <= 0 selects 64 bytes.
	CutAfterBytes int64 `json:"cut_after_bytes"`
}

func (f Fault) withDefaults() (Fault, error) {
	switch f.Mode {
	case "":
		f.Mode = FaultPass
	case FaultPass, FaultBlackhole, FaultReset, FaultLatency, FaultTrickle, FaultCut:
	default:
		return f, fmt.Errorf("chaos: unknown fault mode %q", f.Mode)
	}
	if f.Latency <= 0 {
		f.Latency = 50 * time.Millisecond
	}
	if f.BytesPerSec <= 0 {
		f.BytesPerSec = 512
	}
	if f.CutAfterBytes <= 0 {
		f.CutAfterBytes = 64
	}
	return f, nil
}

// ProxyConfig configures one chaos proxy.
type ProxyConfig struct {
	// Name identifies the proxy on the scchaos admin API.
	Name string
	// Listen is the address to accept router connections on
	// (e.g. 127.0.0.1:9201); ":0" picks a free port.
	Listen string
	// Target is the backend address to forward to (host:port).
	Target string
	// Seed fixes the jitter schedule.
	Seed int64
}

// Proxy is a runtime-switchable TCP chaos proxy. Construct with
// NewProxy, stop with Close.
type Proxy struct {
	cfg ProxyConfig
	ln  net.Listener

	mu     sync.Mutex
	fault  Fault
	rng    *rand.Rand
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewProxy opens the listener and starts accepting. Traffic passes
// untouched until SetFault installs a fault.
func NewProxy(cfg ProxyConfig) (*Proxy, error) {
	if cfg.Target == "" {
		return nil, fmt.Errorf("chaos: proxy %q needs a target", cfg.Name)
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("chaos: proxy %q listen: %w", cfg.Name, err)
	}
	p := &Proxy{
		cfg:   cfg,
		ln:    ln,
		fault: Fault{Mode: FaultPass},
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		conns: make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Name returns the proxy's admin identity.
func (p *Proxy) Name() string { return p.cfg.Name }

// Addr returns the listen address (useful with ":0").
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Target returns the backend address this proxy forwards to.
func (p *Proxy) Target() string { return p.cfg.Target }

// Fault returns the currently installed fault.
func (p *Proxy) Fault() Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fault
}

// SetFault installs a new fault and severs every tracked connection,
// so a keep-alive pool warmed under the previous fault re-dials
// through the new one immediately.
func (p *Proxy) SetFault(f Fault) error {
	f, err := f.withDefaults()
	if err != nil {
		return err
	}
	p.mu.Lock()
	p.fault = f
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return nil
}

// Close stops accepting, severs every connection, and waits for the
// connection goroutines to drain.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			c.Close()
			return
		}
		p.conns[c] = struct{}{}
		fault := p.fault
		// Per-connection jitter source drawn under the lock so the
		// schedule is deterministic for a given seed and accept order.
		connSeed := p.rng.Int63()
		p.mu.Unlock()
		p.wg.Add(1)
		go p.handleConn(c, fault, connSeed)
	}
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// handleConn applies the fault that was installed when the connection
// arrived. SetFault severs live connections, so a stale fault never
// outlives a switch.
func (p *Proxy) handleConn(client net.Conn, fault Fault, seed int64) {
	defer p.wg.Done()
	defer p.untrack(client)
	defer client.Close()

	switch fault.Mode {
	case FaultBlackhole:
		// Swallow the request and never answer: the router's dial and
		// write succeed, and only a per-try timeout ends the wait.
		_, _ = io.Copy(io.Discard, client)
		return
	case FaultReset:
		abort(client)
		return
	}

	upstream, err := net.Dial("tcp", p.cfg.Target)
	if err != nil {
		return
	}
	defer upstream.Close()
	rng := rand.New(rand.NewSource(seed))

	var reqDst io.Writer = upstream
	if fault.Mode == FaultLatency {
		reqDst = &delayWriter{w: upstream, latency: fault.Latency, jitter: fault.Jitter, rng: rng}
	}

	// Both copiers are registered on p.wg: handleConn only waits for
	// the first direction to finish, so the loser can outlive this
	// frame and must still hold Close() open until it unblocks.
	done := make(chan struct{}, 2)
	p.wg.Add(2)
	go func() {
		defer p.wg.Done()
		_, _ = io.Copy(reqDst, client)
		// Half-close toward the backend so it sees EOF on the request
		// stream while the response direction keeps flowing.
		if tc, ok := upstream.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	go func() {
		defer p.wg.Done()
		switch fault.Mode {
		case FaultTrickle:
			trickle(client, upstream, fault.BytesPerSec)
		case FaultCut:
			if n, _ := io.CopyN(client, upstream, fault.CutAfterBytes); n == fault.CutAfterBytes {
				abort(client)
			}
		default:
			_, _ = io.Copy(client, upstream)
			if tc, ok := client.(*net.TCPConn); ok {
				_ = tc.CloseWrite()
			}
		}
		done <- struct{}{}
	}()
	// Either direction finishing ends the connection; the deferred
	// closes unblock the other copier.
	<-done
}

// abort closes a connection with SO_LINGER 0, turning the close into a
// TCP RST rather than an orderly FIN.
func abort(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	c.Close()
}

// delayWriter injects Latency + uniform[0, Jitter) before each write,
// modeling a browned-out path: every request chunk crawls.
type delayWriter struct {
	w       io.Writer
	latency time.Duration
	jitter  time.Duration
	rng     *rand.Rand
}

func (d *delayWriter) Write(b []byte) (int, error) {
	delay := d.latency
	if d.jitter > 0 {
		delay += time.Duration(d.rng.Int63n(int64(d.jitter)))
	}
	time.Sleep(delay)
	return d.w.Write(b)
}

// trickle relays src to dst in 256-byte chunks at roughly bytesPerSec,
// the slow-loris shape: bytes keep arriving, so idle timeouts never
// fire, but the body takes unboundedly long to finish.
func trickle(dst io.Writer, src io.Reader, bytesPerSec int) {
	const chunk = 256
	interval := time.Duration(float64(chunk) / float64(bytesPerSec) * float64(time.Second))
	buf := make([]byte, chunk)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			time.Sleep(interval)
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}
