package serve

import (
	"context"
	"testing"
)

// TestAcquireWinsSlotRace pins the select-race fix in limiter.acquire:
// when a slot is free at the same instant the context is done, the
// request must get the slot, not a timeout. With both channels ready,
// select picks a branch at random — without the final non-blocking
// grab this loop fails within a handful of iterations.
func TestAcquireWinsSlotRace(t *testing.T) {
	l := newLimiter(1, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // ctx.Done() is permanently ready; so is the free slot

	for i := 0; i < 500; i++ {
		if err := l.acquire(ctx); err != nil {
			t.Fatalf("iteration %d: acquire lost the race to a free slot: %v", i, err)
		}
		l.release()
	}
}

// TestParkedWaiterTakesSlotReleasedAtDeadline parks a waiter behind a
// held slot, then releases the slot and fires the waiter's deadline
// back to back: however the select wakes up, the waiter must come away
// holding the slot that was freed for it.
func TestParkedWaiterTakesSlotReleasedAtDeadline(t *testing.T) {
	l := newLimiter(1, 1)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- l.acquire(ctx) }()
	waitUntil(t, "the waiter to park", func() bool { return l.waiting() == 1 })

	l.release() // the slot frees...
	cancel()    // ...as the deadline fires
	if err := <-errCh; err != nil {
		t.Fatalf("parked waiter must take the freed slot, got %v", err)
	}
	l.release()

	if l.active() != 0 || l.waiting() != 0 {
		t.Errorf("limiter not drained: active=%d waiting=%d", l.active(), l.waiting())
	}
}
