// Near-miss fixtures: the compliant response-handling shapes the
// fleet path actually uses, each one mutation away from a positive.
// None may diagnose.
package neg

import (
	"encoding/json"
	"io"
	"net/http"
)

// The fetch shape: deferred Close after the nil check, body read by
// the parser. The deferred Close is exempt from the drain rule — the
// read happens after the defer statement.
func fetch(client *http.Client, req *http.Request) (map[string]any, error) {
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.CopyN(io.Discard, resp.Body, 512)
		return nil, io.ErrUnexpectedEOF
	}
	var out map[string]any
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// The poll shape: no early return on error, a resp != nil guard, and
// drain-before-close inside it.
func poll(client *http.Client, req *http.Request) bool {
	resp, err := client.Do(req)
	ok := err == nil && resp.StatusCode == http.StatusOK
	if resp != nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	return ok
}

// Drain then close on the straight line.
func drainClose(client *http.Client, req *http.Request) (int, error) {
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// Close on both branches of an if/else, each after a read.
func bothBranches(client *http.Client, req *http.Request, strict bool) error {
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	if strict {
		_, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		return rerr
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return nil
}

// Deferred literal that closes: covers all exits from here on.
func deferredLiteral(client *http.Client, req *http.Request) error {
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer func() { resp.Body.Close() }()
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

// Returning the response transfers the obligation to the caller.
func handoffReturn(client *http.Client, req *http.Request) (*http.Response, error) {
	resp, err := client.Do(req)
	return resp, err
}

// Passing the response to another function transfers the obligation.
func handoffArg(client *http.Client, req *http.Request) error {
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	return consume(resp)
}

func consume(resp *http.Response) error {
	defer resp.Body.Close()
	_, err := io.Copy(io.Discard, resp.Body)
	return err
}

// Storing the response in a struct transfers the obligation to the
// owner's lifecycle.
type attempt struct{ resp *http.Response }

func handoffField(at *attempt, client *http.Client, req *http.Request) {
	at.resp, _ = client.Do(req)
}

// A deliberate undrained close — the request was canceled and the
// connection is being torn down anyway — is blessed with a reason.
func blessedTeardown(client *http.Client, req *http.Request) {
	resp, err := client.Do(req)
	if err != nil {
		return
	}
	//lint:scvet-ignore respclose canceled request: body poisoned, connection torn down
	resp.Body.Close()
}
