package contingency

import (
	"math"
	"testing"
	"time"

	"repro/internal/contract"
	"repro/internal/demand"
	"repro/internal/dr"
	"repro/internal/grid"
	"repro/internal/tariff"
	"repro/internal/timeseries"
	"repro/internal/units"
)

var t0 = time.Date(2016, time.September, 5, 0, 0, 0, 0, time.UTC)

func flat(n int, p units.Power) *timeseries.PowerSeries {
	return timeseries.ConstantPower(t0, 15*time.Minute, n, p)
}

func testContract() *contract.Contract {
	return &contract.Contract{
		Name:          "plan-site",
		Tariffs:       []tariff.Tariff{tariff.MustNewFixed(0.06)},
		DemandCharges: []*demand.Charge{demand.SimpleCharge(12)},
		Emergencies: []*contract.EmergencyObligation{{
			Name: "regional", Cap: 8000, Penalty: 2.0,
		}},
	}
}

func twoLevelPlan() *Plan {
	return &Plan{
		Name: "standard",
		Levels: []Level{
			{
				Name:     "price-watch",
				Trigger:  Trigger{Kind: PriceAbove, PriceThreshold: 0.20},
				Strategy: &dr.ShedStrategy{Fraction: 0.05, OpCostPerKWh: 0.01},
			},
			{
				Name:     "emergency",
				Trigger:  Trigger{Kind: EmergencyDeclared},
				Strategy: &dr.CapStrategy{Cap: 8000, OpCostPerKWh: 0.10},
			},
		},
	}
}

func TestTriggerKindString(t *testing.T) {
	for _, k := range []TriggerKind{PriceAbove, GridStress, EmergencyDeclared, OwnLoadAbove} {
		if k.String() == "" {
			t.Errorf("kind %d should name", int(k))
		}
	}
	if TriggerKind(9).String() == "" {
		t.Error("unknown kind should format")
	}
}

func TestTriggerValidate(t *testing.T) {
	bad := []Trigger{
		{Kind: PriceAbove},
		{Kind: OwnLoadAbove},
		{Kind: TriggerKind(42)},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	good := []Trigger{
		{Kind: PriceAbove, PriceThreshold: 0.1},
		{Kind: GridStress},
		{Kind: EmergencyDeclared},
		{Kind: OwnLoadAbove, PowerBudget: 1000},
	}
	for i, tr := range good {
		if err := tr.Validate(); err != nil {
			t.Errorf("case %d should pass: %v", i, err)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	if err := twoLevelPlan().Validate(); err != nil {
		t.Errorf("good plan: %v", err)
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(); err == nil {
		t.Error("nil plan should fail")
	}
	if err := (&Plan{}).Validate(); err == nil {
		t.Error("empty plan should fail")
	}
	bad := []*Plan{
		{Levels: []Level{{Name: "", Strategy: &dr.ShedStrategy{Fraction: 0.1}, Trigger: Trigger{Kind: GridStress}}}},
		{Levels: []Level{
			{Name: "a", Strategy: &dr.ShedStrategy{Fraction: 0.1}, Trigger: Trigger{Kind: GridStress}},
			{Name: "a", Strategy: &dr.ShedStrategy{Fraction: 0.1}, Trigger: Trigger{Kind: GridStress}},
		}},
		{Levels: []Level{{Name: "a", Trigger: Trigger{Kind: GridStress}}}},
		{Levels: []Level{{Name: "a", Strategy: &dr.ShedStrategy{Fraction: 0.1}, Trigger: Trigger{Kind: PriceAbove}}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestEvaluateValidation(t *testing.T) {
	plan := twoLevelPlan()
	c := testContract()
	baseline := flat(96, 10000)
	if _, err := Evaluate(&Plan{}, c, baseline, Signals{}); err == nil {
		t.Error("invalid plan should fail")
	}
	if _, err := Evaluate(plan, &contract.Contract{Name: "x"}, baseline, Signals{}); err == nil {
		t.Error("invalid contract should fail")
	}
	if _, err := Evaluate(plan, c, nil, Signals{}); err == nil {
		t.Error("nil baseline should fail")
	}
	// PriceAbove level without a feed.
	if _, err := Evaluate(plan, c, baseline, Signals{}); err == nil {
		t.Error("missing price feed should fail")
	}
}

func TestEvaluateQuietGrid(t *testing.T) {
	plan := twoLevelPlan()
	c := testContract()
	baseline := flat(96, 10000)
	prices := timeseries.ConstantPrice(t0, time.Hour, 24, 0.05) // always cheap
	im, err := Evaluate(plan, c, baseline, Signals{Prices: prices})
	if err != nil {
		t.Fatal(err)
	}
	if im.BillSavings() != 0 || im.TotalOpCost != 0 {
		t.Error("quiet grid: plan should do nothing")
	}
	for _, l := range im.Levels {
		if l.Activations != 0 {
			t.Errorf("level %s activated on a quiet grid", l.Level)
		}
	}
	if !im.EmergencyCompliant {
		t.Error("no emergencies → compliant")
	}
	// Load untouched.
	for i := 0; i < baseline.Len(); i++ {
		if im.Load.At(i) != baseline.At(i) {
			t.Fatal("quiet plan must not modify the load")
		}
	}
}

func TestEvaluatePriceLevelActivates(t *testing.T) {
	plan := twoLevelPlan()
	c := testContract()
	baseline := flat(96, 10000)
	// Expensive hours 10–12.
	priceSamples := make([]units.EnergyPrice, 24)
	for i := range priceSamples {
		priceSamples[i] = 0.05
	}
	priceSamples[10], priceSamples[11] = 0.50, 0.50
	prices := timeseries.MustNewPrice(t0, time.Hour, priceSamples)

	im, err := Evaluate(plan, c, baseline, Signals{Prices: prices})
	if err != nil {
		t.Fatal(err)
	}
	watch := im.Levels[0]
	if watch.Activations != 1 || watch.ActiveFor != 2*time.Hour {
		t.Errorf("price-watch = %+v", watch)
	}
	// 5% of 10 MW for 2 h = 1 MWh curtailed.
	if math.Abs(watch.Curtailed.MWh()-1) > 1e-9 {
		t.Errorf("curtailed = %v", watch.Curtailed)
	}
	if im.Levels[1].Activations != 0 {
		t.Error("emergency level should stay quiet")
	}
}

func TestEvaluateEmergencyOutranksPrice(t *testing.T) {
	plan := twoLevelPlan()
	c := testContract()
	baseline := flat(96, 12000)
	// Expensive everywhere AND an emergency over hours 10–12: the
	// emergency level (later in the ladder) must own those hours.
	prices := timeseries.ConstantPrice(t0, time.Hour, 24, 0.50)
	emergency := []contract.EmergencyEvent{{Start: t0.Add(10 * time.Hour), Duration: 2 * time.Hour}}
	im, err := Evaluate(plan, c, baseline, Signals{Prices: prices, Emergencies: emergency})
	if err != nil {
		t.Fatal(err)
	}
	em := im.Levels[1]
	if em.ActiveFor != 2*time.Hour {
		t.Errorf("emergency active for %v, want 2 h", em.ActiveFor)
	}
	// Price level owns the remaining 22 h.
	if im.Levels[0].ActiveFor != 22*time.Hour {
		t.Errorf("price level active for %v, want 22 h", im.Levels[0].ActiveFor)
	}
	// During the emergency the cap strategy pushed load to 8 MW: the
	// plan keeps the site compliant and avoids the 2.0/kWh penalty.
	if !im.EmergencyCompliant {
		t.Error("plan should make the site emergency-compliant")
	}
	// Without the plan the site is non-compliant (12 MW > 8 MW cap).
	if compliant(c, baseline, emergency) {
		t.Error("baseline should violate the emergency cap")
	}
	// And the penalty avoidance shows up as positive net benefit.
	if im.NetBenefit <= 0 {
		t.Errorf("net benefit = %v, want positive (penalty avoided)", im.NetBenefit)
	}
}

func TestEvaluateOwnLoadTrigger(t *testing.T) {
	plan := &Plan{
		Name: "self-protect",
		Levels: []Level{{
			Name:     "peak-guard",
			Trigger:  Trigger{Kind: OwnLoadAbove, PowerBudget: 11000},
			Strategy: &dr.CapStrategy{Cap: 11000, OpCostPerKWh: 0.01},
		}},
	}
	c := testContract()
	samples := make([]units.Power, 96)
	for i := range samples {
		samples[i] = 10000
	}
	for i := 40; i < 44; i++ {
		samples[i] = 14000
	}
	baseline := timeseries.MustNewPower(t0, 15*time.Minute, samples)
	im, err := Evaluate(plan, c, baseline, Signals{})
	if err != nil {
		t.Fatal(err)
	}
	if im.Levels[0].Activations != 1 {
		t.Errorf("peak-guard activations = %d", im.Levels[0].Activations)
	}
	peak, _, _ := im.Load.Peak()
	if peak > 11000 {
		t.Errorf("planned peak = %v, want ≤ budget", peak)
	}
	// Demand-charge savings: billed demand falls 14 MW → at most 11 MW.
	if im.BillSavings() <= 0 {
		t.Error("peak guard should save demand charges")
	}
}

func TestEvaluateGridStressTrigger(t *testing.T) {
	plan := &Plan{
		Name: "stress-response",
		Levels: []Level{{
			Name:     "stress-shed",
			Trigger:  Trigger{Kind: GridStress},
			Strategy: &dr.ShedStrategy{Fraction: 0.10, OpCostPerKWh: 0.01},
		}},
	}
	c := testContract()
	baseline := flat(96, 10000)
	stress := []grid.StressEvent{{Start: t0.Add(6 * time.Hour), Duration: time.Hour}}
	im, err := Evaluate(plan, c, baseline, Signals{Stress: stress})
	if err != nil {
		t.Fatal(err)
	}
	if im.Levels[0].ActiveFor != time.Hour {
		t.Errorf("active for %v", im.Levels[0].ActiveFor)
	}
	if math.Abs(im.Levels[0].Curtailed.MWh()-1) > 1e-9 {
		t.Errorf("curtailed = %v", im.Levels[0].Curtailed)
	}
}
