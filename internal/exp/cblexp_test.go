package exp

import (
	"strings"
	"testing"
)

func TestE21CBLAccuracyAndGaming(t *testing.T) {
	rows, err := RunE21()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]E21Row{}
	for _, r := range rows {
		byName[r.Behaviour[:6]] = r // key by prefix: honest/non-pa/look-b
	}
	honest := byName["honest"]
	nonpart := byName["non-pa"]
	gamer := byName["look-b"]
	// Honest: CBL matches truth.
	if honest.CBLCurtailment != honest.TrueCurtailment {
		t.Errorf("honest: CBL %v vs truth %v", honest.CBLCurtailment, honest.TrueCurtailment)
	}
	// Non-participant: zero credited, zero paid.
	if nonpart.CBLCurtailment != 0 || nonpart.Payment != 0 {
		t.Errorf("non-participant credited %v / paid %v", nonpart.CBLCurtailment, nonpart.Payment)
	}
	// Gamer: credited despite zero truth, paid the same as the honest
	// curtailer — the pathology.
	if gamer.TrueCurtailment != 0 {
		t.Fatal("scenario broken: gamer sheds nothing")
	}
	if gamer.CBLCurtailment != honest.CBLCurtailment {
		t.Errorf("gamer credited %v, want same as honest %v", gamer.CBLCurtailment, honest.CBLCurtailment)
	}
	if gamer.Payment != honest.Payment {
		t.Errorf("gamer paid %v, honest paid %v", gamer.Payment, honest.Payment)
	}
}

func TestE21Exhibit(t *testing.T) {
	e, err := Run("E21")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Render(), "look-back gamer") {
		t.Error("E21 table incomplete")
	}
}
