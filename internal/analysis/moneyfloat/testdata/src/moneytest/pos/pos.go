// Package pos holds moneyfloat true positives.
package pos

import "internal/units"

func comparisons(a, b units.EnergyPrice, d units.DemandPrice, m units.Money) []bool {
	return []bool{
		a == b,         // want `== on float-typed money \(units.EnergyPrice\)`
		d != 0,         // want `!= on float-typed money \(units.DemandPrice\)`
		m.Float() == 0, // want `== on float-typed money \(units.Money.Float\(\)\)`
		3.5 != a,       // want `!= on float-typed money \(units.EnergyPrice\)`
	}
}

func conversion(x float64) units.Money {
	return units.Money(x) // want "float-to-Money conversion truncates"
}

func literals() units.Money {
	fee := units.MoneyFromFloat(19.99)    // want "raw float literal flows into micro-unit money"
	credit := units.MoneyFromFloat(-0.07) // want "raw float literal flows into micro-unit money"
	return fee + credit
}

var credit = units.MoneyFromFloat(-0.07) // want "raw float literal flows into micro-unit money"

// A reasoned suppression silences the diagnostic:
//
//lint:scvet-ignore moneyfloat survey table transcribes published per-kWh rates verbatim
var surveyRate = units.MoneyFromFloat(0.085)

// A reasonless suppression silences nothing and is itself reported.
func unexcused() units.Money {
	// want-below "scvet-ignore directive without a reason"
	//lint:scvet-ignore moneyfloat
	return units.MoneyFromFloat(1.5) // want "raw float literal flows into micro-unit money"
}
